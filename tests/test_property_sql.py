"""Property-based SQL executor tests: random tables, verified answers."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database

_row = st.tuples(
    st.integers(min_value=-20, max_value=20),
    st.one_of(st.none(), st.integers(min_value=-10, max_value=10)),
    st.sampled_from(["red", "green", "blue"]),
)
_rows = st.lists(_row, max_size=25)


def _database(rows) -> Database:
    database = Database()
    database.execute("CREATE TABLE t (a INT, b INT, c TEXT)")
    for a, b, c in rows:
        database.table("t").insert({"a": a, "b": b, "c": c})
    return database


class TestSelectProperties:
    @given(_rows, st.integers(min_value=-20, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_where_filter_matches_python(self, rows, threshold):
        database = _database(rows)
        got = database.query(f"SELECT a FROM t WHERE a > {threshold}")
        expected = sorted(a for a, _, _ in rows if a > threshold)
        assert sorted(row["a"] for row in got) == expected

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_null_comparisons_never_match(self, rows):
        database = _database(rows)
        matched = database.query("SELECT b FROM t WHERE b >= -100")
        expected = [b for _, b, _ in rows if b is not None]
        assert sorted(row["b"] for row in matched) == sorted(expected)
        nulls = database.query("SELECT a FROM t WHERE b IS NULL")
        assert len(nulls) == sum(1 for _, b, _ in rows if b is None)

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, rows):
        database = _database(rows)
        got = [row["a"] for row in
               database.query("SELECT a FROM t ORDER BY a")]
        assert got == sorted(a for a, _, _ in rows)
        descending = [row["a"] for row in
                      database.query("SELECT a FROM t ORDER BY a DESC")]
        assert descending == sorted((a for a, _, _ in rows),
                                    reverse=True)

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_aggregates_match_python(self, rows):
        database = _database(rows)
        result = database.query(
            "SELECT COUNT(*) AS n, COUNT(b) AS nb, SUM(a) AS sa, "
            "MIN(a) AS lo, MAX(a) AS hi FROM t")[0]
        values = [a for a, _, _ in rows]
        assert result["n"] == len(rows)
        assert result["nb"] == sum(1 for _, b, _ in rows
                                   if b is not None)
        assert result["sa"] == (sum(values) if values else None)
        assert result["lo"] == (min(values) if values else None)
        assert result["hi"] == (max(values) if values else None)

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_group_by_partitions_rows(self, rows):
        database = _database(rows)
        got = database.query(
            "SELECT c, COUNT(*) AS n FROM t GROUP BY c")
        expected: dict[str, int] = {}
        for _, _, c in rows:
            expected[c] = expected.get(c, 0) + 1
        assert {row["c"]: row["n"] for row in got} == expected

    @given(_rows, st.integers(min_value=0, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_limit_truncates(self, rows, limit):
        database = _database(rows)
        got = database.query(f"SELECT a FROM t ORDER BY a LIMIT {limit}")
        assert len(got) == min(limit, len(rows))

    @given(_rows)
    @settings(max_examples=30, deadline=None)
    def test_update_then_delete_is_consistent(self, rows):
        database = _database(rows)
        database.execute("UPDATE t SET a = a + 100 WHERE c = 'red'")
        reds = sum(1 for _, _, c in rows if c == "red")
        assert len(database.execute(
            "SELECT * FROM t WHERE a >= 80")) >= reds
        deleted = database.execute("DELETE FROM t WHERE c = 'red'")
        assert deleted.affected == reds
        assert len(database.execute("SELECT * FROM t")) == \
            len(rows) - reds
