"""Tests for the sequence scan/construction operator."""

from __future__ import annotations

from repro.core.sequence import SequenceScanConstruct
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze

from tests.helpers import make_events


def scan_for(text: str, registry, **kwargs) -> SequenceScanConstruct:
    analyzed = analyze(parse_query(text), registry)
    return SequenceScanConstruct(analyzed, **kwargs)


def feed_all(scan: SequenceScanConstruct, events):
    matches = []
    for event in events:
        matches.extend(scan.feed(event))
    return matches


class TestBasicConstruction:
    def test_single_match(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y)", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 1, "v": 0})]))
        assert len(matches) == 1
        assert matches[0].bindings["x"].type == "A"
        assert matches[0].start == 1 and matches[0].end == 2

    def test_all_matches_semantics(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y)", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 0}), ("A", 2, {"id": 2, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}), ("B", 4, {"id": 1, "v": 0})]))
        # every A pairs with every later B: 2 * 2
        assert len(matches) == 4

    def test_strict_time_order(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y)", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 5, {"id": 1, "v": 0}), ("B", 5, {"id": 1, "v": 0})]))
        assert matches == []

    def test_interleaved_events_ignored(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, C z)", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 9, "v": 0}),
            ("C", 3, {"id": 1, "v": 0})]))
        assert len(matches) == 1

    def test_three_component_chains(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y, C z)", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 1, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}), ("C", 4, {"id": 1, "v": 0})]))
        assert len(matches) == 2  # A with either B, then C

    def test_same_type_twice_never_reuses_event(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, A y)", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 0}), ("A", 2, {"id": 1, "v": 0}),
            ("A", 3, {"id": 1, "v": 0})]))
        # pairs with strictly increasing ts: (1,2), (1,3), (2,3)
        assert len(matches) == 3
        for match in matches:
            assert match.bindings["x"].timestamp < \
                match.bindings["y"].timestamp

    def test_single_component_pattern(self, abc_registry):
        scan = scan_for("EVENT A x", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 1, "v": 0}),
            ("A", 3, {"id": 2, "v": 0})]))
        assert len(matches) == 2


class TestWindowPushdown:
    def _events(self):
        return make_events([
            ("A", 0, {"id": 1, "v": 0}), ("A", 50, {"id": 1, "v": 0}),
            ("B", 55, {"id": 1, "v": 0})])

    def test_window_limits_matches(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y) WITHIN 10", abc_registry)
        matches = feed_all(scan, self._events())
        assert len(matches) == 1
        assert matches[0].bindings["x"].timestamp == 50

    def test_window_boundary_inclusive(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y) WITHIN 5", abc_registry)
        matches = feed_all(scan, self._events())
        assert len(matches) == 1  # 55 - 50 == 5 <= 5

    def test_stacks_pruned(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y) WITHIN 10", abc_registry,
                        prune_interval=1)
        feed_all(scan, self._events())
        assert scan.instance_count <= 2

    def test_no_pushdown_keeps_everything(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y) WITHIN 10", abc_registry,
                        window_pushdown=False)
        matches = feed_all(scan, self._events())
        # without pushdown the scan emits the out-of-window match too;
        # the WindowFilter operator removes it downstream
        assert len(matches) == 2
        assert scan.instance_count == 3


class TestPartitioning:
    QUERY = "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 100"

    def _events(self):
        return make_events([
            ("A", 1, {"id": 1, "v": 0}), ("A", 2, {"id": 2, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}), ("B", 4, {"id": 3, "v": 0})])

    def test_partitioned_scan_only_joins_within_partition(self,
                                                          abc_registry):
        scan = scan_for(self.QUERY, abc_registry)
        assert scan.partitioned
        matches = feed_all(scan, self._events())
        assert len(matches) == 1
        assert matches[0].bindings["x"]["id"] == 1

    def test_unpartitioned_scan_produces_cross_product(self, abc_registry):
        scan = scan_for(self.QUERY, abc_registry,
                        partition_pushdown=False)
        assert not scan.partitioned
        matches = feed_all(scan, self._events())
        assert len(matches) == 4  # selection would filter later

    def test_partition_count_tracked(self, abc_registry):
        scan = scan_for(self.QUERY, abc_registry)
        feed_all(scan, self._events())
        assert scan.partition_count == 2  # ids 1 and 2 started chains

    def test_empty_partitions_removed_by_prune(self, abc_registry):
        scan = scan_for(self.QUERY, abc_registry, prune_interval=1)
        events = make_events([
            ("A", 0, {"id": 1, "v": 0}),
            ("A", 1000, {"id": 2, "v": 0}),
            ("A", 2000, {"id": 3, "v": 0})])
        feed_all(scan, events)
        assert scan.partition_count == 1

    def test_reset(self, abc_registry):
        scan = scan_for(self.QUERY, abc_registry)
        feed_all(scan, self._events())
        scan.reset()
        assert scan.instance_count == 0 and scan.partition_count == 0


class TestFilterPushdown:
    def test_filters_applied_at_push(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y) WHERE x.v > 5", abc_registry)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 3}), ("A", 2, {"id": 1, "v": 7}),
            ("B", 3, {"id": 1, "v": 0})]))
        assert len(matches) == 1
        assert matches[0].bindings["x"]["v"] == 7

    def test_filters_disabled(self, abc_registry):
        scan = scan_for("EVENT SEQ(A x, B y) WHERE x.v > 5", abc_registry,
                        filter_pushdown=False)
        matches = feed_all(scan, make_events([
            ("A", 1, {"id": 1, "v": 3}), ("B", 2, {"id": 1, "v": 0})]))
        assert len(matches) == 1  # selection happens downstream


class TestKleeneScan:
    def test_trailing_kleene_grows(self, abc_registry):
        scan = scan_for("EVENT SEQ(A a, B+ b)", abc_registry)
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 1, "v": 0}),
            ("B", 3, {"id": 1, "v": 0})])
        matches = feed_all(scan, events)
        bindings = sorted(tuple(event.timestamp
                                for event in match.bindings["b"])
                          for match in matches)
        assert bindings == [(2.0,), (2.0, 3.0), (3.0,)]

    def test_middle_kleene_maximal(self, abc_registry):
        scan = scan_for("EVENT SEQ(A a, B+ b, C c)", abc_registry)
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 1, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}), ("C", 4, {"id": 1, "v": 0})])
        matches = feed_all(scan, events)
        bindings = sorted(tuple(event.timestamp
                                for event in match.bindings["b"])
                          for match in matches)
        # maximal mode: one binding per anchor, absorbing all later Bs
        assert bindings == [(2.0, 3.0), (3.0,)]

    def test_middle_kleene_subsets(self, abc_registry):
        scan = scan_for("EVENT SEQ(A a, B+ b, C c)", abc_registry,
                        kleene_maximal=False)
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}), ("B", 2, {"id": 1, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}), ("C", 4, {"id": 1, "v": 0})])
        matches = feed_all(scan, events)
        bindings = sorted(tuple(event.timestamp
                                for event in match.bindings["b"])
                          for match in matches)
        assert bindings == [(2.0,), (2.0, 3.0), (3.0,)]

    def test_kleene_window_bound(self, abc_registry):
        scan = scan_for("EVENT SEQ(A a, B+ b) WITHIN 10", abc_registry)
        events = make_events([
            ("A", 0, {"id": 1, "v": 0}), ("B", 100, {"id": 1, "v": 0})])
        assert feed_all(scan, events) == []
