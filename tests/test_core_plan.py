"""Tests for plan building and configuration."""

from __future__ import annotations

import pytest

from repro.core.plan import KleeneMode, PlanConfig, build_plan
from repro.errors import PlanError
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze

Q1 = """
EVENT SEQ(A x, !(B y), C z)
WHERE x.id = y.id AND x.id = z.id
WITHIN 100
RETURN x.id
"""


def plan_for(text: str, registry, config=None):
    return build_plan(analyze(parse_query(text), registry), config)


class TestPlanBuilding:
    def test_default_plan_uses_all_optimizations(self, abc_registry):
        plan = plan_for(Q1, abc_registry)
        assert plan.uses_partition
        assert plan.uses_window_pushdown
        assert not plan.needs_window_filter
        assert not plan.needs_selection  # both equalities are partition
        assert plan.needs_negation
        assert plan.operator_names == ["SSC", "NG", "TF"]

    def test_naive_plan(self, abc_registry):
        plan = plan_for(Q1, abc_registry, PlanConfig.naive())
        assert not plan.uses_partition
        assert not plan.uses_window_pushdown
        assert plan.needs_window_filter
        assert plan.needs_selection
        assert plan.operator_names == ["SSC", "SL", "WD", "NG", "TF"]

    def test_without_single_optimization(self, abc_registry):
        config = PlanConfig().without("partition_pushdown")
        plan = plan_for(Q1, abc_registry, config)
        assert not plan.uses_partition
        assert plan.uses_window_pushdown
        assert plan.needs_selection

    def test_without_unknown_name(self):
        with pytest.raises(PlanError, match="unknown optimization"):
            PlanConfig().without("turbo_mode")

    def test_single_component_no_window_filter(self, abc_registry):
        plan = plan_for("EVENT A x WITHIN 10", abc_registry,
                        PlanConfig.naive())
        # a single-event pattern always satisfies any window
        assert not plan.needs_window_filter

    def test_kleene_filter_only_with_predicates(self, abc_registry):
        with_pred = plan_for(
            "EVENT SEQ(A a, B+ b) WHERE b.v > a.v WITHIN 10", abc_registry)
        without = plan_for("EVENT SEQ(A a, B+ b) WITHIN 10", abc_registry)
        assert with_pred.needs_kleene_filter
        assert not without.needs_kleene_filter

    def test_residual_selection_with_partial_partition(self, abc_registry):
        plan = plan_for(
            "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id WITHIN 10",
            abc_registry)
        assert not plan.uses_partition
        assert plan.needs_selection


class TestDescribe:
    def test_describe_mentions_optimizations(self, abc_registry):
        text = plan_for(Q1, abc_registry).describe()
        assert "PAIS partitioned" in text
        assert "window=100s pushed down" in text
        assert "negation" in text and "middle" in text

    def test_describe_naive(self, abc_registry):
        text = plan_for(Q1, abc_registry, PlanConfig.naive()).describe()
        assert "window=100s (filter operator)" in text
        assert "SL" in text and "WD" in text

    def test_describe_trailing_negation(self, abc_registry):
        text = plan_for(
            "EVENT SEQ(A x, !(B y)) WITHIN 10", abc_registry).describe()
        assert "trailing (delayed emission)" in text

    def test_describe_kleene_and_into(self, abc_registry):
        text = plan_for(
            "EVENT SEQ(A a, B+ b) WHERE b.v > 1 WITHIN 10 "
            "RETURN Out(a.id) INTO outs", abc_registry).describe()
        assert "B+" in text and "KF" in text
        assert "-> Out INTO outs" in text

    def test_config_defaults(self):
        config = PlanConfig()
        assert config.kleene_mode is KleeneMode.MAXIMAL
        assert config.window_pushdown and config.partition_pushdown
