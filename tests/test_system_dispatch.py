"""Tests for the processor's multi-query type-dispatch index.

The index must be semantically transparent: with many registered queries
the event stream produces exactly the same results, in the same order,
with the index on or off — including negation timeouts (which depend on
watermark progress from events the query does not subscribe to) and
INTO/FROM cascades.
"""

from __future__ import annotations

import random

import pytest

from repro.events.event import Event
from repro.events.model import AttributeType
from repro.sharding.config import ShardingConfig
from repro.system.processor import ComplexEventProcessor

QUERIES = [
    ("ab", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 RETURN x.id"),
    ("bc", "EVENT SEQ(B x, C y) WHERE x.id = y.id WITHIN 10 RETURN x.id"),
    ("a_only", "EVENT A x WHERE x.v > 3 RETURN x.id"),
    ("neg", "EVENT SEQ(A x, B y, !(C w)) WHERE x.id = y.id AND "
     "w.id = x.id WITHIN 6 RETURN x.id"),
    ("dd", "EVENT SEQ(D x, D y) WHERE x.id = y.id WITHIN 10 RETURN x.id"),
]


def _stream(seed: int, size: int) -> list[Event]:
    rng = random.Random(seed)
    events, ts = [], 0.0
    for index in range(size):
        ts += rng.choice([0.5, 1.0, 2.0])
        events.append(Event(
            rng.choice(["A", "B", "C", "D"]), ts,
            {"id": rng.randrange(3), "v": rng.randrange(10)},
        ).with_seq(index))
    return events


def _key(produced):
    return [(name, result.type, tuple(result.attributes.items()),
             result.start, result.end) for name, result in produced]


def _run(registry, events, *, use_dispatch_index, queries=QUERIES,
         sharding=None):
    processor = ComplexEventProcessor(
        registry, sharding=sharding, use_dispatch_index=use_dispatch_index)
    for name, text in queries:
        processor.register_monitoring_query(name, text)
    produced = processor.feed_many(events)
    produced.extend(processor.flush())
    return _key(produced), processor


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_dispatch_index_is_transparent(abc_registry, seed):
    events = _stream(seed, 120)
    with_index, _ = _run(abc_registry, events, use_dispatch_index=True)
    without, _ = _run(abc_registry, events, use_dispatch_index=False)
    assert with_index == without


def test_negation_timeout_released_by_unsubscribed_event(abc_registry):
    """The 'neg' query does not subscribe to D events, but a D event's
    timestamp must still advance its watermark so the trailing negation
    times out at the same stream time as without the index."""
    events = [
        Event("A", 1.0, {"id": 1, "v": 1}).with_seq(0),
        Event("B", 2.0, {"id": 1, "v": 1}).with_seq(1),
        # No C arrives; only D events move time past the 6s deadline.
        Event("D", 9.5, {"id": 1, "v": 1}).with_seq(2),
        Event("D", 20.0, {"id": 1, "v": 1}).with_seq(3),
    ]
    with_index, _ = _run(abc_registry, events, use_dispatch_index=True)
    without, _ = _run(abc_registry, events, use_dispatch_index=False)
    assert with_index == without
    assert any(name == "neg" for name, *_ in with_index)


def test_dispatch_index_skips_nonsubscribers(abc_registry):
    _, processor = _run(abc_registry, _stream(5, 60),
                        use_dispatch_index=True)
    # The D-only query never saw the A/B/C traffic.
    dd = processor.metrics.query("dd")
    d_count = sum(1 for event in _stream(5, 60) if event.type == "D")
    assert dd.events_in == d_count
    ab = processor.metrics.query("ab")
    ab_count = sum(1 for event in _stream(5, 60)
                   if event.type in ("A", "B"))
    assert ab.events_in == ab_count


def test_dispatch_actions_cached_and_invalidated(abc_registry):
    processor = ComplexEventProcessor(abc_registry)
    processor.register_monitoring_query("ab", QUERIES[0][1])
    processor.feed(Event("A", 1.0, {"id": 1, "v": 1}))
    key = (processor.DEFAULT_STREAM, "A")
    assert key in processor._dispatch_cache
    first = processor._dispatch_cache[key]
    processor.feed(Event("A", 2.0, {"id": 1, "v": 1}))
    assert processor._dispatch_cache[key] is first  # memoized
    # Registration mid-stream must rebuild the map so the new query sees
    # subsequent events.
    seen = []
    processor.register_monitoring_query(
        "a_late", "EVENT A x RETURN x.id",
        on_result=lambda name, result: seen.append(result))
    assert processor._dispatch_cache == {}
    processor.feed(Event("A", 3.0, {"id": 2, "v": 1}))
    assert len(seen) == 1
    processor.deregister("a_late")
    assert processor._dispatch_cache == {}
    processor.feed(Event("A", 4.0, {"id": 2, "v": 1}))
    assert len(seen) == 1  # deregistered query no longer fed


def test_into_cascade_crosses_dispatch_index(abc_registry):
    """Composite events published INTO a stream must reach consumers on
    that stream through the per-stream dispatch map."""
    abc_registry.declare("Pair", id=AttributeType.INT)
    queries = [
        ("producer", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
         "RETURN Pair(x.id AS id) INTO pairs"),
        ("consumer", "FROM pairs EVENT SEQ(Pair p, Pair q) WITHIN 50 "
         "RETURN p.id"),
    ]
    events = _stream(7, 80)
    with_index, _ = _run(abc_registry, events, use_dispatch_index=True,
                         queries=queries)
    without, _ = _run(abc_registry, events, use_dispatch_index=False,
                      queries=queries)
    assert with_index == without
    assert any(name == "consumer" for name, *_ in with_index)


@pytest.mark.parametrize("use_dispatch_index", [True, False])
def test_sharded_run_matches_synchronous(abc_registry, use_dispatch_index):
    """The flag flows through WorkerSpec into every shard's processor."""
    events = _stream(9, 150)
    sharded = ShardingConfig(shards=3, backend="inline", batch_size=4)
    with_shards, processor = _run(
        abc_registry, events, use_dispatch_index=use_dispatch_index,
        sharding=sharded)
    synchronous, _ = _run(abc_registry, events,
                          use_dispatch_index=use_dispatch_index)
    assert with_shards == synchronous
    assert processor.use_dispatch_index is use_dispatch_index
