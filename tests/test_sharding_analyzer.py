"""Tests for the shard-plan analyzer: query classification and grouping."""

from __future__ import annotations

import pytest

from repro.errors import SaseError
from repro.schemas import retail_registry
from repro.sharding import ShardingConfig, build_shard_plan, stable_hash
from repro.system import ComplexEventProcessor
from repro.workloads.retail import LOCATION_UPDATE_RULE, \
    SHOPLIFTING_QUERY
from repro.workloads.synthetic import seq_query, synthetic_registry

DEFAULT = ComplexEventProcessor.DEFAULT_STREAM


def plan_for(processor: ComplexEventProcessor, shards: int = 4):
    return build_shard_plan(processor.queries(), shards, DEFAULT)


@pytest.fixture
def synthetic_processor() -> ComplexEventProcessor:
    return ComplexEventProcessor(synthetic_registry(5))


class TestClassification:
    def test_partitioned_seq_is_keyed(self, synthetic_processor):
        synthetic_processor.register(
            "pair", seq_query(2, window=5.0, partitioned=True))
        plan = plan_for(synthetic_processor)
        (info,) = plan.infos
        assert info.mode == "keyed"
        assert info.keyed == {"A": "id", "B": "id"}
        assert not info.needs_watermark

    def test_unpartitioned_seq_is_broadcast(self, synthetic_processor):
        synthetic_processor.register(
            "pair", seq_query(2, window=5.0, partitioned=False))
        plan = plan_for(synthetic_processor)
        (info,) = plan.infos
        assert info.mode == "broadcast"
        (group,) = plan.groups
        assert group.kind == "broadcast"
        assert group.home_shard == stable_hash("pair") % 4

    def test_trailing_negation_needs_watermark(self, synthetic_processor):
        synthetic_processor.register(
            "neg", seq_query(2, window=5.0, partitioned=True,
                             negation_at=2))
        plan = plan_for(synthetic_processor)
        (info,) = plan.infos
        assert info.mode == "keyed"
        assert info.needs_watermark

    def test_unkeyed_negated_type_fans_out(self, synthetic_processor):
        # Negated component outside the partition class: any shard's
        # match could be invalidated by it, so its type is broadcast.
        synthetic_processor.register(
            "neg", "EVENT SEQ(A x, !(C n), B y) WHERE x.id = y.id "
                   "WITHIN 5 RETURN x.id")
        plan = plan_for(synthetic_processor)
        (info,) = plan.infos
        assert info.mode == "keyed"
        assert info.fanout_types == frozenset({"C"})

    def test_function_calls_stay_local(self):
        processor = ComplexEventProcessor(retail_registry())
        processor.register("shoplifting", SHOPLIFTING_QUERY)
        processor.register("loc", LOCATION_UPDATE_RULE("SHELF_READING"))
        plan = plan_for(processor)
        assert {info.mode for info in plan.infos} == {"local"}
        assert plan.local_names == {"shoplifting", "loc"}
        assert plan.groups == []

    def test_stream_composition_stays_local(self):
        registry = synthetic_registry(5)
        from repro.events.model import AttributeType
        registry.declare("Hot", id=AttributeType.INT)
        processor = ComplexEventProcessor(registry)
        processor.register(
            "producer", "EVENT A x WHERE x.v < 5 "
                        "RETURN Hot(x.id AS id) INTO hots")
        processor.register(
            "consumer", "FROM hots EVENT Hot y RETURN y.id")
        plan = plan_for(processor)
        assert all(info.mode == "local" for info in plan.infos)

    def test_into_default_forces_everything_local(self):
        registry = synthetic_registry(5)
        from repro.events.model import AttributeType
        registry.declare("Hot", id=AttributeType.INT)
        processor = ComplexEventProcessor(registry)
        processor.register(
            "pair", seq_query(2, window=5.0, partitioned=True))
        processor.register(
            "feeder", "EVENT C x RETURN Hot(x.id AS id) INTO " + DEFAULT)
        plan = plan_for(processor)
        assert all(info.mode == "local" for info in plan.infos)
        assert plan.groups == []


class TestGrouping:
    def test_same_signature_queries_share_a_group(self,
                                                  synthetic_processor):
        synthetic_processor.register(
            "p1", seq_query(2, window=5.0, partitioned=True))
        synthetic_processor.register(
            "p2", seq_query(2, window=9.0, partitioned=True,
                            v_filter=5))
        plan = plan_for(synthetic_processor)
        (group,) = plan.groups
        assert group.kind == "keyed"
        assert [name for _, name, _, _ in group.queries] == ["p1", "p2"]

    def test_describe_mentions_modes_and_keys(self, synthetic_processor):
        synthetic_processor.register(
            "pair", seq_query(2, window=5.0, partitioned=True))
        synthetic_processor.register(
            "wide", seq_query(2, window=5.0, partitioned=False))
        text = plan_for(synthetic_processor).describe()
        assert "pair: keyed" in text
        assert "A.id" in text
        assert "wide: broadcast" in text


class TestStableHash:
    def test_stable_across_value_kinds(self):
        assert stable_hash(17) == stable_hash(17)
        assert stable_hash("x") == stable_hash("x")
        assert stable_hash(None) == stable_hash(None)
        assert stable_hash(17) != stable_hash("17")


class TestShardingConfig:
    def test_default_is_inactive(self):
        assert not ShardingConfig().active

    def test_active_configurations(self):
        assert ShardingConfig(shards=2).active
        assert ShardingConfig(backend="process").active

    def test_validation(self):
        with pytest.raises(SaseError):
            ShardingConfig(shards=0)
        with pytest.raises(SaseError):
            ShardingConfig(backend="gpu")
        with pytest.raises(SaseError):
            ShardingConfig(batch_size=0)
        with pytest.raises(SaseError):
            ShardingConfig(queue_capacity=0)
        with pytest.raises(SaseError):
            ShardingConfig(response_timeout=0.0)