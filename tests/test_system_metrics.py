"""Tests for the per-query metrics collector."""

from __future__ import annotations

import pytest

from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.system import ComplexEventProcessor, MetricsCollector, \
    QueryMetrics


@pytest.fixture
def processor() -> ComplexEventProcessor:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT)
    registry.declare("B", id=AttributeType.INT)
    proc = ComplexEventProcessor(registry)
    proc.register_monitoring_query("pairs",
                                   "EVENT SEQ(A x, B y) "
                                   "WHERE x.id = y.id WITHIN 10 "
                                   "RETURN x.id")
    proc.register_monitoring_query("all_a", "EVENT A x RETURN x.id")
    return proc


def feed(processor: ComplexEventProcessor) -> None:
    processor.feed(Event("A", 1, {"id": 1}))
    processor.feed(Event("B", 2, {"id": 1}))
    processor.feed(Event("B", 3, {"id": 9}))


class TestQueryMetrics:
    def test_counts_and_selectivity(self, processor):
        feed(processor)
        pairs = processor.metrics.query("pairs")
        assert pairs.events_in == 3
        assert pairs.results_out == 1
        assert pairs.selectivity == pytest.approx(1 / 3)
        all_a = processor.metrics.query("all_a")
        assert all_a.results_out == 1

    def test_busy_time_accumulates(self, processor):
        feed(processor)
        assert processor.metrics.query("pairs").busy_seconds > 0
        assert processor.metrics.total_busy_seconds >= \
            processor.metrics.query("pairs").busy_seconds

    def test_last_result_stream_time(self, processor):
        feed(processor)
        assert processor.metrics.query("pairs").last_result_at == 2
        assert processor.metrics.query("all_a").last_result_at == 1

    def test_rates(self, processor):
        feed(processor)
        metrics = processor.metrics.query("pairs")
        assert metrics.events_per_second > 0
        assert metrics.mean_feed_micros > 0

    def test_bottleneck(self, processor):
        feed(processor)
        bottleneck = processor.metrics.bottleneck()
        assert bottleneck is not None
        assert bottleneck.name in ("pairs", "all_a")

    def test_deregister_forgets(self, processor):
        feed(processor)
        processor.deregister("pairs")
        assert "pairs" not in processor.metrics.queries

    def test_report_lines(self, processor):
        feed(processor)
        lines = processor.metrics.report_lines()
        assert len(lines) == 2
        assert any("pairs" in line and "us/ev" in line for line in lines)

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.bottleneck() is None
        assert collector.report_lines() == []
        assert collector.total_busy_seconds == 0.0

    def test_zero_division_guards(self):
        metrics = QueryMetrics("q")
        assert metrics.events_per_second == 0.0
        assert metrics.mean_feed_micros == 0.0
        assert metrics.selectivity == 0.0
        assert metrics.p50_feed_micros == 0.0
        assert metrics.p95_feed_micros == 0.0


class TestLatencyPercentiles:
    def test_percentiles_from_known_samples(self):
        metrics = QueryMetrics("q")
        for micros in range(1, 101):  # 1..100 us
            metrics.observe_latency(micros / 1e6)
        assert metrics.p50_feed_micros == pytest.approx(51.0)
        assert metrics.p95_feed_micros == pytest.approx(95.0, abs=1.0)
        assert metrics.latency_percentile(0.0) == pytest.approx(1e-6)
        assert metrics.latency_percentile(1.0) == pytest.approx(1e-4)

    def test_reservoir_stays_bounded(self):
        from repro.system.metrics import _RESERVOIR_SIZE
        metrics = QueryMetrics("q")
        for _ in range(_RESERVOIR_SIZE * 3):
            metrics.observe_latency(1e-6)
        assert len(metrics._samples) == _RESERVOIR_SIZE
        assert metrics.p95_feed_micros == pytest.approx(1.0)

    def test_record_samples_per_feed_latency(self, processor):
        feed(processor)
        metrics = processor.metrics.query("pairs")
        assert metrics.p50_feed_micros > 0
        assert metrics.p95_feed_micros >= metrics.p50_feed_micros

    def test_report_lines_include_percentiles(self, processor):
        feed(processor)
        lines = processor.metrics.report_lines()
        assert any("p50" in line and "p95" in line for line in lines)

    def test_merge_delta_folds_remote_samples(self):
        metrics = QueryMetrics("q")
        metrics.merge_delta(10, 2, 0.5, 42.0,
                            samples=[1e-6, 2e-6, 3e-6])
        assert metrics.events_in == 10
        assert metrics.results_out == 2
        assert metrics.last_result_at == 42.0
        assert metrics.p50_feed_micros == pytest.approx(2.0)

    def test_reservoir_keeps_early_mode_under_phased_workload(self):
        # Regression: the old "reservoir" replaced a slot on *every*
        # post-fill sample, so a long late phase deterministically evicted
        # the entire early phase.  Real Algorithm-R acceptance keeps both
        # modes of a bimodal run represented.
        from repro.system.metrics import _RESERVOIR_SIZE
        metrics = QueryMetrics("q")
        early, late = 1e-6, 1e-3
        for _ in range(_RESERVOIR_SIZE):
            metrics.observe_latency(early)
        n_late = _RESERVOIR_SIZE * 8
        for _ in range(n_late):
            metrics.observe_latency(late)
        early_kept = sum(1 for s in metrics._samples if s == early)
        late_kept = sum(1 for s in metrics._samples if s == late)
        assert len(metrics._samples) == _RESERVOIR_SIZE
        assert early_kept > 0, "early mode evicted entirely"
        assert late_kept > 0
        # Retention should roughly track each phase's share of the stream
        # (expected early fraction is 1/9 here); allow wide slack — the
        # LCG is deterministic, so this bound is stable, not flaky.
        expected_early = _RESERVOIR_SIZE / 9
        assert early_kept == pytest.approx(expected_early, rel=0.6)
        # p50 reflects the dominant late mode, p-low still sees the early
        # mode's magnitude somewhere in the reservoir.
        assert metrics.latency_percentile(0.5) == late
        assert min(metrics._samples) == early

    def test_reservoir_replacement_is_deterministic(self):
        def run() -> list:
            metrics = QueryMetrics("q")
            for index in range(3000):
                metrics.observe_latency(float(index))
            return list(metrics._samples)
        assert run() == run()

    def test_merge_delta_out_of_order_keeps_max_freshness(self):
        # Regression: a late-arriving shard delta carrying an *older*
        # stream time used to overwrite last_result_at, moving result
        # freshness backwards.
        metrics = QueryMetrics("q")
        metrics.merge_delta(5, 1, 0.1, 40.0)
        metrics.merge_delta(5, 1, 0.1, 25.0)  # slow shard reports late
        assert metrics.last_result_at == 40.0
        metrics.merge_delta(5, 1, 0.1, None)  # no results in this delta
        assert metrics.last_result_at == 40.0
        metrics.merge_delta(5, 1, 0.1, 44.0)
        assert metrics.last_result_at == 44.0

    def test_record_does_not_rewind_freshness(self):
        # A cascade composite's event time is its detection *end*, which
        # can trail the source event that produced it; record() must keep
        # the max as well.
        metrics = QueryMetrics("q")
        metrics.record(1, 1, 0.01, 30.0)
        metrics.record(1, 1, 0.01, 12.0)
        assert metrics.last_result_at == 30.0

    def test_sample_sink_receives_raw_samples(self):
        metrics = QueryMetrics("q")
        sink: list = []
        metrics.sample_sink = sink
        metrics.observe_latency(5e-6)
        assert sink == [5e-6]


class TestShardMetrics:
    def test_collector_creates_shard_entries(self):
        collector = MetricsCollector()
        collector.shard(1).events_routed += 3
        collector.shard(0).worker_restarts += 1
        assert collector.shard(1).events_routed == 3
        assert sorted(collector.shards) == [0, 1]

    def test_report_lines_include_shards(self):
        collector = MetricsCollector()
        collector.shard(0).events_routed = 7
        collector.shard(0).queue_full_stalls = 2
        lines = collector.report_lines()
        assert any("shard 0" in line and "7 ev routed" in line
                   and "2 stalls" in line for line in lines)


class TestConsoleIntegration:
    def test_metrics_panel_rendered_on_demand(self):
        from repro.ons import ObjectNameService
        from repro.rfid import default_retail_layout
        from repro.rfid.simulator import RawReading
        from repro.rfid.tags import encode_epc
        from repro.system import SaseSystem
        from repro.ui import SaseConsole

        ons = ObjectNameService()
        ons.register_product(100, "soap", home_area_id=1)
        system = SaseSystem(default_retail_layout(), ons)
        system.register_monitoring_query(
            "shelf", "EVENT SHELF_READING x RETURN x.TagId")
        system.process_tick([RawReading(encode_epc(100), "R1", 1.0)],
                            now=1.0)
        console = SaseConsole(system)
        assert "Query Metrics" not in console.render()
        with_metrics = console.render(include_metrics=True)
        assert "Query Metrics" in with_metrics
        assert "shelf:" in with_metrics
