"""Tests for the per-query metrics collector."""

from __future__ import annotations

import pytest

from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.system import ComplexEventProcessor, MetricsCollector, \
    QueryMetrics


@pytest.fixture
def processor() -> ComplexEventProcessor:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT)
    registry.declare("B", id=AttributeType.INT)
    proc = ComplexEventProcessor(registry)
    proc.register_monitoring_query("pairs",
                                   "EVENT SEQ(A x, B y) "
                                   "WHERE x.id = y.id WITHIN 10 "
                                   "RETURN x.id")
    proc.register_monitoring_query("all_a", "EVENT A x RETURN x.id")
    return proc


def feed(processor: ComplexEventProcessor) -> None:
    processor.feed(Event("A", 1, {"id": 1}))
    processor.feed(Event("B", 2, {"id": 1}))
    processor.feed(Event("B", 3, {"id": 9}))


class TestQueryMetrics:
    def test_counts_and_selectivity(self, processor):
        feed(processor)
        pairs = processor.metrics.query("pairs")
        assert pairs.events_in == 3
        assert pairs.results_out == 1
        assert pairs.selectivity == pytest.approx(1 / 3)
        all_a = processor.metrics.query("all_a")
        assert all_a.results_out == 1

    def test_busy_time_accumulates(self, processor):
        feed(processor)
        assert processor.metrics.query("pairs").busy_seconds > 0
        assert processor.metrics.total_busy_seconds >= \
            processor.metrics.query("pairs").busy_seconds

    def test_last_result_stream_time(self, processor):
        feed(processor)
        assert processor.metrics.query("pairs").last_result_at == 2
        assert processor.metrics.query("all_a").last_result_at == 1

    def test_rates(self, processor):
        feed(processor)
        metrics = processor.metrics.query("pairs")
        assert metrics.events_per_second > 0
        assert metrics.mean_feed_micros > 0

    def test_bottleneck(self, processor):
        feed(processor)
        bottleneck = processor.metrics.bottleneck()
        assert bottleneck is not None
        assert bottleneck.name in ("pairs", "all_a")

    def test_deregister_forgets(self, processor):
        feed(processor)
        processor.deregister("pairs")
        assert "pairs" not in processor.metrics.queries

    def test_report_lines(self, processor):
        feed(processor)
        lines = processor.metrics.report_lines()
        assert len(lines) == 2
        assert any("pairs" in line and "us/ev" in line for line in lines)

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.bottleneck() is None
        assert collector.report_lines() == []
        assert collector.total_busy_seconds == 0.0

    def test_zero_division_guards(self):
        metrics = QueryMetrics("q")
        assert metrics.events_per_second == 0.0
        assert metrics.mean_feed_micros == 0.0
        assert metrics.selectivity == 0.0


class TestConsoleIntegration:
    def test_metrics_panel_rendered_on_demand(self):
        from repro.ons import ObjectNameService
        from repro.rfid import default_retail_layout
        from repro.rfid.simulator import RawReading
        from repro.rfid.tags import encode_epc
        from repro.system import SaseSystem
        from repro.ui import SaseConsole

        ons = ObjectNameService()
        ons.register_product(100, "soap", home_area_id=1)
        system = SaseSystem(default_retail_layout(), ons)
        system.register_monitoring_query(
            "shelf", "EVENT SHELF_READING x RETURN x.TagId")
        system.process_tick([RawReading(encode_epc(100), "R1", 1.0)],
                            now=1.0)
        console = SaseConsole(system)
        assert "Query Metrics" not in console.render()
        with_metrics = console.render(include_metrics=True)
        assert "Query Metrics" in with_metrics
        assert "shelf:" in with_metrics
