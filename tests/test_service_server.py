"""The asyncio JSON-lines server and blocking client, over real
sockets on the loopback interface."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.service import QueryService, ServiceClient, TenantQuota
from repro.service import protocol
from repro.service.server import serve

PAIR = "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 10\n" \
       "RETURN x.id, y.v"
SINGLE = "EVENT A x\nWITHIN 10\nRETURN x.id, x.v"


@pytest.fixture
def server(abc_registry):
    """A served QueryService; yields (service, port) and always shuts
    the server down."""
    service = QueryService(abc_registry)
    port_box: dict[str, int] = {}
    ready = threading.Event()

    def on_ready(port: int) -> None:
        port_box["port"] = port
        ready.set()

    thread = threading.Thread(target=serve, args=(service,),
                              kwargs={"ready": on_ready}, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    yield service, port_box["port"]
    if thread.is_alive():
        try:
            with ServiceClient(port=port_box["port"]) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(10)
    assert not thread.is_alive()


def _event(event_type: str, ts: float, id_value: int, v: int) -> dict:
    return {"type": event_type, "timestamp": ts,
            "attributes": {"id": id_value, "v": v}}


class TestRoundTrip:
    def test_register_feed_drain(self, server):
        _, port = server
        with ServiceClient(port=port) as client:
            assert client.ping()
            assert client.register("alice", "pairs", PAIR)["status"] \
                == "registered"
            assert client.feed("alice", _event("A", 1.0, 1, 7)) == 0
            assert client.feed("alice", _event("B", 2.0, 1, 8)) == 1
            results = client.drain("alice")
            assert len(results) == 1
            assert results[0]["attributes"] == {"x_id": 1, "y_v": 8}

    def test_quota_travels_over_the_wire(self, server):
        service, port = server
        with ServiceClient(port=port) as client:
            client.register("alice", "q", PAIR,
                            quota=TenantQuota(max_queries=1))
            with pytest.raises(ServiceError, match="query quota"):
                client.register("alice", "q2", PAIR)
        assert service.tenant("alice").quota.max_queries == 1

    def test_subscription_pushes(self, server):
        _, port = server
        with ServiceClient(port=port) as sub, \
                ServiceClient(port=port) as feeder:
            sub.register("alice", "all_a", SINGLE)
            sub.subscribe("alice")
            feeder.feed("alice", _event("A", 1.0, 1, 10))
            push = sub.wait_push()
            assert push["push"] == "result"
            assert push["tenant"] == "alice"
            assert push["attributes"] == {"x_id": 1, "x_v": 10}

    def test_two_subscribers_both_receive(self, server):
        _, port = server
        with ServiceClient(port=port) as one, \
                ServiceClient(port=port) as two, \
                ServiceClient(port=port) as feeder:
            one.register("alice", "all_a", SINGLE)
            one.subscribe("alice")
            two.subscribe("alice")
            feeder.feed("alice", _event("A", 1.0, 2, 5))
            assert one.wait_push()["attributes"]["x_id"] == 2
            assert two.wait_push()["attributes"]["x_id"] == 2

    def test_unsubscribe_stops_pushes(self, server):
        service, port = server
        with ServiceClient(port=port) as client:
            client.register("alice", "all_a", SINGLE)
            client.subscribe("alice")
            client.unsubscribe("alice")
            client.feed("alice", _event("A", 1.0, 1, 1))
            client.ping()
            assert client.take_pushes() == []
        assert len(service.tenant("alice").pending) == 1

    def test_stats_and_flush(self, server):
        _, port = server
        with ServiceClient(port=port) as client:
            client.register("alice", "pairs", PAIR)
            client.register("bob", "pairs", PAIR)
            client.feed("alice", _event("A", 1.0, 1, 1))
            client.feed("alice", _event("B", 2.0, 1, 2))
            payload = client.stats()
            assert payload["stats"]["tenants"] == 2
            assert payload["stats"]["shared_plans"]["max_fanout"] == 2
            assert payload["tenants"]["bob"]["pending_results"] == 1
            assert client.flush() == 0

    def test_drain_limit(self, server):
        _, port = server
        with ServiceClient(port=port) as client:
            client.register("alice", "all_a", SINGLE)
            for index in range(5):
                client.feed("alice", _event("A", float(index), index, 0))
            assert len(client.drain("alice", limit=2)) == 2
            assert len(client.drain("alice")) == 3


class TestErrors:
    def test_service_error_keeps_connection(self, server):
        _, port = server
        with ServiceClient(port=port) as client:
            with pytest.raises(ServiceError, match="unknown tenant"):
                client.drain("ghost")
            assert client.ping()   # still usable

    def test_malformed_json_reported(self, server):
        _, port = server
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=10) as raw:
            raw.sendall(b"this is not json\n")
            reply = json.loads(raw.makefile("rb").readline())
            assert reply["ok"] is False
            assert "invalid JSON" in reply["error"]

    def test_unknown_op_reported(self, server):
        _, port = server
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=10) as raw:
            raw.sendall(protocol.encode({"op": "explode", "id": 1}))
            reply = json.loads(raw.makefile("rb").readline())
            assert reply == {"id": 1, "ok": False,
                             "error": reply["error"]}
            assert "unknown op" in reply["error"]

    def test_subscribe_unknown_tenant(self, server):
        _, port = server
        with ServiceClient(port=port) as client:
            with pytest.raises(ServiceError, match="unknown tenant"):
                client.subscribe("ghost")

    def test_disconnect_cleans_subscription(self, server):
        service, port = server
        with ServiceClient(port=port) as client:
            client.register("alice", "all_a", SINGLE)
            client.subscribe("alice")
        # After the subscriber is gone, feeding must not fail and the
        # result stays pending for the next subscriber.
        with ServiceClient(port=port) as feeder:
            feeder.feed("alice", _event("A", 1.0, 1, 1))
            assert len(feeder.drain("alice")) == 1


class TestProtocolUnit:
    def test_decode_validates_fields(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.decode_request(b'{"op": "nope"}')
        with pytest.raises(ProtocolError, match="tenant"):
            protocol.decode_request(b'{"op": "drain"}')
        with pytest.raises(ProtocolError, match="'name'"):
            protocol.decode_request(
                b'{"op": "register", "tenant": "t"}')
        with pytest.raises(ProtocolError, match="'query'"):
            protocol.decode_request(
                b'{"op": "register", "tenant": "t", "name": "n"}')
        with pytest.raises(ProtocolError, match="'event'"):
            protocol.decode_request(b'{"op": "feed", "tenant": "t"}')
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_request(b'[1, 2]')

    def test_encode_is_one_line(self):
        line = protocol.encode({"op": "ping", "text": "a\nb"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_push_has_no_id(self):
        push = protocol.push_result({"tenant": "t", "query": "q"})
        assert protocol.is_push(push)
        assert not protocol.is_push(protocol.ok(3))


class TestCli:
    def test_serve_and_client_commands(self, tmp_path):
        """The `repro serve` / `repro client` entry points end to end."""
        import io
        from repro.cli import main

        schemas = tmp_path / "schemas.json"
        schemas.write_text(json.dumps(
            {"A": {"id": "int", "v": "int"},
             "B": {"id": "int", "v": "int"}}))
        events = tmp_path / "events.jsonl"
        events.write_text("\n".join(json.dumps(record) for record in [
            _event("A", 1.0, 1, 10), _event("B", 2.0, 1, 20)]))
        manifest = tmp_path / "manifest.json"

        serve_out = io.StringIO()
        ready = threading.Event()
        original_print = print

        def watch_ready() -> None:
            for _ in range(200):
                if "listening on" in serve_out.getvalue():
                    ready.set()
                    return
                threading.Event().wait(0.05)

        thread = threading.Thread(
            target=main,
            args=(["serve", "--schemas", str(schemas), "--manifest",
                   str(manifest), "--port", "0"], serve_out),
            daemon=True)
        thread.start()
        watcher = threading.Thread(target=watch_ready, daemon=True)
        watcher.start()
        assert ready.wait(15), serve_out.getvalue()
        port = serve_out.getvalue().split(":")[-1].split()[0].strip()

        def run(*argv: str) -> str:
            out = io.StringIO()
            assert main(list(argv) + ["--port", port], out) == 0, \
                out.getvalue()
            return out.getvalue()

        assert "registered" in run("client", "register", "alice",
                                   "pairs", PAIR)
        assert "2 event(s), 1 result(s)" in run(
            "client", "feed", "alice", "--events", str(events))
        drained = run("client", "drain", "alice")
        assert json.loads(drained.splitlines()[0])["query"] == "pairs"
        stats = json.loads(run("client", "stats"))
        assert stats["stats"]["queries"] == 1
        run("client", "shutdown")
        thread.join(10)
        assert not thread.is_alive()
        assert json.loads(manifest.read_text())["tenants"]["alice"]
