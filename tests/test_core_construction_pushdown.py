"""Tests for construction-time predicate evaluation (early DFS pruning)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine, run_query
from repro.core.plan import PlanConfig, build_plan
from repro.core.sequence import SequenceScanConstruct
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze

from tests.helpers import composite_binding_keys, make_events

CP = PlanConfig().with_construction_pushdown()


class TestPlanWiring:
    def test_selection_absorbed(self, abc_registry):
        plan = build_plan(analyze(parse_query(
            "EVENT SEQ(A x, B y) WHERE x.v < y.v WITHIN 10 RETURN x.id"),
            abc_registry), CP)
        assert not plan.needs_selection
        assert "during construction" in plan.describe()

    def test_component_filters_still_need_selection_when_not_pushed(
            self, abc_registry):
        config = PlanConfig(construction_pushdown=True,
                            filter_pushdown=False)
        plan = build_plan(analyze(parse_query(
            "EVENT SEQ(A x, B y) WHERE x.v > 3 WITHIN 10 RETURN x.id"),
            abc_registry), config)
        assert plan.needs_selection

    def test_without_accepts_name(self):
        config = CP.without("construction_pushdown")
        assert not config.construction_pushdown

    def test_scan_reports_activation(self, abc_registry):
        analyzed = analyze(parse_query(
            "EVENT SEQ(A x, B y) WHERE x.v < y.v WITHIN 10 RETURN x.id"),
            abc_registry)
        active = SequenceScanConstruct(analyzed,
                                       construction_pushdown=True)
        inactive = SequenceScanConstruct(analyzed,
                                         construction_pushdown=False)
        assert active.construction_pushdown
        assert not inactive.construction_pushdown

    def test_no_eligible_predicates_stays_inactive(self, abc_registry):
        analyzed = analyze(parse_query(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id"), abc_registry)
        # PAIS enforces the only equality; nothing left to push
        scan = SequenceScanConstruct(analyzed,
                                     construction_pushdown=True)
        assert not scan.construction_pushdown


class TestSemanticsPreserved:
    def test_prunes_same_results_as_selection(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 1}),
            ("A", 2, {"id": 1, "v": 9}),
            ("B", 3, {"id": 1, "v": 5}),
            ("C", 4, {"id": 1, "v": 7}),
        ])
        query = ("EVENT SEQ(A x, B y, C z) WHERE x.v < y.v AND "
                 "y.v < z.v WITHIN 10 RETURN x.v")
        baseline = run_query(query, abc_registry, events)
        pushed = run_query(query, abc_registry, events, config=CP)
        assert composite_binding_keys(baseline) == \
            composite_binding_keys(pushed)
        assert len(pushed) == 1 and pushed[0]["x_v"] == 1

    def test_scan_emits_fewer_candidates(self, abc_registry):
        events = make_events(
            [("A", float(i), {"id": 1, "v": 9}) for i in range(10)]
            + [("B", 50.0, {"id": 1, "v": 0})])
        query = ("EVENT SEQ(A x, B y) WHERE x.v < y.v WITHIN 100 "
                 "RETURN x.id")
        engine = Engine(abc_registry)
        plain = engine.runtime(query)
        pushed = engine.runtime(query, config=CP)
        for runtime in (plain, pushed):
            for event in events:
                runtime.feed(event)
            runtime.flush()
        assert plain.stats.operator("SSC").produced == 10
        assert pushed.stats.operator("SSC").produced == 0

    def test_with_negation(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 1}),
            ("B", 2, {"id": 1, "v": 5}),
            ("C", 3, {"id": 1, "v": 9}),
        ])
        query = ("EVENT SEQ(A x, !(B n), C z) WHERE x.v < z.v AND "
                 "n.id = x.id WITHIN 10 RETURN x.id")
        assert run_query(query, abc_registry, events, config=CP) == []

    def test_kleene_predicates_not_absorbed(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 5}),
            ("B", 2, {"id": 1, "v": 9}),
            ("B", 3, {"id": 1, "v": 1}),
        ])
        query = ("EVENT SEQ(A a, B+ b) WHERE b.v > a.v WITHIN 10 "
                 "RETURN COUNT(b) AS n")
        baseline = sorted(r["n"] for r in
                          run_query(query, abc_registry, events))
        pushed = sorted(r["n"] for r in
                        run_query(query, abc_registry, events, config=CP))
        assert baseline == pushed

    @given(seed=st.integers(min_value=0, max_value=9999),
           size=st.integers(min_value=0, max_value=35))
    @settings(max_examples=25, deadline=None)
    def test_random_streams_equivalent(self, seed, size):
        import random
        from repro.events.model import AttributeType, SchemaRegistry
        abc_registry = SchemaRegistry()
        for name in ("A", "B", "C"):
            abc_registry.declare(name, id=AttributeType.INT,
                                 v=AttributeType.INT)
        rng = random.Random(seed)
        spec = []
        ts = 0.0
        for _ in range(size):
            ts += rng.choice([0.5, 1.0, 2.0])
            spec.append((rng.choice(["A", "B", "C"]), ts,
                         {"id": rng.randrange(3), "v": rng.randrange(8)}))
        events = make_events(spec)
        query = ("EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND "
                 "y.id = z.id AND x.v <= z.v WITHIN 12 RETURN x.id")
        baseline = composite_binding_keys(
            run_query(query, abc_registry, events))
        for config in (CP, PlanConfig(partition_pushdown=False,
                                      construction_pushdown=True)):
            assert composite_binding_keys(
                run_query(query, abc_registry, events,
                          config=config)) == baseline
