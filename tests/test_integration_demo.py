"""Integration tests: the paper's demonstration scenario end to end.

These reproduce Section 4: live monitoring queries over the simulated
retail store (shoplifting, misplaced inventory), archival rules keeping the
event database current, and track-and-trace queries over it.
"""

from __future__ import annotations

import pytest

from repro.rfid import NoiseModel
from repro.system import SaseSystem
from repro.ui import SaseConsole
from repro.workloads import (
    CONTAINMENT_RULE,
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
    UNPACK_RULE,
    WarehouseConfig,
    WarehouseHistory,
)

READING_TYPES = ("SHELF_READING", "COUNTER_READING", "EXIT_READING")


def build_system(scenario: RetailScenario) -> SaseSystem:
    system = SaseSystem(scenario.layout, scenario.ons)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    for event_type in READING_TYPES:
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    return system


@pytest.fixture(scope="module")
def demo_run():
    scenario = RetailScenario.generate(RetailConfig(
        n_products=24, n_shoppers=5, n_shoplifters=2, n_misplacements=2,
        seed=13))
    system = build_system(scenario)
    noise = NoiseModel(miss_rate=0.1, duplicate_rate=0.1,
                       truncate_rate=0.02, ghost_rate=0.01)
    results = system.run_simulation(scenario.ticks(noise))
    return scenario, system, results


class TestShopliftingDetection:
    def test_exact_detection(self, demo_run):
        scenario, _, results = demo_run
        detected = {result["x_TagId"] for name, result in results
                    if name == "shoplifting"}
        assert detected == scenario.truth.shoplifted_tags()

    def test_no_purchased_item_flagged(self, demo_run):
        scenario, _, results = demo_run
        detected = {result["x_TagId"] for name, result in results
                    if name == "shoplifting"}
        assert not detected & scenario.truth.purchased_tags()

    def test_alert_carries_exit_description(self, demo_run):
        _, _, results = demo_run
        alerts = [result for name, result in results
                  if name == "shoplifting"]
        assert all("door" in alert["retrieveLocation"]
                   for alert in alerts)

    def test_detection_latency_bounded(self, demo_run):
        # an alert fires while the item is in the exit read range, plus at
        # most the smoothing window and one scan tick of slack
        scenario, _, results = demo_run
        exit_times = {incident.tag_id: incident.exit_time
                      for incident in scenario.truth.shoplifted}
        bound = scenario.config.exit_dwell + 2.0 + 1.0
        for name, result in results:
            if name != "shoplifting":
                continue
            tag = result["x_TagId"]
            latency = result.end - exit_times[tag]
            assert 0 <= latency <= bound


class TestMisplacedInventory:
    def test_exact_detection(self, demo_run):
        scenario, _, results = demo_run
        detected = {result["x_TagId"] for name, result in results
                    if name == "misplaced"}
        assert detected == scenario.truth.misplaced_tags()

    def test_alert_includes_movement_history(self, demo_run):
        _, _, results = demo_run
        alerts = [result for name, result in results
                  if name == "misplaced"]
        assert alerts
        assert all(isinstance(alert["movementHistory"], str)
                   for alert in alerts)


class TestArchivalAndTrackTrace:
    def test_shoplifted_item_last_seen_at_exit(self, demo_run):
        scenario, system, _ = demo_run
        for incident in scenario.truth.shoplifted:
            location = system.event_db.current_location(incident.tag_id)
            assert location is not None and location["area_id"] == 4

    def test_purchased_item_history_contains_counter(self, demo_run):
        scenario, system, _ = demo_run
        for purchase in scenario.truth.purchased:
            areas = [entry["area_id"] for entry in
                     system.event_db.movement_history(purchase.tag_id)]
            assert 3 in areas and areas[-1] == 4

    def test_untouched_items_still_on_home_shelf(self, demo_run):
        scenario, system, _ = demo_run
        moved = (scenario.truth.purchased_tags()
                 | scenario.truth.shoplifted_tags()
                 | scenario.truth.misplaced_tags())
        for record in scenario.ons:
            if record.tag_id in moved:
                continue
            location = system.event_db.current_location(record.tag_id)
            assert location is not None
            assert location["area_id"] == record.home_area_id

    def test_adhoc_sql_over_event_database(self, demo_run):
        _, system, _ = demo_run
        rows = system.query_database(
            "SELECT area_id, COUNT(*) AS n FROM locations "
            "WHERE time_out IS NULL GROUP BY area_id ORDER BY area_id")
        assert rows and all(row["n"] > 0 for row in rows)

    def test_console_renders_full_state(self, demo_run):
        _, system, _ = demo_run
        text = SaseConsole(system, max_lines=20).render()
        assert "shoplifting" in text and "Database Report" in text


class TestWarehouseRulesPath:
    """Containment Update driven through the processor's rules, as the
    paper's second processor task describes."""

    def test_loading_events_create_containment(self):
        history = WarehouseHistory.generate(WarehouseConfig(
            n_boxes=2, items_per_box=2, n_box_changes=0))
        system = SaseSystem(history.layout, history.ons)
        system.register_archiving_rule("containment", CONTAINMENT_RULE)
        system.register_archiving_rule("unpack", UNPACK_RULE)
        for event_type in ("LOADING_READING", "UNLOADING_READING",
                           "BACKROOM_READING", "SHELF_READING"):
            system.register_archiving_rule(
                f"loc_{event_type}", LOCATION_UPDATE_RULE(event_type))
        for event in history.events():
            system.processor.feed(event)
        system.processor.flush()
        # each item was loaded into its box at the dock
        for box in history.box_tags:
            contained = set(
                entry for tag in history.item_tags
                for entry in [tag]
                if any(parent == box for parent, _ in
                       history.truth.containment_history[tag]))
            for tag in contained:
                history_rows = system.event_db.containment_history(tag)
                assert any(row["parent_tag"] == box
                           for row in history_rows)
        # locations tracked to the shelves at the end; containment closed
        # when the item was stocked
        for tag in history.item_tags:
            location = system.event_db.current_location(tag)
            assert location is not None
            assert location["area_id"] == \
                history.truth.final_location[tag]
            assert system.event_db.current_containment(tag) is None
