"""Tests for the observability layer: tracing, profiling, metrics export.

Covers the tracer and exporter as units, the processor-level span
pipeline end-to-end (including the retail demo's Figure-3 view), span
fold-back from sharded worker backends, and the CLI wiring.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.errors import SaseError
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.obs import (
    DataflowTracer,
    MetricsExporter,
    ScanProfile,
    SlowFeedLog,
    Span,
    TICK_CONTEXT,
    parse_prometheus,
    processor_snapshot,
    to_json,
    to_prometheus,
)
from repro.obs.trace import MAX_SHIPPED_SPANS
from repro.rfid import NoiseModel
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor, SaseSystem
from repro.ui import format_trace_lines
from repro.workloads import (
    LOCATION_UPDATE_RULE,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)

PAIR = ("EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
        "RETURN x.id, y.v")


@pytest.fixture
def registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("B", id=AttributeType.INT, v=AttributeType.INT)
    return registry


def a(ts: float, id_: int, v: int = 1) -> Event:
    return Event("A", ts, {"id": id_, "v": v})


def b(ts: float, id_: int, v: int = 2) -> Event:
    return Event("B", ts, {"id": id_, "v": v})


# -- tracer unit ------------------------------------------------------------

class TestSpan:
    def test_to_dict_drops_empty_fields(self):
        span = Span(trace_id=3, op="scan")
        assert span.to_dict() == {"trace": 3, "op": "scan"}

    def test_to_dict_full(self):
        span = Span(trace_id=0, op="scan", query="q", stream="s", ts=2.0,
                    duration=1.5e-6, detail={"results": 1}, shard=2)
        assert span.to_dict() == {
            "trace": 0, "op": "scan", "query": "q", "stream": "s",
            "ts": 2.0, "duration_us": 1.5, "shard": 2,
            "detail": {"results": 1}}

    def test_tuple_round_trip_tags_shard(self):
        span = Span(trace_id=7, op="construct", query="q", ts=1.0,
                    detail={"matches": 2})
        back = Span.from_tuple(span.to_tuple(), shard=3)
        assert back.trace_id == 7 and back.op == "construct"
        assert back.detail == {"matches": 2} and back.shard == 3


class TestDataflowTracer:
    def test_begin_opens_traces_and_records_event_span(self):
        tracer = DataflowTracer()
        assert tracer.begin(a(1.0, 5), stream="default") == 0
        assert tracer.begin(a(2.0, 6), stream="default") == 1
        events = tracer.spans(op="event")
        assert [span.trace_id for span in events] == [0, 1]
        assert events[0].detail["event_type"] == "A"

    def test_record_joins_current_trace(self):
        tracer = DataflowTracer()
        tracer.begin(a(1.0, 5))
        tracer.record("scan", query="q", duration=1e-6)
        assert tracer.spans(op="scan")[0].trace_id == 0

    def test_tick_context_spans_keep_sentinel_id(self):
        tracer = DataflowTracer()
        tracer.record("clean", ts=0.0, trace_id=TICK_CONTEXT)
        tracer.begin(a(1.0, 5))
        tracer.record("clean", ts=1.0, trace_id=TICK_CONTEXT)
        assert all(span.trace_id == TICK_CONTEXT
                   for span in tracer.spans(op="clean"))

    def test_pinned_begin_reuses_id_without_event_span(self):
        tracer = DataflowTracer(ship=True)
        tracer.pin(41)
        assert tracer.begin(a(1.0, 5)) == 41
        assert tracer.spans(op="event") == []
        tracer.record("scan", query="q")
        tracer.unpin()
        assert tracer.begin(a(2.0, 6)) == 0   # own counter untouched
        assert tracer.spans(op="scan")[0].trace_id == 41

    def test_ship_and_fold_round_trip(self):
        worker = DataflowTracer(ship=True)
        worker.pin(9)
        worker.begin(a(1.0, 5))
        worker.record("scan", query="q", detail={"results": 1})
        shipped = worker.drain_shipment()
        assert shipped and worker.drain_shipment() == []
        coordinator = DataflowTracer()
        coordinator.fold(shipped, shard=2)
        folded = coordinator.spans(op="scan")[0]
        assert folded.trace_id == 9 and folded.shard == 2

    def test_drain_shipment_is_bounded(self):
        worker = DataflowTracer(capacity=2 * MAX_SHIPPED_SPANS,
                                ship=True)
        for _ in range(MAX_SHIPPED_SPANS + 10):
            worker.record("scan")
        assert len(worker.drain_shipment()) == MAX_SHIPPED_SPANS
        assert worker.dropped_shipments == 10

    def test_capacity_evicts_oldest(self):
        tracer = DataflowTracer(capacity=4)
        for index in range(10):
            tracer.record("scan", detail={"i": index})
        assert len(tracer) == 4
        assert [span.detail["i"] for span in tracer.spans()] \
            == [6, 7, 8, 9]

    def test_query_flow_keeps_context_spans(self):
        tracer = DataflowTracer()
        tracer.begin(a(1.0, 5), stream="default")
        tracer.record("dispatch", detail={"actions": 2})
        tracer.record("scan", query="mine")
        tracer.record("scan", query="other")
        tracer.begin(a(2.0, 6), stream="default")
        tracer.record("scan", query="other")
        flow = tracer.query_flow("mine")
        assert list(flow) == [0]
        assert [span.op for span in flow[0]] \
            == ["event", "dispatch", "scan"]
        assert all(span.query in (None, "mine") for span in flow[0])

    def test_dump_jsonl_to_handle_and_query_filter(self):
        tracer = DataflowTracer()
        tracer.begin(a(1.0, 5))
        tracer.record("scan", query="mine")
        tracer.begin(a(2.0, 6))
        tracer.record("scan", query="other")
        buffer = io.StringIO()
        assert tracer.dump_jsonl(buffer, query="mine") == 2
        records = [json.loads(line)
                   for line in buffer.getvalue().splitlines()]
        assert [record["op"] for record in records] == ["event", "scan"]
        assert all(record["trace"] == 0 for record in records)

    def test_dump_jsonl_to_path(self, tmp_path):
        tracer = DataflowTracer()
        tracer.begin(a(1.0, 5))
        path = tmp_path / "trace.jsonl"
        assert tracer.dump_jsonl(str(path)) == 1
        assert json.loads(path.read_text())["op"] == "event"


class TestProfileUnits:
    def test_scan_profile_counters(self):
        profile = ScanProfile(["x", "y"])
        profile.admits[0] += 3
        profile.construct_calls += 1
        profile.matches_emitted += 2
        assert profile.to_dict() == {
            "admits": {"x": 3, "y": 0},
            "construct_calls": 1, "matches_emitted": 2}
        assert profile.report_lines()[0] == "admit x: 3"

    def test_slow_feed_log_bounded_ring(self):
        log = SlowFeedLog(threshold_seconds=0.0, capacity=2)
        for index in range(5):
            log.record("q", a(float(index), index), 0.25, results=index)
        assert log.total_slow == 5 and len(log) == 2
        assert [entry.timestamp for entry in log.entries] == [3.0, 4.0]
        assert "0.25" not in log.report_lines()[0]  # ms, not raw seconds
        assert "250" in log.report_lines()[0]


# -- processor-level spans --------------------------------------------------

class TestProcessorTracing:
    def test_match_trace_has_full_operator_chain(self, registry):
        processor = ComplexEventProcessor(registry)
        tracer = processor.enable_tracing()
        processor.register_monitoring_query("pair", PAIR)
        processor.feed(a(1.0, 7))
        processor.feed(b(2.0, 7, v=3))
        ops = [span.op for span in tracer.spans(trace_id=1)]
        assert ops == ["event", "dispatch", "scan", "construct",
                       "return"]
        scan = tracer.spans(op="scan", trace_id=1)[0]
        assert scan.query == "pair" and scan.duration > 0
        assert scan.detail == {"event_type": "B", "results": 1}
        returned = tracer.spans(op="return", trace_id=1)[0]
        assert returned.detail["attributes"]["x_id"] == 7

    def test_miss_trace_has_no_construct(self, registry):
        processor = ComplexEventProcessor(registry)
        tracer = processor.enable_tracing()
        processor.register_monitoring_query("pair", PAIR)
        processor.feed(a(1.0, 7))
        assert [span.op for span in tracer.spans(trace_id=0)] \
            == ["event", "dispatch", "scan"]

    def test_enable_tracing_idempotent(self, registry):
        processor = ComplexEventProcessor(registry)
        assert processor.enable_tracing() is processor.enable_tracing()

    def test_enable_tracing_rejected_after_sharded_start(self, registry):
        processor = ComplexEventProcessor(
            registry, sharding=ShardingConfig(shards=2))
        processor.register_monitoring_query("pair", PAIR)
        processor.feed(a(1.0, 7))
        with pytest.raises(SaseError, match="before the sharded stream"):
            processor.enable_tracing()
        processor.flush()

    def test_tracing_does_not_change_results(self, registry):
        def run(trace: bool):
            processor = ComplexEventProcessor(registry)
            if trace:
                processor.enable_tracing()
            processor.register_monitoring_query("pair", PAIR)
            produced = processor.feed_many(
                [a(float(i), i % 3) for i in range(20)]
                + [b(20.0 + i, i % 3) for i in range(6)])
            produced += processor.flush()
            return [(name, result.start, result.end,
                     tuple(sorted(result.attributes.items())))
                    for name, result in produced]
        assert run(trace=True) == run(trace=False)

    def test_slow_feed_log_captures_event(self, registry):
        processor = ComplexEventProcessor(registry)
        log = processor.enable_slow_feed_log(threshold_seconds=0.0)
        processor.register_monitoring_query("pair", PAIR)
        processor.feed(a(1.0, 7))
        assert log.total_slow >= 1
        assert log.entries[0].query == "pair"
        assert log.entries[0].event_type == "A"


class TestScanProfiling:
    EVENTS = [a(1.0, 1), a(2.0, 2), b(3.0, 1), b(4.0, 9)]

    def expected(self):
        return {"admits": {"x": 2, "y": 1},
                "construct_calls": 1, "matches_emitted": 1}

    def test_interpreted_scan_counts(self, registry):
        engine = Engine(registry)
        runtime = engine.runtime(
            PAIR, config=PlanConfig().without("use_codegen"))
        assert not runtime._scan.compiled
        profile = runtime.enable_profiling()
        for event in self.EVENTS:
            runtime.feed(event)
        assert profile.to_dict() == self.expected()

    def test_codegen_scan_counts_match_interpreted(self, registry):
        engine = Engine(registry)
        runtime = engine.runtime(PAIR)
        if not runtime._scan.compiled:  # pragma: no cover - env fallback
            pytest.skip("codegen unavailable in this environment")
        assert not runtime._scan.profiled  # hooks not in default source
        profile = runtime.enable_profiling()
        assert runtime._scan.compiled and runtime._scan.profiled
        for event in self.EVENTS:
            runtime.feed(event)
        assert profile.to_dict() == self.expected()

    def test_profiling_rejected_after_first_event(self, registry):
        engine = Engine(registry)
        runtime = engine.runtime(PAIR)
        runtime.feed(a(1.0, 1))
        with pytest.raises(RuntimeError, match="before the first event"):
            runtime.enable_profiling()

    def test_processor_profiles_every_query(self, registry):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query("pair", PAIR)
        profiles = processor.enable_profiling()
        for event in self.EVENTS:
            processor.feed(event)
        assert profiles["pair"].to_dict() == self.expected()
        assert processor.scan_profiles()["pair"] is profiles["pair"]


# -- sharded span fold-back -------------------------------------------------

class TestShardedTracing:
    def run_sharded(self, registry, backend: str):
        processor = ComplexEventProcessor(
            registry, sharding=ShardingConfig(
                shards=2, backend=backend, batch_size=4))
        tracer = processor.enable_tracing()
        processor.register_monitoring_query("pair", PAIR)
        # ids 0..7: small ints hash to both shards (0..3 alone do not).
        produced = processor.feed_many(
            [a(float(i), i % 8) for i in range(16)]
            + [b(16.0 + i, i % 8) for i in range(8)])
        produced += processor.flush()
        return tracer, produced

    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    def test_worker_spans_fold_back_with_shard_ids(self, registry,
                                                   backend):
        tracer, produced = self.run_sharded(registry, backend)
        assert produced  # the workload does match
        worker_spans = [span for span in tracer.spans()
                        if span.shard is not None]
        assert {span.shard for span in worker_spans} == {0, 1}
        assert {"scan", "construct", "return"} <= \
            {span.op for span in worker_spans}
        # Shipped spans join the coordinator's traces: every worker span
        # pins a trace id the coordinator assigned to a fed event.
        event_ids = {span.trace_id for span in tracer.spans(op="event")}
        assert {span.trace_id for span in worker_spans} <= event_ids

    def test_sharded_trace_renders_with_shard_marks(self, registry):
        tracer, _ = self.run_sharded(registry, "inline")
        lines = format_trace_lines(tracer, "pair", hits_only=True)
        assert lines and any("[s0]" in line or "[s1]" in line
                             for line in lines)
        assert any("RETURN" in line for line in lines)


# -- system end-to-end (Figure 3 view) --------------------------------------

class TestRetailTracing:
    @pytest.fixture(scope="class")
    def traced_system(self):
        scenario = RetailScenario.generate(RetailConfig(
            n_products=8, n_shoppers=2, n_shoplifters=1,
            n_misplacements=1, seed=11))
        system = SaseSystem(scenario.layout, scenario.ons)
        tracer = system.enable_tracing(capacity=1 << 17)
        system.register_monitoring_query("shoplifting",
                                         SHOPLIFTING_QUERY)
        system.register_archiving_rule(
            "loc_EXIT_READING", LOCATION_UPDATE_RULE("EXIT_READING"))
        system.run_simulation(scenario.ticks(NoiseModel.perfect()))
        return system, tracer

    def test_shoplifting_flow_reaches_return(self, traced_system):
        _, tracer = traced_system
        flow = tracer.query_flow("shoplifting")
        ops_seen = {span.op for spans in flow.values()
                    for span in spans}
        assert {"event", "dispatch", "scan", "construct", "return"} \
            <= ops_seen

    def test_cleaning_spans_in_tick_context(self, traced_system):
        _, tracer = traced_system
        cleans = tracer.spans(op="clean")
        assert cleans and all(span.trace_id == TICK_CONTEXT
                              for span in cleans)
        assert tracer.spans(op="associate")

    def test_db_write_spans_recorded(self, traced_system):
        _, tracer = traced_system
        assert tracer.spans(op="db_write", query="loc_EXIT_READING")

    def test_console_renders_stage_chain(self, traced_system):
        _, tracer = traced_system
        lines = format_trace_lines(tracer, "shoplifting",
                                   hits_only=True)
        assert lines
        assert any("scan" in line and "construct" in line
                   and "RETURN" in line for line in lines)


# -- metrics export ---------------------------------------------------------

def feed_pairs(processor: ComplexEventProcessor) -> None:
    for index in range(8):
        processor.feed(a(float(index), index % 2))
    processor.feed(b(9.0, 0))


class TestMetricsExport:
    def test_json_snapshot_round_trips(self, registry):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query("pair", PAIR)
        feed_pairs(processor)
        snapshot = processor_snapshot(processor)
        assert json.loads(to_json(snapshot)) == snapshot
        pair = snapshot["queries"]["pair"]
        assert pair["events_in"] == 9 and pair["results_out"] == 4
        plan = snapshot["plans"]["pair"]
        assert plan["events_consumed"] == 9
        assert plan["operators"]["SSC"]["consumed"] == 9

    def test_prometheus_round_trips(self, registry):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query("pair", PAIR)
        feed_pairs(processor)
        text = to_prometheus(processor_snapshot(processor))
        parsed = parse_prometheus(text)
        key = ("sase_query_events_total", (("query", "pair"),))
        assert parsed[key] == 9.0
        quantile_key = ("sase_query_feed_latency_seconds",
                        (("quantile", "0.5"), ("query", "pair")))
        assert parsed[quantile_key] >= 0.0

    def test_prometheus_includes_shard_counters(self, registry):
        processor = ComplexEventProcessor(
            registry, sharding=ShardingConfig(shards=2))
        processor.register_monitoring_query("pair", PAIR)
        feed_pairs(processor)
        processor.flush()
        parsed = parse_prometheus(
            to_prometheus(processor_snapshot(processor)))
        routed = sum(value for (metric, _), value in parsed.items()
                     if metric == "sase_shard_events_routed_total")
        assert routed == 9.0

    def test_remote_gauges_round_trip(self, registry):
        # The remote-backend connection metrics render in both formats
        # and survive the Prometheus parser, like every other gauge.
        from repro.obs.export import collector_snapshot
        from repro.system.metrics import MetricsCollector
        collector = MetricsCollector()
        shard = collector.shard(0)
        shard.remote_reconnects = 2
        shard.remote_heartbeats = 5
        shard.remote_bytes_sent = 1234
        shard.remote_bytes_received = 987
        shard.remote_inflight = 3
        shard.observe_rtt(0.002)
        shard.observe_rtt(0.004)
        snapshot = collector_snapshot(collector)
        entry = snapshot["shards"]["0"]
        assert entry["remote_reconnects"] == 2
        assert entry["remote_inflight"] == 3
        assert entry["remote_rtt_p50_seconds"] > 0
        parsed = parse_prometheus(to_prometheus(snapshot))
        labels = (("shard", "0"),)
        assert parsed[("sase_shard_remote_reconnects_total",
                       labels)] == 2.0
        assert parsed[("sase_shard_remote_heartbeats_total",
                       labels)] == 5.0
        assert parsed[("sase_shard_remote_bytes_sent_total",
                       labels)] == 1234.0
        assert parsed[("sase_shard_remote_bytes_received_total",
                       labels)] == 987.0
        assert parsed[("sase_shard_remote_inflight", labels)] == 3.0
        p50 = parsed[("sase_shard_remote_rtt_seconds",
                      (("quantile", "0.5"), ("shard", "0")))]
        p95 = parsed[("sase_shard_remote_rtt_seconds",
                      (("quantile", "0.95"), ("shard", "0")))]
        assert 0 < p50 <= p95

    def test_network_hardening_counters_round_trip(self):
        # The PR 6 network counters (backoff spent reconnecting, auth
        # rejections, partition declarations) flow through JSON and
        # Prometheus with parse_prometheus parity, like the rest.
        from repro.obs.export import collector_snapshot
        from repro.system.metrics import MetricsCollector
        collector = MetricsCollector()
        shard = collector.shard(1)
        shard.reconnect_backoff_ms = 12.5
        shard.remote_auth_failures = 2
        shard.remote_partitions = 1
        snapshot = collector_snapshot(collector)
        entry = snapshot["shards"]["1"]
        assert entry["reconnect_backoff_ms"] == 12.5
        assert entry["remote_auth_failures"] == 2
        assert entry["remote_partitions"] == 1
        parsed = parse_prometheus(to_prometheus(snapshot))
        labels = (("shard", "1"),)
        assert parsed[("sase_shard_reconnect_backoff_ms_total",
                       labels)] == 12.5
        assert parsed[("sase_shard_remote_auth_failures_total",
                       labels)] == 2.0
        assert parsed[("sase_shard_remote_partitions_total",
                       labels)] == 1.0

    def test_label_escaping_round_trips(self):
        snapshot = {"queries": {'we"ird\nname\\q': {
            "events_in": 1, "results_out": 0, "busy_seconds": 0.0,
            "selectivity": 0.0, "last_result_at": None,
            "p50_feed_seconds": None, "p95_feed_seconds": None}}}
        parsed = parse_prometheus(to_prometheus(snapshot))
        assert parsed[("sase_query_events_total",
                       (("query", 'we"ird\nname\\q'),))] == 1.0

    def test_exporter_format_from_path(self, registry, tmp_path):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query("pair", PAIR)
        assert MetricsExporter(
            processor, str(tmp_path / "m.prom")).fmt == "prometheus"
        assert MetricsExporter(
            processor, str(tmp_path / "m.json")).fmt == "json"
        with pytest.raises(ValueError):
            MetricsExporter(processor, "m", fmt="xml")

    def test_exporter_flush_writes_file(self, registry, tmp_path):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query("pair", PAIR)
        feed_pairs(processor)
        path = tmp_path / "metrics.json"
        exporter = MetricsExporter(processor, str(path))
        rendered = exporter.flush()
        assert path.read_text() == rendered
        assert json.loads(rendered)["queries"]["pair"]["events_in"] == 9

    def test_exporter_tick_cadence(self, registry, tmp_path):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query("pair", PAIR)
        exporter = MetricsExporter(processor, str(tmp_path / "m.json"),
                                   every_events=5)
        assert [exporter.tick(2) for _ in range(5)] \
            == [False, False, True, False, False]
        assert exporter.tick(1) is True   # 2 + 2 + 1 >= 5 again
        assert exporter.flush_count == 2

    def test_system_drives_attached_exporter(self, tmp_path):
        scenario = RetailScenario.generate(RetailConfig(
            n_products=6, n_shoppers=2, n_shoplifters=1,
            n_misplacements=1, seed=5))
        system = SaseSystem(scenario.layout, scenario.ons)
        system.register_monitoring_query("shoplifting",
                                         SHOPLIFTING_QUERY)
        path = tmp_path / "metrics.prom"
        system.attach_exporter(MetricsExporter(
            system.processor, str(path), every_events=50))
        system.run_simulation(scenario.ticks(NoiseModel.perfect()))
        assert system.exporter.flush_count >= 1
        assert "sase_query_events_total" in path.read_text()


# -- CLI wiring -------------------------------------------------------------

class TestCli:
    def test_trace_command(self, tmp_path):
        out = io.StringIO()
        jsonl = tmp_path / "trace.jsonl"
        assert main(["trace", "--products", "6", "--shoppers", "2",
                     "--shoplifters", "1", "--limit", "4",
                     "--jsonl", str(jsonl)], out) == 0
        text = out.getvalue()
        assert "dataflow trace for 'shoplifting'" in text
        assert "scan profile for 'shoplifting'" in text
        assert "RETURN" in text
        records = [json.loads(line)
                   for line in jsonl.read_text().splitlines()]
        assert records and all(
            record.get("query") in (None, "shoplifting")
            for record in records)

    def test_trace_command_unknown_query(self):
        out = io.StringIO()
        assert main(["trace", "--query", "nope"], out) == 2
        assert "unknown query" in out.getvalue()

    def test_demo_metrics_and_trace_out(self, tmp_path):
        out = io.StringIO()
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        assert main(["demo", "--products", "6", "--shoppers", "2",
                     "--noise", "none", "--metrics-out", str(metrics),
                     "--trace-out", str(trace)], out) == 0
        parsed = parse_prometheus(metrics.read_text())
        assert parsed[("sase_query_results_total",
                       (("query", "shoplifting"),))] >= 1.0
        lines = trace.read_text().splitlines()
        assert lines and {json.loads(line)["op"] for line in lines} \
            >= {"event", "dispatch", "scan"}
        assert "trace span(s) written" in out.getvalue()
