"""Deterministic chaos tests for the sharded runtime and persistence.

The acceptance matrix: each recoverable fault class (corrupt ingest,
transient WAL I/O, worker crash, worker hang) against shard counts and
backends must either produce output identical to the fault-free run, or
degrade *explicitly* (dead-letter records, ``complete=False`` results,
counted lost events) — and never deadlock or raise through ``feed()``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.persist import FsyncPolicy
from repro.persist.checkpoint import CheckpointStore
from repro.persist.wal import WriteAheadLog
from repro.resilience import (
    ChaosConfig,
    CLOSED,
    FaultInjector,
    ResilienceConfig,
)
from repro.rfid import NoiseModel
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor, SaseSystem
from repro.workloads import (
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


@pytest.fixture(scope="module")
def stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=260, n_types=4, id_domain=8, seed=7))


def run_stream(stream, sharding, resilience=None):
    processor = ComplexEventProcessor(stream.registry,
                                      sharding=sharding,
                                      resilience=resilience)
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.register("negpair",
                       seq_query(2, window=5.0, partitioned=True,
                                 negation_at=2))
    produced = []
    for event in stream.events:
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    fp = fingerprint(produced)
    return fp, processor


def chaos_resilience(chaos, **overrides):
    kwargs = dict(chaos=chaos, chaos_seed=7, hang_timeout=0.4,
                  breaker_cooldown=0.2)
    kwargs.update(overrides)
    return ResilienceConfig(**kwargs)


@pytest.fixture(scope="module")
def baseline(stream):
    fp, _ = run_stream(stream, None)
    return fp


class TestWorkerFaultMatrix:
    """Crash and hang recovery: byte-identical output, every backend,
    every shard count."""

    @pytest.mark.parametrize("backend", ["inline", "thread", "process"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("fault", ["worker.crash@2", "worker.hang@2"])
    def test_one_shot_fault_recovers_identically(self, stream, baseline,
                                                 backend, shards, fault):
        sharding = ShardingConfig(shards=shards, backend=backend,
                                  batch_size=8, queue_capacity=4,
                                  response_timeout=60.0)
        fp, processor = run_stream(stream, sharding,
                                   chaos_resilience(fault))
        try:
            assert fp == baseline
            assert not processor.degraded
            metrics = processor.metrics
            restarts = sum(shard.worker_restarts
                           for shard in metrics.shards.values())
            if backend == "inline":
                # Inline shards run in-process: worker chaos has no
                # workers to kill, and nothing to restart.
                assert restarts == 0
            else:
                assert restarts >= 1
                if "hang" in fault:
                    assert sum(shard.worker_hangs for shard
                               in metrics.shards.values()) >= 1
        finally:
            processor.close()

    def test_clean_chaos_run_matches_without_faults_armed(self, stream,
                                                          baseline):
        # Resilience on, chaos spec armed at a site that never fires
        # (worker.crash at an unreachable opportunity count): supervised
        # runs must still be exactly identical.
        sharding = ShardingConfig(shards=2, backend="thread",
                                  batch_size=8, queue_capacity=4)
        fp, processor = run_stream(stream, sharding,
                                   chaos_resilience("worker.crash@100000"))
        processor.close()
        assert fp == baseline


class TestBreakerAndDegradedMode:
    def test_repeated_crashes_open_breaker_and_degrade(self, stream):
        # Every batch crashes the worker, in every incarnation: the
        # restart budget exhausts, the breaker opens, the shard is
        # abandoned, and the run finishes with explicit degradation.
        sharding = ShardingConfig(shards=2, backend="thread",
                                  batch_size=8, queue_capacity=4,
                                  response_timeout=30.0)
        resilience = chaos_resilience("worker.crash@1*", max_restarts=1,
                                      breaker_cooldown=3600.0)
        fp, processor = run_stream(stream, sharding, resilience)
        try:
            assert processor.degraded
            metrics = processor.metrics
            assert sum(shard.breaker_opens
                       for shard in metrics.shards.values()) >= 1
            assert sum(shard.events_lost
                       for shard in metrics.shards.values()) > 0
        finally:
            processor.close()

    def test_degraded_results_carry_complete_false(self, stream):
        # A local (function-calling) query rides alongside the sharded
        # pair query.  When the shards die, the local query keeps
        # producing — and every one of its matches must carry the
        # explicit ``complete=False`` staleness flag.
        from repro.funcs import FunctionRegistry
        functions = FunctionRegistry()
        functions.register("_ident", lambda value: value)
        sharding = ShardingConfig(shards=2, backend="thread",
                                  batch_size=8, queue_capacity=4,
                                  response_timeout=30.0)
        resilience = chaos_resilience("worker.crash@1*", max_restarts=0,
                                      breaker_cooldown=3600.0)
        processor = ComplexEventProcessor(stream.registry,
                                          functions=functions,
                                          sharding=sharding,
                                          resilience=resilience)
        processor.register("pair",
                           seq_query(2, window=5.0, partitioned=True))
        processor.register("tick", (
            "EVENT SEQ(A e0, B e1)\nWHERE _ident(e0.v) >= 0\n"
            "WITHIN 5 seconds\nRETURN e0.id"))
        produced = []
        for event in stream.events:
            produced.extend(processor.feed(event))
        produced.extend(processor.flush())
        processor.close()
        assert processor.degraded
        local_results = [result for name, result in produced
                         if name == "tick"]
        assert local_results
        assert not all(result.complete for result in local_results), \
            "degraded mode must flag emitted matches incomplete"

    def test_half_open_probe_revives_the_shard(self, stream):
        # One-shot crash with a zero restart budget: the shard is lost
        # immediately, the breaker cools down mid-stream, and the next
        # routing attempt revives it via the half-open probe.  The
        # one-shot fault does not re-fire in incarnation 1, so the
        # probe succeeds and the breaker closes again.
        sharding = ShardingConfig(shards=1, backend="thread",
                                  batch_size=4, queue_capacity=4,
                                  response_timeout=30.0)
        resilience = chaos_resilience("worker.crash@2", max_restarts=0,
                                      breaker_cooldown=0.15)
        processor = ComplexEventProcessor(stream.registry,
                                          sharding=sharding,
                                          resilience=resilience)
        processor.register("pair",
                           seq_query(2, window=5.0, partitioned=True))
        half = len(stream.events) // 2
        produced = []
        for event in stream.events[:half]:
            produced.extend(processor.feed(event))
        time.sleep(0.3)  # let the breaker cool down to half-open
        for event in stream.events[half:]:
            produced.extend(processor.feed(event))
        produced.extend(processor.flush())
        states = processor._router.supervisor_states()
        metrics = processor.metrics
        processor.close()
        assert sum(shard.worker_restarts
                   for shard in metrics.shards.values()) >= 1
        assert states[0] == CLOSED  # the probe succeeded and closed it
        # Results flow again after the revival: the tail of the stream
        # produced matches.
        assert any(result.end > stream.events[half].timestamp
                   for _, result in produced)


class TestShedding:
    def overload_run(self, stream, policy):
        sharding = ShardingConfig(shards=2, backend="thread",
                                  batch_size=1, queue_capacity=1,
                                  response_timeout=60.0)
        resilience = ResilienceConfig(
            chaos="worker.slow:0.003", chaos_seed=7, shedding=policy,
            hang_timeout=3600.0)  # the worker is slow, not hung
        fp, processor = run_stream(stream, sharding, resilience)
        shed = sum(shard.events_shed
                   for shard in processor.metrics.shards.values())
        processor.close()
        return fp, shed

    def test_block_policy_sheds_nothing_and_stays_exact(self, stream,
                                                        baseline):
        fp, shed = self.overload_run(stream, "block")
        assert shed == 0
        assert fp == baseline

    @pytest.mark.parametrize("policy", ["drop-newest", "drop-oldest",
                                        "sample:0.2"])
    def test_dropping_policies_shed_and_terminate(self, stream, baseline,
                                                  policy):
        fp, shed = self.overload_run(stream, policy)
        assert shed > 0, f"{policy} shed nothing under overload"
        # Watermark safety: shedding thins matches but cannot invent
        # pair matches — every emitted pair match exists in the
        # baseline (the shed events' timestamps still advanced time).
        baseline_pairs = {entry for entry in baseline
                          if entry[0] == "pair"}
        emitted_pairs = {entry for entry in fp if entry[0] == "pair"}
        assert emitted_pairs <= baseline_pairs

    def test_inline_backend_never_sheds(self, stream, baseline):
        sharding = ShardingConfig(shards=2, backend="inline",
                                  batch_size=1, queue_capacity=1)
        resilience = ResilienceConfig(shedding="drop-newest",
                                      chaos_seed=7)
        fp, processor = run_stream(stream, sharding, resilience)
        shed = sum(shard.events_shed
                   for shard in processor.metrics.shards.values())
        processor.close()
        assert shed == 0 and fp == baseline


class TestHungWorkerShutdown:
    """Satellite: ``close()`` must be bounded even when a worker is
    wedged mid-batch — a hang can delay shutdown, never prevent it."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_close_returns_despite_wedged_worker(self, stream, backend):
        sharding = ShardingConfig(shards=1, backend=backend,
                                  batch_size=1, queue_capacity=8,
                                  response_timeout=60.0)
        # Hang immediately, with supervision off: nothing will ever
        # detect or restart the wedged worker; close() must still win.
        resilience = ResilienceConfig(chaos="worker.hang@1",
                                      chaos_seed=7, supervise=False)
        processor = ComplexEventProcessor(stream.registry,
                                          sharding=sharding,
                                          resilience=resilience)
        processor.register("pair",
                           seq_query(2, window=5.0, partitioned=True))
        for event in stream.events[:4]:
            processor.feed(event)
        time.sleep(0.1)  # let the worker pick up a batch and wedge
        started = time.monotonic()
        processor.close()
        elapsed = time.monotonic() - started
        assert elapsed < 10.0, f"close() took {elapsed:.1f}s"
        processor.close()  # idempotent

    def test_system_close_is_bounded_too(self):
        scenario = RetailScenario.generate(RetailConfig(
            n_products=4, n_shoppers=1, n_shoplifters=1,
            n_misplacements=1, seed=3))
        system = SaseSystem(
            scenario.layout, scenario.ons,
            sharding=ShardingConfig(shards=1, backend="thread",
                                    batch_size=1),
            resilience=ResilienceConfig(chaos="worker.hang@1",
                                        chaos_seed=1, supervise=False))
        system.register_monitoring_query("shoplifting",
                                         SHOPLIFTING_QUERY)
        ticks = list(scenario.ticks(NoiseModel.perfect()))[:3]
        for now, readings in ticks:
            system.process_tick(readings, now)
        time.sleep(0.1)
        started = time.monotonic()
        system.close()
        assert time.monotonic() - started < 10.0


class TestIngestCorruptionMatrix:
    """Corrupt ingest degrades explicitly (dead letters), identically
    across every backend and shard count."""

    def corrupt_run(self, backend, shards):
        scenario = RetailScenario.generate(RetailConfig(
            n_products=6, n_shoppers=2, n_shoplifters=1,
            n_misplacements=1, seed=11))
        sharding = None
        if backend != "single":
            sharding = ShardingConfig(shards=shards, backend=backend,
                                      batch_size=8)
        system = SaseSystem(
            scenario.layout, scenario.ons, sharding=sharding,
            resilience=ResilienceConfig(chaos="ingest.corrupt=0.05",
                                        chaos_seed=13))
        system.register_monitoring_query("shoplifting",
                                         SHOPLIFTING_QUERY)
        system.register_monitoring_query("misplaced",
                                         MISPLACED_INVENTORY_QUERY)
        results = system.run_simulation(
            scenario.ticks(NoiseModel.perfect()))
        dead = len(system.dead_letters)
        injected = system.injector.total_injected
        system.close()
        return fingerprint(results), dead, injected

    def test_identical_across_backends_and_shards(self):
        reference, dead, injected = self.corrupt_run("single", 1)
        assert injected > 0
        assert dead == injected  # every corruption is accounted for
        for backend, shards in (("inline", 2), ("thread", 2),
                                ("thread", 4), ("process", 2)):
            fp, dead_too, injected_too = self.corrupt_run(backend,
                                                          shards)
            assert fp == reference, (backend, shards)
            assert (dead_too, injected_too) == (dead, injected)


class TestPersistenceChaos:
    """Transient WAL/checkpoint I/O faults are retried invisibly."""

    def write_wal(self, directory, injector=None):
        wal = WriteAheadLog(directory, FsyncPolicy.parse("every_n:4"),
                            group_items=4, linger_seconds=0.0,
                            injector=injector)
        for index in range(64):
            wal.append(("EVT", float(index), {"n": index}, index))
        wal.sync()
        wal.close()
        return [item for _, item in
                WriteAheadLog(directory,
                              FsyncPolicy.parse("every_n:4")).replay(0)]

    def test_wal_write_and_fsync_faults_are_invisible(self, tmp_path):
        clean_dir = str(tmp_path / "clean")
        chaos_dir = str(tmp_path / "chaos")
        os.makedirs(clean_dir)
        os.makedirs(chaos_dir)
        clean = self.write_wal(clean_dir)
        injector = FaultInjector(
            ChaosConfig.parse("wal.write@2,wal.fsync@1", seed=5),
            scope="wal")
        chaotic = self.write_wal(chaos_dir, injector)
        assert injector.total_injected == 2
        assert chaotic == clean
        # Byte-identical on disk, not just logically equal on replay.
        clean_bytes = b"".join(
            open(os.path.join(clean_dir, name), "rb").read()
            for name in sorted(os.listdir(clean_dir)))
        chaos_bytes = b"".join(
            open(os.path.join(chaos_dir, name), "rb").read()
            for name in sorted(os.listdir(chaos_dir)))
        assert chaos_bytes == clean_bytes

    def test_checkpoint_dump_fault_is_retried(self, tmp_path):
        injector = FaultInjector(
            ChaosConfig.parse("db.dump@1", seed=5), scope="ckpt")
        store = CheckpointStore(str(tmp_path), injector=injector)
        snapshot = {"version": 1, "wal_lsn": 8, "emitted": 2,
                    "replay_lsn": 0, "db": {}}
        store.write(snapshot)
        assert injector.total_injected == 1
        assert store.latest() == snapshot
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".tmp")]

    def test_end_to_end_persistence_run_with_wal_chaos(self, tmp_path):
        scenario = RetailScenario.generate(RetailConfig(
            n_products=6, n_shoppers=2, n_shoplifters=1,
            n_misplacements=1, seed=11))

        def run(data_dir, chaos):
            from repro.persist import PersistenceConfig
            resilience = None
            if chaos:
                resilience = ResilienceConfig(chaos=chaos, chaos_seed=3)
            system = SaseSystem(
                scenario.layout, scenario.ons,
                persistence=PersistenceConfig(
                    data_dir=data_dir,
                    fsync=FsyncPolicy.parse("every_n:8"),
                    checkpoint_every=64),
                resilience=resilience)
            system.register_monitoring_query("shoplifting",
                                             SHOPLIFTING_QUERY)
            system.recover()
            results = system.run_simulation(
                scenario.ticks(NoiseModel.perfect()))
            system.close()
            return fingerprint(results)

        clean = run(str(tmp_path / "clean"), None)
        chaotic = run(str(tmp_path / "chaos"),
                      "wal.write@3,wal.fsync@1,db.dump@1")
        assert chaotic == clean
