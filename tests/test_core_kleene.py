"""End-to-end tests for the Kleene closure extension (SASE+)."""

from __future__ import annotations


from repro.core.engine import run_query
from repro.core.plan import KleeneMode, PlanConfig

from tests.helpers import make_events


def kleene_events():
    return make_events([
        ("A", 1, {"id": 1, "v": 0}),
        ("B", 2, {"id": 1, "v": 10}),
        ("B", 3, {"id": 1, "v": 20}),
        ("B", 4, {"id": 2, "v": 99}),   # other partition
        ("B", 5, {"id": 1, "v": 30}),
        ("C", 6, {"id": 1, "v": 0}),
    ])


class TestTrailingKleene:
    QUERY = ("EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 100 "
             "RETURN COUNT(b) AS n, SUM(b.v) AS total")

    def test_maximal_mode_bindings(self, abc_registry):
        results = run_query(self.QUERY, abc_registry, kleene_events())
        got = sorted((result["n"], result["total"]) for result in results)
        # triggers at t=2,3,5; per trigger: singleton + maximal per anchor
        assert got == [(1, 10.0), (1, 20.0), (1, 30.0),
                       (2, 30.0), (2, 50.0), (3, 60.0)]

    def test_partition_isolates_kleene_events(self, abc_registry):
        results = run_query(self.QUERY, abc_registry, kleene_events())
        assert all(result["total"] != 99 for result in results)


class TestMiddleKleene:
    QUERY = ("EVENT SEQ(A a, B+ b, C c) WHERE a.id = b.id AND a.id = c.id "
             "WITHIN 100 RETURN COUNT(b) AS n, AVG(b.v) AS mean")

    def test_maximal_mode(self, abc_registry):
        results = run_query(self.QUERY, abc_registry, kleene_events())
        got = sorted((result["n"], result["mean"]) for result in results)
        # anchors t=2,3,5 each absorb all later Bs of partition 1 before C
        assert got == [(1, 30.0), (2, 25.0), (3, 20.0)]

    def test_subset_mode(self, abc_registry):
        config = PlanConfig(kleene_mode=KleeneMode.ANY_SUBSET)
        results = run_query(self.QUERY, abc_registry, kleene_events(),
                            config=config)
        counts = sorted(result["n"] for result in results)
        # all non-empty subsets of the three B events: 7
        assert counts == [1, 1, 1, 2, 2, 2, 3]

    def test_subset_cap_bounds_explosion(self, abc_registry):
        config = PlanConfig(kleene_mode=KleeneMode.ANY_SUBSET,
                            max_kleene_events=0)
        results = run_query(self.QUERY, abc_registry, kleene_events(),
                            config=config)
        # cap=0: only the anchors themselves
        assert sorted(result["n"] for result in results) == [1, 1, 1]


class TestKleenePredicates:
    def test_per_event_predicate_trims_in_maximal_mode(self, abc_registry):
        query = ("EVENT SEQ(A a, B+ b, C c) "
                 "WHERE a.id = b.id AND a.id = c.id AND b.v > 15 "
                 "WITHIN 100 RETURN COUNT(b) AS n, MIN(b.v) AS low")
        results = run_query(query, abc_registry, kleene_events())
        assert all(result["low"] > 15 for result in results)
        assert max(result["n"] for result in results) == 2  # v=20, v=30

    def test_aggregate_first_last(self, abc_registry):
        query = ("EVENT SEQ(A a, B+ b, C c) WHERE a.id = b.id AND "
                 "a.id = c.id WITHIN 100 "
                 "RETURN FIRST(b.v) AS head, LAST(b.v) AS tail")
        results = run_query(query, abc_registry, kleene_events())
        full = [result for result in results
                if result["head"] == 10.0]
        assert full and all(result["tail"] == 30.0 for result in full)

    def test_kleene_stock_monitoring_shape(self, abc_registry):
        # the "recursive pattern matching" motivation: a run of increasing
        # values after a trigger event
        events = make_events([
            ("A", 1, {"id": 7, "v": 0}),
            ("B", 2, {"id": 7, "v": 5}),
            ("B", 3, {"id": 7, "v": 3}),   # fails b.v > a.v + 4
            ("B", 4, {"id": 7, "v": 9}),
            ("C", 5, {"id": 7, "v": 0}),
        ])
        query = ("EVENT SEQ(A a, B+ b, C c) WHERE a.id = b.id AND "
                 "a.id = c.id AND b.v > a.v + 4 WITHIN 100 "
                 "RETURN COUNT(b) AS n")
        results = run_query(query, abc_registry, events)
        assert max(result["n"] for result in results) == 2
