"""Differential tests: three independent implementations must agree.

For randomly generated streams and a family of queries, the plan engine
(under every optimizer configuration), the relational window-join baseline,
and the brute-force oracle must produce exactly the same match sets.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import WindowJoinEngine
from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze

from tests.helpers import binding_keys, composite_binding_keys, \
    oracle_matches

QUERIES = [
    "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND y.id = z.id "
    "WITHIN 15 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE x.v < y.v WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, !(B y), C z) WHERE x.id = y.id AND x.id = z.id "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(!(C w), A x, B y) WHERE x.id = y.id AND w.id = x.id "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y, !(C w)) WHERE x.id = y.id AND w.id = x.id "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, A y) WHERE x.id = y.id WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, !(B y), C z) WHERE x.id = z.id AND y.v > 5 "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) RETURN x.id",  # unbounded window
]

CONFIGS = [
    PlanConfig(),
    PlanConfig.naive(),
    PlanConfig().without("partition_pushdown"),
    PlanConfig().without("window_pushdown"),
]


def _registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    for name in ("A", "B", "C"):
        registry.declare(name, id=AttributeType.INT, v=AttributeType.INT)
    return registry


def _random_stream(seed: int, size: int, id_domain: int = 3,
                   tie_probability: float = 0.2) -> list[Event]:
    rng = random.Random(seed)
    events = []
    ts = 0.0
    for index in range(size):
        if rng.random() > tie_probability:
            ts += rng.choice([0.5, 1.0, 2.0])
        events.append(Event(
            rng.choice(["A", "B", "C"]), ts,
            {"id": rng.randrange(id_domain), "v": rng.randrange(10)},
        ).with_seq(index))
    return events


@pytest.mark.parametrize("query_text", QUERIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_engine_matches_oracle_and_baseline(query_text, seed):
    registry = _registry()
    events = _random_stream(seed, size=30)
    analyzed = analyze(parse_query(query_text), registry)

    expected = binding_keys(oracle_matches(analyzed, events))

    baseline = WindowJoinEngine(analyzed)
    baseline_keys = composite_binding_keys(baseline.run(events))
    assert baseline_keys == expected, "baseline disagrees with oracle"

    engine = Engine(registry)
    for config in CONFIGS:
        got = composite_binding_keys(
            engine.run(query_text, events, config=config))
        assert got == expected, f"engine ({config}) disagrees with oracle"


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=0, max_value=40),
       query_index=st.integers(min_value=0, max_value=len(QUERIES) - 1))
def test_engine_matches_oracle_hypothesis(seed, size, query_index):
    registry = _registry()
    query_text = QUERIES[query_index]
    events = _random_stream(seed, size)
    analyzed = analyze(parse_query(query_text), registry)
    expected = binding_keys(oracle_matches(analyzed, events))
    engine = Engine(registry)
    got = composite_binding_keys(engine.run(query_text, events))
    assert got == expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=0, max_value=40))
def test_naive_plan_equals_optimized_hypothesis(seed, size):
    registry = _registry()
    query_text = QUERIES[4]  # middle negation with partition
    events = _random_stream(seed, size)
    engine = Engine(registry)
    optimized = composite_binding_keys(engine.run(query_text, events))
    naive = composite_binding_keys(
        engine.run(query_text, events, config=PlanConfig.naive()))
    assert optimized == naive
