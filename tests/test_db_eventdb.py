"""Tests for the event database: archival rules + track-and-trace."""

from __future__ import annotations

import pytest

from repro.db import EventDatabase
from repro.errors import DatabaseError
from repro.events.event import Event


@pytest.fixture
def edb() -> EventDatabase:
    database = EventDatabase()
    database.register_area(1, "shelf", "shelf A")
    database.register_area(2, "shelf", "shelf B")
    database.register_area(4, "exit", "south exit")
    database.register_product(100, "soap", price=1.99)
    return database


class TestLocationUpdate:
    def test_first_update_opens_stay(self, edb):
        assert edb.update_location(100, 1, 10.0)
        location = edb.current_location(100)
        assert location is not None
        assert location["area_id"] == 1 and location["time_out"] is None

    def test_move_closes_previous_stay(self, edb):
        edb.update_location(100, 1, 10.0)
        edb.update_location(100, 2, 20.0)
        history = edb.movement_history(100)
        assert [(entry["area_id"], entry["time_in"], entry["time_out"])
                for entry in history] == [(1, 10.0, 20.0), (2, 20.0, None)]

    def test_same_area_is_noop(self, edb):
        edb.update_location(100, 1, 10.0)
        assert not edb.update_location(100, 1, 50.0)
        assert len(edb.movement_history(100)) == 1

    def test_backwards_time_rejected(self, edb):
        edb.update_location(100, 1, 10.0)
        with pytest.raises(DatabaseError, match="precedes"):
            edb.update_location(100, 2, 5.0)

    def test_history_includes_descriptions(self, edb):
        edb.update_location(100, 1, 10.0)
        edb.update_location(100, 4, 20.0)
        history = edb.movement_history(100)
        assert history[-1]["description"] == "south exit"

    def test_unknown_tag_has_no_location(self, edb):
        assert edb.current_location(999) is None
        assert edb.movement_history(999) == []


class TestContainment:
    def test_open_and_close(self, edb):
        edb.update_containment(100, 900, 5.0)
        assert edb.current_containment(100) == 900
        edb.update_containment(100, None, 9.0)
        assert edb.current_containment(100) is None
        history = edb.containment_history(100)
        assert [(entry["parent_tag"], entry["time_out"])
                for entry in history] == [(900, 9.0)]

    def test_change_box(self, edb):
        edb.update_containment(100, 900, 5.0)
        edb.update_containment(100, 901, 8.0)
        assert edb.current_containment(100) == 901
        assert len(edb.containment_history(100)) == 2

    def test_same_parent_noop(self, edb):
        edb.update_containment(100, 900, 5.0)
        assert not edb.update_containment(100, 900, 8.0)

    def test_current_contents(self, edb):
        edb.register_product(101, "gel")
        edb.update_containment(100, 900, 5.0)
        edb.update_containment(101, 900, 5.0)
        edb.update_containment(100, None, 9.0)
        assert edb.current_contents(900) == [101]


class TestArchiveAndTrace:
    def test_archive_sequence(self, edb):
        first = edb.archive_event(Event("SHELF_READING", 1.0,
                                        {"TagId": 100, "AreaId": 1}))
        second = edb.archive_event(Event("EXIT_READING", 2.0,
                                         {"TagId": 100, "AreaId": 4}))
        assert (first, second) == (0, 1)
        rows = edb.db.query("SELECT event_type FROM event_archive "
                            "ORDER BY seq")
        assert [row["event_type"] for row in rows] == \
            ["SHELF_READING", "EXIT_READING"]

    def test_trace_bundle(self, edb):
        edb.update_location(100, 1, 10.0)
        edb.update_containment(100, 900, 5.0)
        trace = edb.trace(100)
        assert trace["product"]["product_name"] == "soap"
        assert trace["current_location"]["area_id"] == 1
        assert len(trace["containment_history"]) == 1

    def test_area_description(self, edb):
        assert edb.area_description(4) == "south exit"
        assert edb.area_description(99) is None

    def test_product_info_missing(self, edb):
        assert edb.product_info(12345) is None
