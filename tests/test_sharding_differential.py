"""Differential tests: sharded output must be identical to single-process.

The sharded runtime's core guarantee is that routing, batching, and
asynchronous execution are invisible: for any backend and shard count,
the emitted ``(query, result)`` sequence is exactly what the classic
synchronous processor produces.  These tests run the same workloads both
ways and compare the full ordered output.
"""

from __future__ import annotations

import pytest

from repro.rfid import NoiseModel
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor, SaseSystem
from repro.workloads import (
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

BACKENDS_UNDER_TEST = ("inline", "thread", "process")


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


# -- synthetic workload: real distribution (keyed + broadcast + negation) ---

@pytest.fixture(scope="module")
def synthetic_stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=500, n_types=4, id_domain=8, seed=7))


def run_synthetic(stream: SyntheticStream,
                  sharding: ShardingConfig | None):
    processor = ComplexEventProcessor(stream.registry, sharding=sharding)
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.register("negpair",
                       seq_query(2, window=5.0, partitioned=True,
                                 negation_at=2))
    processor.register("wide",
                       seq_query(2, window=3.0, partitioned=False))
    callback_log: list = []
    processor.query("pair").on_result = \
        lambda name, result: callback_log.append((name, result))
    produced = []
    for event in stream.events:
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    return fingerprint(produced), fingerprint(callback_log)


@pytest.fixture(scope="module")
def synthetic_baseline(synthetic_stream):
    return run_synthetic(synthetic_stream, None)


@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_synthetic_output_identical(synthetic_stream, synthetic_baseline,
                                    backend, shards):
    sharded = run_synthetic(synthetic_stream, ShardingConfig(
        shards=shards, backend=backend, batch_size=16,
        queue_capacity=4))
    assert sharded[0] == synthetic_baseline[0]
    # Callbacks fire in the same order too, not just returned results.
    assert sharded[1] == synthetic_baseline[1]


def test_small_batches_and_queues_still_identical(synthetic_stream,
                                                  synthetic_baseline):
    # batch_size=1 maximises batching edge cases; queue_capacity=1
    # maximises backpressure.
    sharded = run_synthetic(synthetic_stream, ShardingConfig(
        shards=3, backend="thread", batch_size=1, queue_capacity=1))
    assert sharded[0] == synthetic_baseline[0]


# -- the paper's demo scenario (all-local path under sharding) --------------

def run_demo(sharding: ShardingConfig | None):
    scenario = RetailScenario.generate(RetailConfig(
        n_products=16, n_shoppers=4, n_shoplifters=2, n_misplacements=2,
        seed=13))
    system = SaseSystem(scenario.layout, scenario.ons, sharding=sharding)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    for event_type in ("SHELF_READING", "COUNTER_READING",
                       "EXIT_READING"):
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    noise = NoiseModel(miss_rate=0.1, duplicate_rate=0.1,
                       truncate_rate=0.02, ghost_rate=0.01)
    results = system.run_simulation(scenario.ticks(noise))
    return fingerprint(results), scenario


@pytest.fixture(scope="module")
def demo_baseline():
    return run_demo(None)


@pytest.mark.parametrize("backend,shards",
                         [("inline", 2), ("thread", 2), ("process", 2),
                          ("inline", 4)])
def test_demo_scenario_identical(demo_baseline, backend, shards):
    base, _ = demo_baseline
    sharded, scenario = run_demo(ShardingConfig(shards=shards,
                                                backend=backend))
    assert sharded == base
    detected = {dict(attrs)["x_TagId"] for name, _, _, attrs in sharded
                if name == "shoplifting"}
    assert detected == scenario.truth.shoplifted_tags()


# -- guard rails ------------------------------------------------------------

def test_registration_locked_after_stream_starts(synthetic_stream):
    from repro.errors import SaseError
    processor = ComplexEventProcessor(
        synthetic_stream.registry,
        sharding=ShardingConfig(shards=2, batch_size=4))
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.feed(synthetic_stream.events[0])
    with pytest.raises(SaseError, match="register"):
        processor.register("late",
                           seq_query(2, window=5.0, partitioned=True))
    processor.flush()


def test_flush_is_idempotent_and_final(synthetic_stream):
    from repro.errors import SaseError
    processor = ComplexEventProcessor(
        synthetic_stream.registry,
        sharding=ShardingConfig(shards=2, batch_size=4))
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    for event in synthetic_stream.events[:50]:
        processor.feed(event)
    processor.flush()
    with pytest.raises((SaseError, RuntimeError)):
        processor.feed(synthetic_stream.events[50])