"""Tests for the SQL subset: parser and executor."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.db.sql_parser import SelectStmt, parse_sql
from repro.errors import SqlError, TableError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, "
        "price FLOAT, qty INT)")
    database.execute(
        "INSERT INTO items (id, name, price, qty) VALUES "
        "(1, 'apple', 0.5, 10), (2, 'banana', 0.25, 20), "
        "(3, 'cherry', 3.0, 5), (4, 'apple', 0.6, NULL)")
    return database


class TestParser:
    def test_select_structure(self):
        statement = parse_sql(
            "SELECT a.x, y AS why FROM t a, u WHERE a.x = u.x "
            "GROUP BY y ORDER BY x DESC LIMIT 5")
        assert isinstance(statement, SelectStmt)
        assert statement.tables == (("t", "a"), ("u", "u"))
        assert statement.items[1].alias == "why"
        assert statement.order_by[0][1] is True
        assert statement.limit == 5

    def test_keywords_case_insensitive(self):
        parse_sql("select * from t where x = 1")

    def test_string_escape(self):
        statement = parse_sql("SELECT * FROM t WHERE name = 'it''s'")
        assert isinstance(statement, SelectStmt)

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated"):
            parse_sql("SELECT * FROM t WHERE name = 'oops")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_sql("SELECT * FROM t garbage ( extra")

    def test_semicolon_allowed(self):
        parse_sql("SELECT * FROM t;")

    def test_limit_requires_integer(self):
        with pytest.raises(SqlError, match="integer"):
            parse_sql("SELECT * FROM t LIMIT 1.5")

    def test_unsupported_statement(self):
        with pytest.raises(SqlError):
            parse_sql("GRANT ALL ON t")


class TestSelect:
    def test_where_filtering(self, db):
        rows = db.query("SELECT name FROM items WHERE price < 1.0")
        assert {row["name"] for row in rows} == {"apple", "banana"}

    def test_order_by_and_limit(self, db):
        rows = db.query("SELECT id FROM items ORDER BY price DESC LIMIT 2")
        assert [row["id"] for row in rows] == [3, 4]

    def test_multi_key_order(self, db):
        rows = db.query("SELECT id FROM items ORDER BY name ASC, "
                        "price DESC")
        assert [row["id"] for row in rows] == [4, 1, 2, 3]

    def test_null_comparisons_false(self, db):
        rows = db.query("SELECT id FROM items WHERE qty > 0")
        assert {row["id"] for row in rows} == {1, 2, 3}

    def test_is_null(self, db):
        assert db.query("SELECT id FROM items WHERE qty IS NULL") == \
            [{"id": 4}]
        assert len(db.query(
            "SELECT id FROM items WHERE qty IS NOT NULL")) == 3

    def test_select_star(self, db):
        rows = db.execute("SELECT * FROM items WHERE id = 1")
        assert rows.columns == ["id", "name", "price", "qty"]
        assert rows.first() == (1, "apple", 0.5, 10)

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT name FROM items")
        assert len(rows) == 3

    def test_expressions_in_items(self, db):
        rows = db.query("SELECT id, price * qty AS total FROM items "
                        "WHERE id = 1")
        assert rows[0]["total"] == 5.0

    def test_aggregates_whole_table(self, db):
        result = db.query("SELECT COUNT(*) AS n, SUM(qty) AS total, "
                          "MIN(price) AS low, MAX(price) AS high, "
                          "AVG(qty) AS mean FROM items")[0]
        assert result["n"] == 4
        assert result["total"] == 35       # NULL qty skipped
        assert result["low"] == 0.25 and result["high"] == 3.0
        assert result["mean"] == pytest.approx(35 / 3)

    def test_count_column_skips_nulls(self, db):
        assert db.execute(
            "SELECT COUNT(qty) FROM items").scalar() == 3

    def test_group_by(self, db):
        rows = db.query("SELECT name, COUNT(*) AS n FROM items "
                        "GROUP BY name ORDER BY n DESC, name ASC")
        assert rows[0] == {"name": "apple", "n": 2}
        assert len(rows) == 3

    def test_aggregate_on_empty_group(self, db):
        result = db.query("SELECT SUM(qty) AS s, COUNT(*) AS n "
                          "FROM items WHERE id = 999")[0]
        assert result["s"] is None and result["n"] == 0

    def test_join_two_tables(self, db):
        db.execute("CREATE TABLE stock (item_id INT, shelf TEXT)")
        db.execute("INSERT INTO stock VALUES (1, 'A'), (3, 'B'), (9, 'C')")
        rows = db.query(
            "SELECT i.name, s.shelf FROM items i, stock s "
            "WHERE i.id = s.item_id ORDER BY i.name")
        assert rows == [{"name": "apple", "shelf": "A"},
                        {"name": "cherry", "shelf": "B"}]

    def test_join_uses_index(self, db):
        # items.id is the primary key (indexed); the join goes through the
        # executor's fast path, same answers
        db.execute("CREATE TABLE refs (item_id INT)")
        db.execute("INSERT INTO refs VALUES (2), (2), (3)")
        rows = db.query("SELECT i.name FROM refs r, items i "
                        "WHERE r.item_id = i.id ORDER BY i.name")
        assert [row["name"] for row in rows] == \
            ["banana", "banana", "cherry"]

    def test_ambiguous_column_rejected(self, db):
        db.execute("CREATE TABLE other (id INT)")
        db.execute("INSERT INTO other VALUES (1)")
        with pytest.raises(SqlError, match="ambiguous"):
            db.query("SELECT id FROM items, other")

    def test_unknown_column(self, db):
        with pytest.raises(SqlError, match="unknown column"):
            db.query("SELECT zzz FROM items")

    def test_order_by_aggregate_output(self, db):
        rows = db.query("SELECT name, SUM(qty) AS total FROM items "
                        "GROUP BY name ORDER BY total DESC")
        assert rows[0]["name"] == "banana"


class TestDml:
    def test_update(self, db):
        affected = db.execute(
            "UPDATE items SET qty = qty + 1 WHERE name = 'apple'").affected
        assert affected == 2
        # NULL + 1 stays NULL
        assert db.execute("SELECT qty FROM items WHERE id = 4").scalar() \
            is None
        assert db.execute("SELECT qty FROM items WHERE id = 1").scalar() \
            == 11

    def test_delete(self, db):
        assert db.execute("DELETE FROM items WHERE price > 1").affected == 1
        assert len(db.execute("SELECT * FROM items")) == 3

    def test_insert_without_columns(self, db):
        db.execute("INSERT INTO items VALUES (9, 'fig', 1.0, 1)")
        assert db.execute(
            "SELECT name FROM items WHERE id = 9").scalar() == "fig"

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SqlError, match="columns but"):
            db.execute("INSERT INTO items (id, name) VALUES (9)")

    def test_create_duplicate_table(self, db):
        with pytest.raises(TableError, match="already exists"):
            db.execute("CREATE TABLE items (x INT)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE items")
        assert not db.has_table("items")
        with pytest.raises(TableError):
            db.execute("DROP TABLE items")

    def test_create_index_statement(self, db):
        db.execute("CREATE INDEX ON items (name)")
        assert db.table("items").index_for("name") is not None

    def test_division_by_zero(self, db):
        with pytest.raises(SqlError, match="division by zero"):
            db.query("SELECT 1 / 0 FROM items")

    def test_scalar_helper(self, db):
        assert db.execute(
            "SELECT COUNT(*) FROM items").scalar() == 4
        with pytest.raises(SqlError, match="1x1"):
            db.execute("SELECT id FROM items").scalar()
