"""End-to-end engine tests: compile + run whole queries."""

from __future__ import annotations

import pytest

from repro.core.engine import Engine, run_query
from repro.core.plan import PlanConfig
from repro.errors import SaseError
from repro.events.event import Event

from tests.helpers import make_events

ALL_CONFIGS = [
    PlanConfig(),
    PlanConfig.naive(),
    PlanConfig().without("partition_pushdown"),
    PlanConfig().without("window_pushdown"),
    PlanConfig().without("filter_pushdown"),
]


class TestBasicQueries:
    def test_projection_and_names(self, abc_registry):
        results = run_query(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id, y.v AS value",
            abc_registry,
            make_events([("A", 1, {"id": 1, "v": 5}),
                         ("B", 2, {"id": 1, "v": 6})]))
        assert len(results) == 1
        assert results[0].attributes == {"x_id": 1, "value": 6}

    def test_arithmetic_in_return(self, abc_registry):
        results = run_query(
            "EVENT SEQ(A x, B y) WITHIN 10 RETURN y.v - x.v AS delta",
            abc_registry,
            make_events([("A", 1, {"id": 1, "v": 5}),
                         ("B", 2, {"id": 1, "v": 9})]))
        assert results[0]["delta"] == 4

    def test_output_type_and_interval(self, abc_registry):
        results = run_query(
            "EVENT SEQ(A x, B y) WITHIN 10 RETURN Alert(x.id)",
            abc_registry,
            make_events([("A", 1, {"id": 1, "v": 5}),
                         ("B", 2, {"id": 1, "v": 6})]))
        composite = results[0]
        assert composite.type == "Alert"
        assert (composite.start, composite.end) == (1, 2)

    @pytest.mark.parametrize("config", ALL_CONFIGS,
                             ids=lambda c: repr(c)[:40])
    def test_all_plans_agree_on_q1_shape(self, abc_registry, config):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}), ("A", 2, {"id": 2, "v": 0}),
            ("B", 3, {"id": 2, "v": 0}),
            ("C", 4, {"id": 1, "v": 0}), ("C", 5, {"id": 2, "v": 0})])
        results = run_query(
            "EVENT SEQ(A x, !(B y), C z) "
            "WHERE x.id = y.id AND x.id = z.id WITHIN 100 RETURN x.id",
            abc_registry, events, config=config)
        assert [composite["x_id"] for composite in results] == [1]

    def test_or_predicate(self, abc_registry):
        results = run_query(
            "EVENT SEQ(A x, B y) WHERE x.v = 1 OR y.v = 1 WITHIN 10 "
            "RETURN x.v, y.v",
            abc_registry,
            make_events([("A", 1, {"id": 1, "v": 1}),
                         ("A", 2, {"id": 1, "v": 5}),
                         ("B", 3, {"id": 1, "v": 9})]))
        assert len(results) == 1

    def test_unbounded_query_without_window(self, abc_registry):
        results = run_query(
            "EVENT SEQ(A x, B y) RETURN x.id",
            abc_registry,
            make_events([("A", 1, {"id": 1, "v": 0}),
                         ("B", 1000000, {"id": 1, "v": 0})]))
        assert len(results) == 1


class TestEngineFacade:
    def test_compile_once_run_twice(self, abc_registry):
        engine = Engine(abc_registry)
        compiled = engine.compile("EVENT SEQ(A x, B y) WITHIN 10 "
                                  "RETURN x.id")
        events = make_events([("A", 1, {"id": 1, "v": 0}),
                              ("B", 2, {"id": 1, "v": 0})])
        first = list(engine.run(compiled, events))
        second = list(engine.run(compiled, events))
        assert len(first) == len(second) == 1

    def test_runtime_is_streaming(self, abc_registry):
        engine = Engine(abc_registry)
        runtime = engine.runtime("EVENT SEQ(A x, B y) WITHIN 10 "
                                 "RETURN x.id")
        assert runtime.feed(Event("A", 1, {"id": 1, "v": 0})) == []
        produced = runtime.feed(Event("B", 2, {"id": 1, "v": 0}))
        assert len(produced) == 1
        assert runtime.flush() == []

    def test_runtime_rejects_feed_after_flush(self, abc_registry):
        engine = Engine(abc_registry)
        runtime = engine.runtime("EVENT A x")
        runtime.flush()
        with pytest.raises(RuntimeError, match="flushed"):
            runtime.feed(Event("A", 1, {"id": 1, "v": 0}))

    def test_explain(self, abc_registry):
        engine = Engine(abc_registry)
        compiled = engine.compile(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 RETURN x.id")
        assert "PAIS" in compiled.explain()

    def test_stats_flow(self, abc_registry):
        engine = Engine(abc_registry)
        runtime = engine.runtime(
            "EVENT SEQ(A x, B y) WHERE x.v < y.v WITHIN 10 RETURN x.id",
            config=PlanConfig().without("filter_pushdown"))
        for event in make_events([("A", 1, {"id": 1, "v": 5}),
                                  ("B", 2, {"id": 1, "v": 1}),
                                  ("B", 3, {"id": 1, "v": 9})]):
            runtime.feed(event)
        stats = runtime.stats
        assert stats.events_consumed == 3
        assert stats.operator("SSC").produced == 2
        assert stats.operator("SL").produced == 1
        assert stats.results_emitted == 1


class TestTrailingNegationEndToEnd:
    QUERY = ("EVENT SEQ(A x, !(B y)) WHERE x.id = y.id WITHIN 5 "
             "RETURN x.id")

    def test_released_by_watermark(self, abc_registry):
        events = make_events([
            ("A", 0, {"id": 1, "v": 0}),
            ("A", 1, {"id": 2, "v": 0}),
            ("B", 3, {"id": 2, "v": 0}),   # cancels id=2
            ("C", 7, {"id": 9, "v": 0})])  # watermark passes 0+5
        results = run_query(self.QUERY, abc_registry, events)
        assert [composite["x_id"] for composite in results] == [1]

    def test_released_by_flush(self, abc_registry):
        events = make_events([("A", 0, {"id": 1, "v": 0})])
        results = run_query(self.QUERY, abc_registry, events)
        assert len(results) == 1

    def test_emission_order_by_watermark(self, abc_registry):
        engine = Engine(abc_registry)
        runtime = engine.runtime(self.QUERY)
        outputs = []
        for event in make_events([
                ("A", 0, {"id": 1, "v": 0}),
                ("C", 6, {"id": 9, "v": 0})]):
            outputs.extend(runtime.feed(event))
        assert len(outputs) == 1  # released on the C event, not at flush
        assert runtime.flush() == []


class TestErrorPaths:
    def test_unknown_type_raises_sase_error(self, abc_registry):
        engine = Engine(abc_registry)
        with pytest.raises(SaseError):
            engine.compile("EVENT ZZZ x")

    def test_parse_error_is_sase_error(self, abc_registry):
        engine = Engine(abc_registry)
        with pytest.raises(SaseError):
            engine.compile("EVENT SEQ(")
