"""Tests for semantic analysis: binding, classification, partitions."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, SemanticError
from repro.events.model import AttributeType, SchemaRegistry
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze


@pytest.fixture
def registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT, v=AttributeType.INT,
                     name=AttributeType.STRING, flag=AttributeType.BOOL,
                     price=AttributeType.FLOAT)
    registry.declare("B", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("C", id=AttributeType.INT, v=AttributeType.INT)
    return registry


def analyze_text(text: str, registry: SchemaRegistry):
    return analyze(parse_query(text), registry)


class TestBinding:
    def test_unknown_event_type(self, registry):
        with pytest.raises(SchemaError, match="unknown event type"):
            analyze_text("EVENT ZZZ x", registry)

    def test_unknown_attribute(self, registry):
        with pytest.raises(SchemaError, match="no attribute"):
            analyze_text("EVENT A x WHERE x.zzz = 1", registry)

    def test_unknown_variable(self, registry):
        with pytest.raises(SemanticError, match="unknown pattern variable"):
            analyze_text("EVENT A x WHERE q.id = 1", registry)

    def test_window_converted_to_seconds(self, registry):
        analyzed = analyze_text("EVENT A x WITHIN 2 minutes", registry)
        assert analyzed.window == 120.0

    def test_timestamp_pseudo_attribute(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y) WHERE y.Timestamp - x.Timestamp > 5",
            registry)
        assert len(analyzed.selection_predicates) == 1


class TestPredicateClassification:
    def test_single_variable_goes_to_component_filter(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y) WHERE x.v = 1 AND x.id = y.id", registry)
        assert len(analyzed.component_filters["x"]) == 1
        # x.id = y.id covers both positives -> partition equality stays in
        # selection_predicates but flagged
        assert len(analyzed.selection_predicates) == 1

    def test_negation_predicates_split_off(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, !(B y), C z) "
            "WHERE x.id = y.id AND x.id = z.id AND y.v = 3", registry)
        assert len(analyzed.negation_predicates["y"]) == 2
        assert len(analyzed.selection_predicates) == 1  # x.id = z.id

    def test_kleene_predicates_split_off(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B+ y) WHERE x.id = y.id AND y.v > 2", registry)
        assert len(analyzed.kleene_predicates["y"]) == 2
        assert not analyzed.selection_predicates

    def test_two_negated_vars_in_one_conjunct_rejected(self, registry):
        with pytest.raises(SemanticError, match="at most one negated"):
            analyze_text(
                "EVENT SEQ(A x, !(B y), !(C w)) WHERE y.id = w.id",
                registry)

    def test_negated_and_kleene_mix_rejected(self, registry):
        with pytest.raises(SemanticError, match="may not mix"):
            analyze_text(
                "EVENT SEQ(A x, !(B y), C+ w) WHERE y.id = w.id", registry)

    def test_aggregate_in_where_rejected(self, registry):
        with pytest.raises(SemanticError, match="only allowed in"):
            analyze_text("EVENT SEQ(A x, B+ y) WHERE COUNT(y) > 3",
                         registry)

    def test_non_boolean_where_rejected(self, registry):
        with pytest.raises(SemanticError, match="boolean"):
            analyze_text("EVENT A x WHERE x.v + 1", registry)


class TestPartitionDiscovery:
    def test_full_cover_class_found(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y, C z) "
            "WHERE x.id = y.id AND y.id = z.id", registry)
        assert analyzed.partition is not None
        assert analyzed.partition.attr_by_var == {
            "x": "id", "y": "id", "z": "id"}
        assert all(info.is_partition_equality
                   for info in analyzed.selection_predicates)

    def test_partial_cover_not_partitioned(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id", registry)
        assert analyzed.partition is None
        assert not analyzed.selection_predicates[0].is_partition_equality

    def test_negated_variable_included_in_scheme(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, !(B y), C z) "
            "WHERE x.id = y.id AND x.id = z.id", registry)
        assert analyzed.partition is not None
        assert analyzed.partition.key_attribute("y") == "id"

    def test_different_attribute_names_allowed(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y) WHERE x.v = y.id", registry)
        assert analyzed.partition is not None
        assert analyzed.partition.attr_by_var == {"x": "v", "y": "id"}

    def test_transitive_closure(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y, C z) "
            "WHERE x.id = y.id AND x.id = z.id", registry)
        assert analyzed.partition is not None

    def test_inequality_does_not_partition(self, registry):
        analyzed = analyze_text(
            "EVENT SEQ(A x, B y) WHERE x.id != y.id", registry)
        assert analyzed.partition is None


class TestTypeChecking:
    def test_string_numeric_comparison_rejected(self, registry):
        with pytest.raises(SemanticError, match="cannot compare"):
            analyze_text("EVENT A x WHERE x.name = 1", registry)

    def test_bool_ordering_rejected(self, registry):
        with pytest.raises(SemanticError, match="ordering comparison"):
            analyze_text("EVENT A x WHERE x.flag < TRUE", registry)

    def test_bool_equality_allowed(self, registry):
        analyzed = analyze_text("EVENT A x WHERE x.flag = TRUE", registry)
        assert len(analyzed.component_filters["x"]) == 1

    def test_arithmetic_on_string_rejected(self, registry):
        with pytest.raises(SemanticError, match="non-numeric"):
            analyze_text("EVENT A x WHERE x.name * 2 = 4", registry)

    def test_int_float_comparison_allowed(self, registry):
        analyze_text("EVENT A x WHERE x.price > x.v", registry)

    def test_function_result_is_any(self, registry):
        analyze_text("EVENT A x WHERE _lookup(x.id) = 'somewhere'",
                     registry)

    def test_logical_operand_must_be_bool(self, registry):
        with pytest.raises(SemanticError, match="boolean"):
            analyze_text("EVENT A x WHERE x.v AND x.flag = TRUE", registry)

    def test_sum_over_string_rejected(self, registry):
        with pytest.raises(SemanticError, match="non-numeric"):
            analyze_text("EVENT SEQ(B b, A+ x) RETURN SUM(x.name)",
                         registry)

    def test_count_bare_variable(self, registry):
        analyzed = analyze_text("EVENT SEQ(B b, A+ x) RETURN COUNT(x)",
                                registry)
        assert analyzed.return_items[0].name == "count_x"

    def test_min_needs_attribute(self, registry):
        with pytest.raises(SemanticError, match="attribute reference"):
            analyze_text("EVENT SEQ(B b, A+ x) RETURN MIN(x)", registry)


class TestReturnResolution:
    def test_default_return_binds_positives(self, registry):
        analyzed = analyze_text("EVENT SEQ(A x, !(B y), C z)", registry)
        assert [item.name for item in analyzed.return_items] == ["x", "z"]

    def test_star_expansion(self, registry):
        analyzed = analyze_text("EVENT SEQ(A x, B y) RETURN *", registry)
        names = [item.name for item in analyzed.return_items]
        assert "x_id" in names and "y_v" in names
        assert len(names) == 5 + 2  # A has 5 attributes, B has 2

    def test_alias_respected(self, registry):
        analyzed = analyze_text("EVENT A x RETURN x.id AS tag", registry)
        assert analyzed.return_items[0].name == "tag"

    def test_duplicate_names_uniquified(self, registry):
        analyzed = analyze_text("EVENT SEQ(A x, B y) "
                                "RETURN x.id AS k, y.id AS k", registry)
        assert [item.name for item in analyzed.return_items] == \
            ["k", "k_2"]

    def test_output_type_and_stream(self, registry):
        analyzed = analyze_text(
            "EVENT A x RETURN Alert(x.id) INTO alerts", registry)
        assert analyzed.output_type == "Alert"
        assert analyzed.output_stream == "alerts"

    def test_negation_layout(self, registry):
        analyzed = analyze_text("EVENT SEQ(!(A w), B x, !(C y))", registry)
        layout = analyzed.negation_layout()
        assert [(prev, nxt) for _, prev, nxt in layout] == [(-1, 0), (0, 1)]
