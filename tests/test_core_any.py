"""Tests for ANY(...) multi-type pattern components."""

from __future__ import annotations

import pytest

from repro.core.engine import Engine, run_query
from repro.core.plan import PlanConfig
from repro.errors import ParseError, SchemaError
from repro.events.model import AttributeType, SchemaRegistry
from repro.lang.parser import parse_query
from repro.lang.pretty import format_query
from repro.lang.semantics import analyze
from repro.nfa import compile_pattern

from tests.helpers import make_events


@pytest.fixture
def registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("B", id=AttributeType.INT, v=AttributeType.INT,
                     extra=AttributeType.STRING)
    registry.declare("C", id=AttributeType.INT, v=AttributeType.STRING)
    registry.declare("D", id=AttributeType.INT, v=AttributeType.INT)
    return registry


class TestParsing:
    def test_any_component(self):
        query = parse_query("EVENT SEQ(A x, ANY(B, C) y)")
        component = query.pattern.components[1]
        assert component.event_types == ("B", "C")
        assert component.is_any

    def test_negated_any(self):
        query = parse_query("EVENT SEQ(A x, !(ANY(B, C) n), D z)")
        component = query.pattern.components[1]
        assert component.negated and component.event_types == ("B", "C")

    def test_kleene_any(self):
        query = parse_query("EVENT SEQ(A x, ANY(B, D)+ y)")
        component = query.pattern.components[1]
        assert component.kleene and component.event_types == ("B", "D")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ParseError, match="duplicate type"):
            parse_query("EVENT SEQ(A x, ANY(B, B) y)")

    def test_pretty_roundtrip(self):
        for text in ("EVENT SEQ(A x, ANY(B, C) y)",
                     "EVENT SEQ(A x, !(ANY(B, C) n), D z)",
                     "EVENT SEQ(A x, ANY(B, D)+ y)"):
            query = parse_query(text)
            assert parse_query(format_query(query)) == query


class TestSemantics:
    def test_intersection_schema(self, registry):
        # A.v is INT, B.v is INT -> usable; C.v is STRING -> excluded
        analyzed = analyze(parse_query(
            "EVENT SEQ(ANY(A, B) x, D y) WHERE x.id = y.id "
            "RETURN x.id"), registry)
        schema = analyzed.schemas["x"]
        assert "id" in schema
        assert "extra" not in schema  # only B has it

    def test_attribute_not_common_rejected(self, registry):
        with pytest.raises(SchemaError, match="no attribute"):
            analyze(parse_query(
                "EVENT ANY(A, B) x WHERE x.extra = 'q'"), registry)

    def test_type_conflict_excluded(self, registry):
        # v is INT in A but STRING in C: not in the intersection
        with pytest.raises(SchemaError, match="no attribute"):
            analyze(parse_query(
                "EVENT ANY(A, C) x WHERE x.v = 1"), registry)

    def test_partition_over_any(self, registry):
        analyzed = analyze(parse_query(
            "EVENT SEQ(ANY(A, B) x, D y) WHERE x.id = y.id WITHIN 10"),
            registry)
        assert analyzed.partition is not None


class TestNfa:
    def test_component_for_type_includes_alternatives(self):
        nfa = compile_pattern(parse_query(
            "EVENT SEQ(A x, ANY(B, C) y)").pattern)
        assert nfa.component_for_type("B") == [1]
        assert nfa.component_for_type("C") == [1]
        assert "B|C" in repr(nfa)

    def test_accepts_either_type(self):
        from repro.events.event import Event
        nfa = compile_pattern(parse_query(
            "EVENT SEQ(A x, ANY(B, C) y)").pattern)
        assert nfa.accepts([Event("A", 1), Event("B", 2)])
        assert nfa.accepts([Event("A", 1), Event("C", 2)])
        assert not nfa.accepts([Event("A", 1), Event("D", 2)])


class TestExecution:
    def test_matches_either_type(self, registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 5, "extra": "x"}),
            ("C", 3, {"id": 1, "v": "s"}),
            ("D", 4, {"id": 1, "v": 9}),
        ])
        results = run_query(
            "EVENT SEQ(A x, ANY(B, C) y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", registry, events)
        assert len(results) == 2
        matched_types = {result.bindings["y"].type for result in results}
        assert matched_types == {"B", "C"}

    def test_negated_any_blocks_on_either(self, registry):
        base = [("A", 1, {"id": 1, "v": 0}),
                ("D", 5, {"id": 1, "v": 0})]
        query = ("EVENT SEQ(A x, !(ANY(B, C) n), D z) "
                 "WHERE x.id = z.id AND n.id = x.id WITHIN 10 "
                 "RETURN x.id")
        assert len(run_query(query, registry,
                             make_events(base))) == 1
        for blocker in (("B", 3, {"id": 1, "v": 0, "extra": ""}),
                        ("C", 3, {"id": 1, "v": "s"})):
            events = make_events([base[0], blocker, base[1]])
            assert run_query(query, registry, events) == []

    def test_kleene_any_mixes_types(self, registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 5, "extra": ""}),
            ("D", 3, {"id": 1, "v": 7}),
        ])
        results = run_query(
            "EVENT SEQ(A x, ANY(B, D)+ y) WHERE x.id = y.id WITHIN 10 "
            "RETURN COUNT(y) AS n", registry, events)
        assert max(result["n"] for result in results) == 2

    def test_plans_agree(self, registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 5, "extra": ""}),
            ("C", 3, {"id": 2, "v": "s"}),
            ("D", 4, {"id": 1, "v": 9}),
        ])
        query = ("EVENT SEQ(ANY(A, B) x, D y) WHERE x.id = y.id "
                 "WITHIN 10 RETURN x.id")
        engine = Engine(registry)
        optimized = [r.attributes for r in engine.run(query, events)]
        naive = [r.attributes for r in engine.run(
            query, events, config=PlanConfig.naive())]
        assert optimized == naive and len(optimized) == 2

    def test_explain_shows_any(self, registry):
        engine = Engine(registry)
        compiled = engine.compile(
            "EVENT SEQ(A x, !(ANY(B, C) n), D z) WHERE n.id = x.id "
            "WITHIN 10 RETURN x.id")
        text = compiled.explain()
        assert "ANY(B, C)" in text
