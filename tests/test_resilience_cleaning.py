"""Cleaning-boundary hardening: malformed readings are quarantined to
the dead-letter queue instead of raising through ``feed()``, and the
edge cases the five stages silently assume away (duplicate tag reads,
negative or overflowing timestamps, wrong attribute types) degrade
explicitly."""

from __future__ import annotations

import pytest

from repro.cleaning.pipeline import CleaningConfig, CleaningPipeline
from repro.resilience import DeadLetterQueue, ResilienceConfig
from repro.rfid.simulator import RawReading
from repro.system import SaseSystem
from repro.workloads import (
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)


@pytest.fixture(scope="module")
def scenario():
    return RetailScenario.generate(RetailConfig(
        n_products=6, n_shoppers=2, n_shoplifters=1, n_misplacements=1,
        seed=11))


def make_pipeline(scenario, quarantine):
    return CleaningPipeline(scenario.layout, scenario.ons,
                            CleaningConfig(smoothing="none"),
                            quarantine=quarantine)


def good_reading(scenario, time=1.0):
    tag = scenario.ons.known_tags().pop()
    reader = next(iter(scenario.layout.readers))
    return RawReading(epc=f"EPC{tag}", reader_id=reader, time=time)


class TestQuarantineBoundary:
    @pytest.mark.parametrize("bad", [
        RawReading(epc=None, reader_id="r", time=1.0),
        RawReading(epc=7, reader_id="r", time=1.0),         # wrong type
        RawReading(epc="EPC1", reader_id=3.5, time=1.0),    # wrong type
        RawReading(epc="EPC1", reader_id="r", time=-4.0),   # negative
        RawReading(epc="EPC1", reader_id="r", time=1.0e18),  # overflow
        RawReading(epc="EPC1", reader_id="r", time=float("nan")),
        RawReading(epc="EPC1", reader_id="r", time="later"),
    ])
    def test_malformed_reading_quarantined_not_raised(self, scenario,
                                                      bad):
        quarantine = DeadLetterQueue()
        pipeline = make_pipeline(scenario, quarantine)
        events = pipeline.process_tick(
            [bad, good_reading(scenario)], now=1.0)
        assert len(quarantine) == 1
        record = quarantine.records[0]
        assert record.stage == "ingest_validation"
        assert record.ingest_time == 1.0
        # The clean reading still flows; the pipeline never raises.
        assert all(event.timestamp >= 0 for event in events)

    def test_duplicate_tag_reads_are_not_quarantined(self, scenario):
        # Duplicates are legitimate RFID noise: smoothing/dedup handle
        # them; the quarantine must not misfire on them.
        quarantine = DeadLetterQueue()
        pipeline = make_pipeline(scenario, quarantine)
        reading = good_reading(scenario)
        pipeline.process_tick([reading, reading, reading], now=1.0)
        assert len(quarantine) == 0

    def test_without_quarantine_behavior_is_unchanged(self, scenario):
        # Default-off: no quarantine attached means the seed behavior
        # (malformed input raises out of the stages) is preserved.
        pipeline = make_pipeline(scenario, None)
        with pytest.raises(Exception):
            pipeline.process_tick(
                [RawReading(epc=None, reader_id="r", time=1.0)],
                now=1.0)

    def test_stage_blowup_quarantines_the_tick(self, scenario):
        quarantine = DeadLetterQueue()
        pipeline = make_pipeline(scenario, quarantine)

        class Bomb:
            def process(self, readings):
                raise RuntimeError("stage exploded")

        pipeline.anomaly = Bomb()
        reading = good_reading(scenario)
        assert pipeline.process_tick([reading], now=2.0) == []
        assert len(quarantine) == 1
        record = quarantine.records[0]
        assert record.stage == "cleaning"
        assert record.error_type == "RuntimeError"

    def test_clean_stream_identical_with_quarantine_attached(self,
                                                             scenario):
        from repro.rfid import NoiseModel
        ticks = list(scenario.ticks(NoiseModel.perfect()))
        plain = make_pipeline(scenario, None)
        guarded = make_pipeline(scenario, DeadLetterQueue())
        baseline = [list(plain.process_tick(readings, now))
                    for now, readings in ticks]
        hardened = [list(guarded.process_tick(readings, now))
                    for now, readings in ticks]
        assert baseline == hardened


class TestSystemLevelQuarantine:
    def run_system(self, scenario, resilience, mangle=None):
        from repro.rfid import NoiseModel
        system = SaseSystem(scenario.layout, scenario.ons,
                            resilience=resilience)
        system.register_monitoring_query("shoplifting",
                                         SHOPLIFTING_QUERY)
        results = []
        for now, readings in scenario.ticks(NoiseModel.perfect()):
            if mangle is not None:
                readings = mangle(readings)
            # The hard guarantee: feed never raises on dirty input.
            results.extend(system.process_tick(readings, now))
        results.extend(system.processor.flush())
        return system, results

    def test_injected_garbage_lands_in_dead_letters(self, scenario,
                                                    tmp_path):
        path = str(tmp_path / "dead.jsonl")
        resilience = ResilienceConfig(dead_letter_path=path)
        poisoned = [0]

        def mangle(readings):
            poisoned[0] += 3
            return list(readings) + [
                RawReading(epc=None, reader_id="r", time=1.0),
                RawReading(epc="EPCX", reader_id="r", time=-9.0),
                RawReading(epc="EPCX", reader_id="r",
                           time=float("inf"))]

        system, results = self.run_system(scenario, resilience, mangle)
        assert len(system.dead_letters) == poisoned[0]
        system.close()
        assert len(DeadLetterQueue.load(path)) == poisoned[0]

    def test_detections_survive_dirty_input(self, scenario):
        _, clean = self.run_system(scenario, None)
        truth = {r["x_TagId"] for name, r in clean
                 if name == "shoplifting"}

        def mangle(readings):
            return list(readings) + [
                RawReading(epc=None, reader_id="r", time=0.5)]

        _, dirty = self.run_system(scenario, ResilienceConfig(), mangle)
        detected = {r["x_TagId"] for name, r in dirty
                    if name == "shoplifting"}
        assert detected == truth
