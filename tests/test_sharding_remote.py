"""The distributed shard tier: TCP workers behind the remote backend.

Differential guarantee first: for 1/2/4 localhost workers and the
pair/kleene/trailing-negation query mix, the remote backend's ordered
output must be bit-identical to the single-process runtime — including
watermark-released trailing-negation matches.  Then the failure
ladder: a SIGKILLed owned worker must respawn and replay its journal
without losing or duplicating a result, and an external daemon must
survive coordinator sessions back to back (fresh core per accept).
The wire layer (stream framing, pickle fallback lane, corruption
detection) is covered at unit level.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest

from repro.errors import SaseError
from repro.persist.records import frame
from repro.sharding import ShardingConfig
from repro.sharding.remote import RemoteBackend, WorkerDaemon, \
    parse_endpoint, parse_endpoints
from repro.sharding.wire import FrameBuffer, WireCorrupt, \
    decode_request, encode_request, pack_message, unpack_payload
from repro.system import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

KLEENE_QUERY = ("EVENT SEQ(A a, B+ b, C c)\n"
                "WHERE a.id = b.id AND a.id = c.id\n"
                "WITHIN 5 seconds\nRETURN a.id")


@pytest.fixture(scope="module")
def stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=400, n_types=4, id_domain=8, seed=11))


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


def build(registry, sharding):
    processor = ComplexEventProcessor(registry, sharding=sharding)
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.register("kleene", KLEENE_QUERY)
    # negation_at == length: trailing negation, released by watermarks.
    processor.register("negtrail",
                       seq_query(2, window=5.0, partitioned=True,
                                 negation_at=2))
    return processor


def run(registry, events, sharding, kill_at=None, kill_shard=0):
    processor = build(registry, sharding)
    produced = []
    for index, event in enumerate(events):
        produced.extend(processor.feed(event))
        if kill_at is not None and index == kill_at:
            pids = processor._router.worker_pids()
            os.kill(pids[kill_shard], signal.SIGKILL)
    produced.extend(processor.flush())
    return fingerprint(produced), processor.metrics


@pytest.fixture(scope="module")
def baseline(stream):
    result, _ = run(stream.registry, stream.events, None)
    return result


def start_daemons(count):
    """In-thread worker daemons on ephemeral ports (external workers:
    the coordinator never owns or spawns them)."""
    daemons = []
    for _ in range(count):
        daemon = WorkerDaemon("127.0.0.1", 0)
        daemon.bind()
        threading.Thread(target=daemon.serve, daemon=True).start()
        daemons.append(daemon)
    return daemons


def remote_config(daemons, **overrides):
    options = dict(shards=len(daemons), backend="remote",
                   batch_size=16, queue_capacity=4,
                   response_timeout=30.0,
                   workers=tuple(f"127.0.0.1:{daemon.port}"
                                 for daemon in daemons))
    options.update(overrides)
    return ShardingConfig(**options)


def free_ports(count):
    """Ports that are free right now — endpoints for owned (spawned)
    workers."""
    sockets, ports = [], []
    for _ in range(count):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        sockets.append(listener)
        ports.append(listener.getsockname()[1])
    for listener in sockets:
        listener.close()
    return ports


class TestRemoteDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_output_identical_to_single_process(self, stream, baseline,
                                                shards):
        daemons = start_daemons(shards)
        try:
            result, metrics = run(stream.registry, stream.events,
                                  remote_config(daemons))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert result == baseline
        sent = sum(shard.remote_bytes_sent
                   for shard in metrics.shards.values())
        received = sum(shard.remote_bytes_received
                       for shard in metrics.shards.values())
        assert sent > 0 and received > 0

    def test_daemon_reaccepts_sessions_with_fresh_state(self, stream,
                                                        baseline):
        # Two full coordinator sessions against the same daemons: the
        # re-accept path must rebuild a clean worker core each time, or
        # the second run would double-produce.
        daemons = start_daemons(2)
        try:
            first, _ = run(stream.registry, stream.events,
                           remote_config(daemons))
            second, _ = run(stream.registry, stream.events,
                            remote_config(daemons))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert first == baseline
        assert second == baseline


class TestRemoteFailover:
    def test_sigkill_owned_worker_replays_journal(self, stream,
                                                  baseline):
        # Nothing listens on these ports, so the coordinator spawns
        # (and supervises) 'repro worker' subprocesses for them.
        workers = tuple(f"127.0.0.1:{port}" for port in free_ports(2))
        sharding = ShardingConfig(shards=2, backend="remote",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0,
                                  workers=workers)
        recovered, metrics = run(stream.registry, stream.events,
                                 sharding, kill_at=200)
        assert recovered == baseline
        restarts = sum(shard.worker_restarts
                       for shard in metrics.shards.values())
        replayed = sum(shard.batches_replayed
                       for shard in metrics.shards.values())
        reconnects = sum(shard.remote_reconnects
                         for shard in metrics.shards.values())
        assert restarts >= 1
        assert replayed >= 1
        assert reconnects >= 1

    def test_heartbeats_fire_on_idle_connections(self, stream, baseline,
                                                 monkeypatch):
        monkeypatch.setattr(RemoteBackend, "heartbeat_interval", 0.01)
        daemons = start_daemons(2)
        try:
            processor = build(stream.registry, remote_config(daemons))
            produced = []
            for event in stream.events[:120]:
                produced.extend(processor.feed(event))
            # Let the connections go idle past the heartbeat interval;
            # the next drains ping and collect the pongs.
            time.sleep(0.1)
            for event in stream.events[120:]:
                produced.extend(processor.feed(event))
            produced.extend(processor.flush())
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert fingerprint_matches(produced, baseline)
        heartbeats = sum(shard.remote_heartbeats
                         for shard in processor.metrics.shards.values())
        assert heartbeats >= 1
        rtts = [shard.remote_rtt_p50
                for shard in processor.metrics.shards.values()
                if shard.remote_heartbeats]
        assert rtts and all(rtt > 0 for rtt in rtts)


def fingerprint_matches(produced, baseline):
    return fingerprint(produced) == baseline


class TestWireLayer:
    def test_framebuffer_reassembles_byte_by_byte(self):
        messages = [("flush", index) for index in range(5)]
        data = b"".join(pack_message(message, encode_request)
                        for message in messages)
        buffer = FrameBuffer()
        decoded = []
        for index in range(len(data)):
            for payload in buffer.feed(data[index:index + 1]):
                decoded.append(unpack_payload(payload, decode_request))
        assert decoded == messages
        assert buffer.pending() == 0

    def test_framebuffer_rejects_corrupt_complete_frame(self):
        data = bytearray(pack_message(("flush", 1), encode_request))
        data[-1] ^= 0xFF  # flip a payload byte under the CRC
        with pytest.raises(WireCorrupt):
            FrameBuffer().feed(bytes(data))

    def test_framebuffer_rejects_absurd_length(self):
        header = (2 ** 31).to_bytes(4, "little") + b"\0\0\0\0"
        with pytest.raises(WireCorrupt):
            FrameBuffer().feed(header)

    def test_pickle_lane_carries_what_marshal_cannot(self):
        message = ("spec", 0, Opaque(7), 3)
        data = pack_message(message, encode_request)
        buffer = FrameBuffer()
        (payload,) = buffer.feed(data)
        assert unpack_payload(payload, decode_request) == message

    def test_unknown_tag_is_corruption(self):
        payload = frame(b"\x7fgarbage")
        (raw,) = FrameBuffer().feed(payload)
        with pytest.raises(WireCorrupt):
            unpack_payload(raw, decode_request)


class Opaque:
    """Picklable but not marshalable: forces the pickle lane."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Opaque) and other.value == self.value

    def __hash__(self):
        return hash(self.value)


class TestEndpointParsing:
    def test_parses_and_normalizes(self):
        assert parse_endpoints(" 127.0.0.1:9001 ,localhost:9002") == \
            ("127.0.0.1:9001", "localhost:9002")
        assert parse_endpoint("example.com:80") == ("example.com", 80)

    @pytest.mark.parametrize("bad", [
        "", "  ", "127.0.0.1", "host:", ":9000", "host:abc",
        "host:0", "host:70000", "a:1,,b:2",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(SaseError):
            parse_endpoints(bad)

    def test_config_requires_matching_worker_count(self):
        with pytest.raises(SaseError):
            ShardingConfig(shards=2, backend="remote",
                           workers=("127.0.0.1:9000",))
        with pytest.raises(SaseError):
            ShardingConfig(shards=2, backend="remote")
        with pytest.raises(SaseError):
            ShardingConfig(shards=2, backend="process",
                           workers=("127.0.0.1:9000", "127.0.0.1:9001"))
