"""The distributed shard tier: TCP workers behind the remote backend.

Differential guarantee first: for 1/2/4 localhost workers and the
pair/kleene/trailing-negation query mix, the remote backend's ordered
output must be bit-identical to the single-process runtime — including
watermark-released trailing-negation matches.  Then the failure
ladder: a SIGKILLed owned worker must respawn and replay its journal
without losing or duplicating a result, an external daemon must
survive coordinator sessions back to back (fresh core per accept), and
seeded ``net.*`` chaos runs (delay, drop, corrupt, partition, trickle)
must converge to the clean output after reconnect + journal replay —
with a partition that outlives the reconnect budget degrading the
shard explicitly (``complete=False``) instead of wedging.  The
handshake layer is adversarial-tested directly: version mismatch and
wrong secret get typed rejects before any spec frame is decoded,
pre-auth garbage is dropped, and nothing on the wire can reach a
general ``pickle.loads``.  The wire layer (stream framing, restricted
spec lane, corruption detection, frame-length caps) is covered at
unit level.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import socket
import threading
import time

import pytest

from repro.errors import SaseError
from repro.persist.records import frame
from repro.resilience import ResilienceConfig
from repro.resilience.retry import retry_call
from repro.sharding import ShardingConfig
from repro.sharding.remote import RemoteBackend, WorkerDaemon, \
    parse_endpoint, parse_endpoints, resolve_secret
from repro.sharding.wire import PROTOCOL_VERSION, TAG_SPEC, \
    FrameBuffer, Unencodable, WireCorrupt, decode_request, \
    decode_response, encode_request, pack_message, pack_spec, \
    unpack_payload
from repro.system import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

KLEENE_QUERY = ("EVENT SEQ(A a, B+ b, C c)\n"
                "WHERE a.id = b.id AND a.id = c.id\n"
                "WITHIN 5 seconds\nRETURN a.id")

#: Shared secret for the whole suite (workers and coordinators alike).
SECRET = "remote-suite-secret"


@pytest.fixture(scope="module")
def stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=400, n_types=4, id_domain=8, seed=11))


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


def build(registry, sharding, resilience=None):
    processor = ComplexEventProcessor(registry, sharding=sharding,
                                      resilience=resilience)
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.register("kleene", KLEENE_QUERY)
    # negation_at == length: trailing negation, released by watermarks.
    processor.register("negtrail",
                       seq_query(2, window=5.0, partitioned=True,
                                 negation_at=2))
    return processor


def run(registry, events, sharding, kill_at=None, kill_shard=0,
        resilience=None):
    processor = build(registry, sharding, resilience=resilience)
    produced = []
    for index, event in enumerate(events):
        produced.extend(processor.feed(event))
        if kill_at is not None and index == kill_at:
            pids = processor._router.worker_pids()
            os.kill(pids[kill_shard], signal.SIGKILL)
    produced.extend(processor.flush())
    return fingerprint(produced), processor.metrics


@pytest.fixture(scope="module")
def baseline(stream):
    result, _ = run(stream.registry, stream.events, None)
    return result


def start_daemons(count, secret=SECRET, **daemon_options):
    """In-thread worker daemons on ephemeral ports (external workers:
    the coordinator never owns or spawns them)."""
    daemons = []
    for _ in range(count):
        daemon = WorkerDaemon("127.0.0.1", 0, secret=secret.encode(),
                              **daemon_options)
        daemon.bind()
        threading.Thread(target=daemon.serve, daemon=True).start()
        daemons.append(daemon)
    return daemons


def remote_config(daemons, **overrides):
    options = dict(shards=len(daemons), backend="remote",
                   batch_size=16, queue_capacity=4,
                   response_timeout=30.0, secret=SECRET,
                   workers=tuple(f"127.0.0.1:{daemon.port}"
                                 for daemon in daemons))
    options.update(overrides)
    return ShardingConfig(**options)


def free_ports(count):
    """Ports that are free right now — endpoints for owned (spawned)
    workers."""
    sockets, ports = [], []
    for _ in range(count):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        sockets.append(listener)
        ports.append(listener.getsockname()[1])
    for listener in sockets:
        listener.close()
    return ports


class TestRemoteDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_output_identical_to_single_process(self, stream, baseline,
                                                shards):
        daemons = start_daemons(shards)
        try:
            result, metrics = run(stream.registry, stream.events,
                                  remote_config(daemons))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert result == baseline
        sent = sum(shard.remote_bytes_sent
                   for shard in metrics.shards.values())
        received = sum(shard.remote_bytes_received
                       for shard in metrics.shards.values())
        assert sent > 0 and received > 0

    def test_daemon_reaccepts_sessions_with_fresh_state(self, stream,
                                                        baseline):
        # Two full coordinator sessions against the same daemons: the
        # re-accept path must rebuild a clean worker core each time, or
        # the second run would double-produce.
        daemons = start_daemons(2)
        try:
            first, _ = run(stream.registry, stream.events,
                           remote_config(daemons))
            second, _ = run(stream.registry, stream.events,
                            remote_config(daemons))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert first == baseline
        assert second == baseline


class TestRemoteFailover:
    def test_sigkill_owned_worker_replays_journal(self, stream,
                                                  baseline):
        # Nothing listens on these ports, so the coordinator spawns
        # (and supervises) 'repro worker' subprocesses for them — and
        # hands them the shared secret through the environment.
        workers = tuple(f"127.0.0.1:{port}" for port in free_ports(2))
        sharding = ShardingConfig(shards=2, backend="remote",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0,
                                  workers=workers, secret=SECRET)
        recovered, metrics = run(stream.registry, stream.events,
                                 sharding, kill_at=200)
        assert recovered == baseline
        restarts = sum(shard.worker_restarts
                       for shard in metrics.shards.values())
        replayed = sum(shard.batches_replayed
                       for shard in metrics.shards.values())
        reconnects = sum(shard.remote_reconnects
                         for shard in metrics.shards.values())
        assert restarts >= 1
        assert replayed >= 1
        assert reconnects >= 1

    def test_heartbeats_fire_on_idle_connections(self, stream, baseline,
                                                 monkeypatch):
        monkeypatch.setattr(RemoteBackend, "heartbeat_interval", 0.01)
        daemons = start_daemons(2)
        try:
            processor = build(stream.registry, remote_config(daemons))
            produced = []
            for event in stream.events[:120]:
                produced.extend(processor.feed(event))
            # Let the connections go idle past the heartbeat interval;
            # the next drains ping and collect the pongs.
            time.sleep(0.1)
            for event in stream.events[120:]:
                produced.extend(processor.feed(event))
            produced.extend(processor.flush())
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert fingerprint_matches(produced, baseline)
        heartbeats = sum(shard.remote_heartbeats
                         for shard in processor.metrics.shards.values())
        assert heartbeats >= 1
        rtts = [shard.remote_rtt_p50
                for shard in processor.metrics.shards.values()
                if shard.remote_heartbeats]
        assert rtts and all(rtt > 0 for rtt in rtts)


def fingerprint_matches(produced, baseline):
    return fingerprint(produced) == baseline


class TestHandshakeHardening:
    """Adversarial peers at the handshake boundary: every rejection
    happens before any spec frame could be decoded."""

    def _dial(self, daemon):
        sock = socket.create_connection(("127.0.0.1", daemon.port),
                                        timeout=5.0)
        sock.settimeout(5.0)
        return sock

    def _read_reply(self, sock):
        buffer = FrameBuffer()
        while True:
            data = sock.recv(1 << 16)
            if not data:
                return None  # dropped without a reply
            for payload in buffer.feed(data):
                return unpack_payload(payload, decode_response)

    def test_version_mismatch_gets_typed_reject(self, stream):
        daemons = start_daemons(1)
        try:
            sock = self._dial(daemons[0])
            sock.sendall(pack_message(("hello", 999, b"n" * 16),
                                      encode_request))
            reply = self._read_reply(sock)
            sock.close()
            assert reply is not None and reply[0] == "reject"
            assert reply[1] == "version"
            assert str(PROTOCOL_VERSION) in reply[2]
        finally:
            for daemon in daemons:
                daemon.shutdown()

    def test_wrong_secret_raises_before_any_spec(self, stream):
        daemons = start_daemons(1, secret="the-right-secret")
        try:
            config = remote_config(daemons)  # coordinator keeps SECRET
            with pytest.raises(SaseError,
                               match="rejected the handshake"):
                run(stream.registry, stream.events[:10], config)
            assert daemons[0].auth_failures >= 1
        finally:
            for daemon in daemons:
                daemon.shutdown()

    def test_garbage_before_handshake_is_dropped(self, stream):
        daemons = start_daemons(1)
        try:
            # A hostile length prefix: claims ~4 GB.  The handshake
            # frame cap rejects it without buffering anything.
            sock = self._dial(daemons[0])
            sock.sendall(b"\xde\xad\xbe\xef" * 16)
            assert sock.recv(1 << 16) == b""  # dropped, no reply
            sock.close()
            # The daemon must still serve a real session afterwards.
            clean, _ = run(stream.registry, stream.events[:100], None)
            result, _ = run(stream.registry, stream.events[:100],
                            remote_config(daemons))
            assert result == clean
        finally:
            for daemon in daemons:
                daemon.shutdown()

    def test_unauthenticated_spec_frame_is_dropped(self, stream):
        # A peer that skips the handshake and fires a spec frame first
        # must be cut off by the pre-auth protocol check — the payload
        # is never unpickled (a decode would run Evil.__reduce__).
        daemons = start_daemons(1)
        try:
            sock = self._dial(daemons[0])
            sock.sendall(frame(bytes((TAG_SPEC,))
                               + pickle.dumps(("spec", 0, None, 0))))
            assert self._read_reply(sock) in (None, ("reject",
                                                     "protocol",
                                                     "expected hello"))
            sock.close()
        finally:
            for daemon in daemons:
                daemon.shutdown()


class TestNetworkChaos:
    """Seeded ``net.*`` chaos over the remote backend must converge to
    byte-identical output after reconnect + journal replay."""

    ROWS = ("net.delay@2:0.002", "net.drop_conn@3", "net.corrupt@2",
            "net.partition@2:0.2")

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("chaos", ROWS)
    def test_chaos_run_matches_clean_run(self, stream, baseline,
                                         shards, chaos):
        daemons = start_daemons(shards)
        try:
            result, metrics = run(
                stream.registry, stream.events, remote_config(daemons),
                resilience=ResilienceConfig(chaos=chaos, chaos_seed=7))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert result == baseline
        if chaos.startswith(("net.drop_conn", "net.partition")):
            reconnects = sum(shard.remote_reconnects
                             for shard in metrics.shards.values())
            assert reconnects >= 1
        if chaos.startswith("net.partition"):
            backoff = sum(shard.reconnect_backoff_ms
                          for shard in metrics.shards.values())
            assert backoff > 0  # the hold forced the backoff ladder

    def test_slow_read_trickle_converges(self, stream, baseline):
        daemons = start_daemons(2)
        try:
            result, _ = run(
                stream.registry, stream.events, remote_config(daemons),
                resilience=ResilienceConfig(
                    chaos="net.slow_read=0.05:0.0005", chaos_seed=3))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert result == baseline

    def test_worker_side_chaos_converges(self, stream, baseline):
        # The daemon's half of the fault matrix: its responses are
        # delayed and one connection is severed from the worker side.
        daemons = start_daemons(
            2, chaos="net.delay@4:0.002,net.drop_conn@9", chaos_seed=5)
        try:
            result, _ = run(stream.registry, stream.events,
                            remote_config(daemons))
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert result == baseline


class TestPartitionDegraded:
    def test_partition_outliving_budget_degrades_explicitly(
            self, stream, monkeypatch):
        # Sever shard 0's link *and* its listener: reconnects can never
        # succeed, so the shortened budget runs out, the breaker ladder
        # exhausts, and the run must degrade — explicitly — instead of
        # wedging or crashing.
        monkeypatch.setattr(RemoteBackend, "connect_budget", 0.25)
        daemons = start_daemons(2)
        resilience = ResilienceConfig(hang_timeout=1.0, max_restarts=1,
                                      restart_window=30.0,
                                      breaker_cooldown=60.0)
        try:
            processor = build(stream.registry, remote_config(daemons),
                              resilience=resilience)
            produced = []
            for event in stream.events[:100]:
                produced.extend(processor.feed(event))
            backend = processor._router._backend
            daemons[0].shutdown()          # no re-accept ever again
            backend._connections[0].close()  # sever the live session
            late = []
            for event in stream.events[100:]:
                late.extend(processor.feed(event))
            late.extend(processor.flush())
            produced.extend(late)
        finally:
            for daemon in daemons:
                daemon.shutdown()
        assert processor._router.degraded
        assert late, "surviving shards must still answer"
        # Everything emitted after the loss is flagged incomplete.
        assert any(not result.complete for _, result in late)
        first_degraded = next(index for index, (_, result)
                              in enumerate(late) if not result.complete)
        assert all(not result.complete
                   for _, result in late[first_degraded:])
        partitions = sum(shard.remote_partitions
                         for shard in processor.metrics.shards.values())
        assert partitions >= 1
        lost = sum(shard.events_lost
                   for shard in processor.metrics.shards.values())
        assert lost > 0


class TestWireLayer:
    def test_framebuffer_reassembles_byte_by_byte(self):
        messages = [("flush", index) for index in range(5)]
        data = b"".join(pack_message(message, encode_request)
                        for message in messages)
        buffer = FrameBuffer()
        decoded = []
        for index in range(len(data)):
            for payload in buffer.feed(data[index:index + 1]):
                decoded.append(unpack_payload(payload, decode_request))
        assert decoded == messages
        assert buffer.pending() == 0

    def test_framebuffer_rejects_corrupt_complete_frame(self):
        data = bytearray(pack_message(("flush", 1), encode_request))
        data[-1] ^= 0xFF  # flip a payload byte under the CRC
        with pytest.raises(WireCorrupt):
            FrameBuffer().feed(bytes(data))

    def test_framebuffer_rejects_absurd_length(self):
        header = (2 ** 31).to_bytes(4, "little") + b"\0\0\0\0"
        with pytest.raises(WireCorrupt):
            FrameBuffer().feed(header)

    def test_framebuffer_honors_small_frame_cap(self):
        # A length far below the WAL cap but above this buffer's cap
        # (the handshake phase) is rejected before any payload bytes
        # are buffered.
        header = (1 << 20).to_bytes(4, "little") + b"\0\0\0\0"
        with pytest.raises(WireCorrupt):
            FrameBuffer(4096).feed(header)

    def test_fuzzed_corrupt_prefixes_never_overallocate(self):
        rng = random.Random(0xC0FFEE)
        good = pack_message(("flush", 1), encode_request)
        cap = 1 << 16
        for _ in range(300):
            data = bytearray(good)
            data[rng.randrange(len(data))] ^= 1 + rng.randrange(255)
            buffer = FrameBuffer(cap)
            try:
                buffer.feed(bytes(data))
            except WireCorrupt:
                continue  # detected: corrupt length or CRC mismatch
            # Not detected yet: the frame must merely look incomplete,
            # with the pending tail bounded by the cap.
            assert buffer.pending() <= cap + 8

    def test_marshal_inexpressible_message_is_refused(self):
        # The pickle lane is retired: what marshal cannot carry does
        # not cross the TCP wire at all.
        with pytest.raises(Unencodable):
            pack_message(("spec", 0, Opaque(7), 3), encode_request)

    def test_spec_lane_round_trips_through_the_allowlist(self):
        message = ("spec", 3, None, 2)
        (payload,) = FrameBuffer().feed(pack_spec(message))
        assert unpack_payload(payload, decode_request,
                              allow_spec=True) == message

    def test_spec_lane_refuses_arbitrary_globals(self):
        # A pickle referencing anything outside the WorkerSpec object
        # graph is corruption, not code execution.
        evil = frame(bytes((TAG_SPEC,)) + pickle.dumps(os.system))
        (payload,) = FrameBuffer().feed(evil)
        with pytest.raises(WireCorrupt, match="allowlist"):
            unpack_payload(payload, decode_request, allow_spec=True)

    def test_spec_frame_rejected_on_response_lane(self):
        (payload,) = FrameBuffer().feed(pack_spec(("spec", 0, None, 0)))
        with pytest.raises(WireCorrupt):
            unpack_payload(payload, decode_response)  # allow_spec off

    def test_unknown_tag_is_corruption(self):
        payload = frame(b"\x7fgarbage")
        (raw,) = FrameBuffer().feed(payload)
        with pytest.raises(WireCorrupt):
            unpack_payload(raw, decode_request)


class Opaque:
    """Picklable but not marshalable: exactly what the retired pickle
    lane used to carry, and what the wire must now refuse."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Opaque) and other.value == self.value

    def __hash__(self):
        return hash(self.value)


class TestBackoffAndSecrets:
    def test_retry_backoff_hook_reports_each_delay(self):
        delays, calls = [], []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise OSError("transient")
            return "ok"

        result = retry_call(flaky, attempts=10, base_delay=0.001,
                            max_delay=0.01, sleep=lambda _seconds: None,
                            on_backoff=delays.append)
        assert result == "ok"
        assert len(delays) == 3
        assert all(0.0 <= delay <= 0.01 for delay in delays)

    def test_resolve_secret_forms(self, tmp_path, monkeypatch):
        assert resolve_secret("literal-secret") == b"literal-secret"
        monkeypatch.setenv("SASE_TEST_SECRET", "from-env")
        assert resolve_secret("env:SASE_TEST_SECRET") == b"from-env"
        path = tmp_path / "secret.key"
        path.write_text("  from-file\n")
        assert resolve_secret(f"file:{path}") == b"from-file"

    @pytest.mark.parametrize("bad", [None, "", "   ", "env:SASE_UNSET_X",
                                     "file:/no/such/secret-file"])
    def test_resolve_secret_rejects_unusable_specs(self, bad):
        with pytest.raises(SaseError):
            resolve_secret(bad)


class TestEndpointParsing:
    def test_parses_and_normalizes(self):
        assert parse_endpoints(" 127.0.0.1:9001 ,localhost:9002") == \
            ("127.0.0.1:9001", "localhost:9002")
        assert parse_endpoint("example.com:80") == ("example.com", 80)

    @pytest.mark.parametrize("bad", [
        "", "  ", "127.0.0.1", "host:", ":9000", "host:abc",
        "host:0", "host:70000", "a:1,,b:2",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(SaseError):
            parse_endpoints(bad)

    def test_config_requires_matching_worker_count(self):
        with pytest.raises(SaseError):
            ShardingConfig(shards=2, backend="remote", secret=SECRET,
                           workers=("127.0.0.1:9000",))
        with pytest.raises(SaseError):
            ShardingConfig(shards=2, backend="remote", secret=SECRET)
        with pytest.raises(SaseError):
            ShardingConfig(shards=2, backend="process",
                           workers=("127.0.0.1:9000", "127.0.0.1:9001"))

    def test_config_requires_secret_for_remote_only(self):
        with pytest.raises(SaseError, match="shard-secret"):
            ShardingConfig(shards=1, backend="remote",
                           workers=("127.0.0.1:9000",))
        with pytest.raises(SaseError, match="shard-secret"):
            ShardingConfig(shards=2, backend="process", secret=SECRET)
        config = ShardingConfig(shards=1, backend="remote",
                                workers=("127.0.0.1:9000",),
                                secret=SECRET)
        assert "secret" not in repr(config)
