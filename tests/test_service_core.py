"""The transport-free service core: tenancy, quotas, admission control,
result shedding, rate limiting, and the durable query-set manifest."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.events.event import Event
from repro.service import AdmissionPolicy, QueryService, TenantQuota, \
    TokenBucket

PAIR = "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 10\n" \
       "RETURN x.id, y.v"
SINGLE = "EVENT A x\nWITHIN 10\nRETURN x.id, x.v"


def _feed_pairs(service, count=5):
    """``count`` A/B pairs with distinct ids: exactly one match each."""
    produced = 0
    for index in range(count):
        produced += service.feed(Event("A", 2.0 * index,
                                       {"id": index, "v": index}))
        produced += service.feed(Event("B", 2.0 * index + 1.0,
                                       {"id": index, "v": index}))
    return produced


class TestRegistration:
    def test_register_and_drain(self, abc_registry):
        service = QueryService(abc_registry)
        assert service.register("alice", "pairs", PAIR) \
            == {"status": "registered"}
        _feed_pairs(service)
        results = service.drain("alice")
        assert len(results) == 5
        first = results[0]
        assert first["tenant"] == "alice"
        assert first["query"] == "pairs"
        assert first["attributes"] == {"x_id": 0, "y_v": 0}

    def test_tenants_are_namespaced(self, abc_registry):
        service = QueryService(abc_registry)
        service.register("alice", "q", PAIR)
        service.register("bob", "q", PAIR)   # same name, no collision
        _feed_pairs(service, count=2)
        assert len(service.drain("alice")) == len(service.drain("bob"))

    def test_duplicate_name_rejected(self, abc_registry):
        service = QueryService(abc_registry)
        service.register("alice", "q", PAIR)
        with pytest.raises(ServiceError, match="already has"):
            service.register("alice", "q", PAIR)

    def test_bad_query_rejected_and_counted(self, abc_registry):
        service = QueryService(abc_registry)
        with pytest.raises(Exception):
            service.register("alice", "bad", "EVENT NOPE(")
        assert service.tenant("alice").rejected_total == 1
        assert service.queries("alice") == {}

    def test_withdraw_releases(self, abc_registry):
        service = QueryService(abc_registry)
        service.register("alice", "q", PAIR)
        service.withdraw("alice", "q")
        assert service.total_queries == 0
        _feed_pairs(service, count=2)
        assert service.drain("alice") == []
        with pytest.raises(ServiceError, match="no query"):
            service.withdraw("alice", "q")

    def test_unknown_tenant(self, abc_registry):
        service = QueryService(abc_registry)
        with pytest.raises(ServiceError, match="unknown tenant"):
            service.drain("ghost")


class TestQuotas:
    def test_per_tenant_query_quota(self, abc_registry):
        service = QueryService(
            abc_registry, default_quota=TenantQuota(max_queries=2))
        service.register("alice", "q1", PAIR)
        service.register("alice", "q2", SINGLE)
        with pytest.raises(ServiceError, match="query quota"):
            service.register("alice", "q3", PAIR)
        state = service.tenant("alice")
        assert state.rejected_total == 1
        assert state.admitted_total == 2
        # Withdrawing frees quota.
        service.withdraw("alice", "q1")
        service.register("alice", "q3", PAIR)

    def test_backlog_sheds_oldest(self, abc_registry):
        service = QueryService(
            abc_registry,
            default_quota=TenantQuota(max_pending_results=3))
        service.register("alice", "all_a", SINGLE)
        for index in range(10):
            service.feed(Event("A", float(index),
                               {"id": index, "v": index}))
        state = service.tenant("alice")
        assert len(state.pending) == 3
        assert state.shed_total == 7
        # The *newest* results survive.
        kept = [result["attributes"]["x_id"]
                for result in service.drain("alice")]
        assert kept == [7, 8, 9]

    def test_rate_limit_uses_injected_clock(self, abc_registry):
        now = {"t": 0.0}
        service = QueryService(
            abc_registry,
            default_quota=TenantQuota(max_events_per_second=2.0),
            clock=lambda: now["t"])
        service.register("alice", "q", SINGLE)
        record = {"type": "A", "timestamp": 1.0,
                  "attributes": {"id": 1, "v": 1}}
        service.feed_record("alice", record)
        service.feed_record("alice", record)
        with pytest.raises(ServiceError, match="rate"):
            service.feed_record("alice", record)
        assert service.tenant("alice").events_throttled == 1
        now["t"] = 1.0   # one second accrues two more tokens
        service.feed_record("alice", record)
        service.feed_record("alice", record)
        assert service.tenant("alice").events_submitted == 4

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(0.0)
        assert all(bucket.try_acquire(0.0) for _ in range(1000))

    def test_quota_roundtrip(self):
        quota = TenantQuota(max_queries=3, max_events_per_second=7.5,
                            max_pending_results=11)
        assert TenantQuota.from_dict(quota.to_dict()) == quota


class TestAdmission:
    def test_service_capacity_queues_then_admits(self, abc_registry):
        service = QueryService(
            abc_registry,
            policy=AdmissionPolicy(max_total_queries=2, queue_limit=2))
        service.register("a", "q", PAIR)
        service.register("b", "q", PAIR)
        outcome = service.register("c", "q", PAIR)
        assert outcome == {"status": "queued", "position": 1}
        assert service.queries("c") == {}
        service.withdraw("a", "q")
        assert service.queries("c") == {"q": PAIR}
        assert service.tenant("c").queued == 0

    def test_full_queue_rejects(self, abc_registry):
        service = QueryService(
            abc_registry,
            policy=AdmissionPolicy(max_total_queries=1, queue_limit=1))
        service.register("a", "q", PAIR)
        service.register("b", "q", PAIR)
        with pytest.raises(ServiceError, match="at capacity"):
            service.register("c", "q", PAIR)

    def test_queued_registration_validated_eagerly(self, abc_registry):
        service = QueryService(
            abc_registry,
            policy=AdmissionPolicy(max_total_queries=1, queue_limit=4))
        service.register("a", "q", PAIR)
        with pytest.raises(Exception):
            service.register("b", "bad", "EVENT NOPE(")
        assert len(service._admission_queue) == 0

    def test_queued_counts_against_tenant_quota(self, abc_registry):
        service = QueryService(
            abc_registry,
            policy=AdmissionPolicy(max_total_queries=1, queue_limit=8),
            default_quota=TenantQuota(max_queries=2))
        service.register("a", "q", PAIR)
        service.register("b", "q1", PAIR)    # queued
        service.register("b", "q2", PAIR)    # queued
        with pytest.raises(ServiceError, match="query quota"):
            service.register("b", "q3", PAIR)

    def test_tenant_limit(self, abc_registry):
        service = QueryService(
            abc_registry, policy=AdmissionPolicy(max_tenants=1))
        service.register("a", "q", PAIR)
        with pytest.raises(ServiceError, match="tenant limit"):
            service.register("b", "q", PAIR)

    def test_drop_tenant(self, abc_registry):
        service = QueryService(abc_registry)
        service.register("a", "q1", PAIR)
        service.register("a", "q2", SINGLE)
        assert service.drop_tenant("a") == 2
        assert service.total_queries == 0
        assert "a" not in service.tenants()


class TestManifest:
    def test_round_trip(self, abc_registry, tmp_path):
        path = str(tmp_path / "queries.json")
        service = QueryService(
            abc_registry, manifest_path=path,
            default_quota=TenantQuota(max_queries=4))
        service.register("alice", "pairs", PAIR,
                         quota=TenantQuota(max_queries=2))
        service.register("bob", "all_a", SINGLE)
        service.withdraw("bob", "all_a")
        service.register("bob", "pairs", PAIR)

        restored = QueryService(abc_registry, manifest_path=path)
        assert restored.tenants() == ["alice", "bob"]
        assert restored.queries("alice") == {"pairs": PAIR}
        assert restored.queries("bob") == {"pairs": PAIR}
        assert restored.tenant("alice").quota.max_queries == 2
        # The restored service is live: queries actually run.
        _feed_pairs(restored, count=2)
        assert restored.drain("alice")

    def test_manifest_written_atomically(self, abc_registry, tmp_path):
        path = tmp_path / "queries.json"
        service = QueryService(abc_registry, manifest_path=str(path))
        service.register("alice", "pairs", PAIR)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert not (tmp_path / "queries.json.tmp").exists()

    def test_rejects_foreign_file(self, abc_registry, tmp_path):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ServiceError, match="manifest"):
            QueryService(abc_registry, manifest_path=str(path))


class TestIntrospection:
    def test_stats_and_gauges(self, abc_registry):
        service = QueryService(abc_registry)
        service.register("alice", "pairs", PAIR)
        service.register("bob", "pairs", PAIR)
        _feed_pairs(service, count=3)
        service.drain("alice", limit=1)
        stats = service.stats()
        assert stats["tenants"] == 2
        assert stats["queries"] == 2
        assert stats["shared_plans"]["shared_queries"] == 2
        gauges = service.tenant_gauges()
        assert gauges["alice"]["results_total"] == 3
        assert gauges["alice"]["results_delivered_total"] == 1
        assert gauges["alice"]["pending_results"] == 2
        assert gauges["bob"]["pending_results"] == 3

    def test_flush_releases_negation_matches(self, abc_registry):
        service = QueryService(abc_registry)
        service.register(
            "alice", "no_c",
            "EVENT SEQ(A x, B y, !(C z))\nWHERE x.id = y.id AND "
            "z.id = x.id\nWITHIN 10\nRETURN x.id")
        service.feed(Event("A", 1.0, {"id": 1, "v": 1}))
        service.feed(Event("B", 2.0, {"id": 1, "v": 2}))
        assert service.drain("alice") == []   # negation still pending
        assert service.flush() == 1
        assert len(service.drain("alice")) == 1

    def test_metrics_exporter_tenant_section(self, abc_registry,
                                             tmp_path):
        from repro.obs import MetricsExporter
        from repro.obs.export import _TENANT_GAUGES, parse_prometheus
        service = QueryService(abc_registry)
        service.register("alice", "pairs", PAIR)
        _feed_pairs(service, count=2)
        path = str(tmp_path / "metrics.prom")
        exporter = MetricsExporter(service.processor, path,
                                   service=service)
        text = exporter.flush()
        samples = parse_prometheus(text)
        key = ("sase_tenant_registered_queries", (("tenant", "alice"),))
        assert samples[key] == 1.0
        pending = ("sase_tenant_pending_results", (("tenant", "alice"),))
        assert samples[pending] == 2.0
        # Round-trip parity: every JSON tenant gauge appears as a
        # Prometheus sample with the same value.
        snapshot = exporter.snapshot()
        for tenant, gauges in snapshot["tenants"].items():
            for metric, field, _ in _TENANT_GAUGES:
                sample = samples[(metric, (("tenant", tenant),))]
                assert sample == float(gauges[field])
