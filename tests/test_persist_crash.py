"""Differential SIGKILL crash-recovery tests.

Each case runs the demo as a subprocess with ``--crash-after N`` (a
hidden fault-injection flag that SIGKILLs the whole process group right
after the Nth WAL append), re-runs the same command to resume, and
requires the final match log, event-database checkpoint, and truth
summary to be *bit-identical* to an uncrashed oracle run — for the
single-process pipeline and for every sharded backend.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.persist import OUT_LOG, CheckpointStore

SRC = str(Path(__file__).resolve().parent.parent / "src")
DEMO_ARGS = [
    "demo", "--products", "8", "--shoppers", "2", "--shoplifters", "1",
    "--misplacements", "1", "--seed", "11", "--noise", "mild",
    "--checkpoint-every", "64", "--fsync", "every_n:8",
]
KILLED = (137, -9, -signal.SIGKILL)


def run_demo(data_dir: str, *extra: str,
             timeout: float = 180.0) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=SRC)
    # start_new_session makes the demo a process-group leader, so its
    # self-inflicted SIGKILL takes any shard worker processes down too.
    return subprocess.run(
        [sys.executable, "-m", "repro", *DEMO_ARGS,
         "--data-dir", data_dir, *extra],
        env=env, capture_output=True, text=True, timeout=timeout,
        start_new_session=True)


def shard_args(shards: int, backend: str,
               transport: str | None = None) -> list[str]:
    if shards == 1 and backend == "inline":
        return []
    args = ["--shards", str(shards), "--shard-backend", backend]
    if transport is not None:
        args += ["--shard-transport", transport]
    return args


def truth_lines(stdout: str) -> list[str]:
    return [line for line in stdout.splitlines()
            if line.startswith(("shoplifted:", "misplaced:"))]


def read_out_log(data_dir: str) -> bytes:
    with open(os.path.join(data_dir, OUT_LOG), "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """One uncrashed single-process run: the ground truth every
    crash+resume combination must reproduce bit for bit."""
    data_dir = str(tmp_path_factory.mktemp("oracle"))
    proc = run_demo(data_dir)
    assert proc.returncode == 0, proc.stderr
    checkpoint = CheckpointStore(data_dir).latest()
    assert checkpoint is not None
    return {
        "out_log": read_out_log(data_dir),
        "checkpoint": checkpoint,
        "truth": truth_lines(proc.stdout),
        "total_events": checkpoint["wal_lsn"],
    }


def crash_and_resume(data_dir: str, offset: int, extra: list[str],
                     oracle: dict) -> None:
    crashed = run_demo(data_dir, "--crash-after", str(offset), *extra)
    assert crashed.returncode in KILLED, \
        f"expected a SIGKILL exit, got {crashed.returncode}: " \
        f"{crashed.stderr}"
    resumed = run_demo(data_dir, *extra)
    assert resumed.returncode == 0, resumed.stderr
    assert read_out_log(data_dir) == oracle["out_log"]
    final = CheckpointStore(data_dir).latest()
    assert final["wal_lsn"] == oracle["checkpoint"]["wal_lsn"]
    assert final["emitted"] == oracle["checkpoint"]["emitted"]
    assert final["db"] == oracle["checkpoint"]["db"]
    assert truth_lines(resumed.stdout) == oracle["truth"]


@pytest.mark.parametrize("shards,backend,transport", [
    (1, "inline", None), (2, "inline", None), (4, "inline", None),
    (1, "thread", None), (2, "thread", None), (4, "thread", None),
    (1, "process", "ring"), (2, "process", "ring"),
    (4, "process", "ring"),
    (2, "process", "pipe"), (4, "process", "pipe"),
])
def test_sigkill_recovery_matrix(shards, backend, transport, oracle,
                                 tmp_path):
    """SIGKILL at a pseudo-random offset, then resume: every shard
    count, backend, and process transport must converge to the oracle's
    exact state.  For the ring transport the whole-group SIGKILL also
    lands mid-frame in the shared-memory rings at whatever offset the
    crash point implies — recovery must treat that exactly like the
    WAL's torn tail."""
    total = oracle["total_events"]
    offset = random.Random(
        f"{shards}-{backend}-{transport}").randint(5, total - 5)
    crash_and_resume(str(tmp_path), offset,
                     shard_args(shards, backend, transport), oracle)


def test_sigkill_recovery_remote_backend(oracle, tmp_path):
    """Whole-group SIGKILL with the remote backend: the coordinator and
    the localhost workers it spawned die together mid-stream.  The
    resume run re-spawns workers on the same (manifest-pinned) ports
    and must converge to the oracle's exact state."""
    import socket

    sockets, ports = [], []
    for _ in range(2):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        sockets.append(listener)
        ports.append(listener.getsockname()[1])
    for listener in sockets:
        listener.close()
    workers = ",".join(f"127.0.0.1:{port}" for port in ports)
    total = oracle["total_events"]
    offset = random.Random("remote").randint(5, total - 5)
    crash_and_resume(str(tmp_path), offset,
                     ["--shards", "2", "--shard-backend", "remote",
                      "--shard-workers", workers,
                      "--shard-secret", "crash-suite-secret"], oracle)


def test_sigkill_at_many_offsets(oracle, tmp_path):
    """Sweep crash points across the stream on the single-process
    pipeline, including immediately after the first append and right
    before the end."""
    total = oracle["total_events"]
    offsets = [1, 63, 64, 65, total // 2, total - 1]
    for offset in offsets:
        data_dir = str(tmp_path / f"offset-{offset}")
        crash_and_resume(data_dir, offset, [], oracle)


def test_double_crash(oracle, tmp_path):
    """A second SIGKILL during the resume itself must still recover."""
    total = oracle["total_events"]
    data_dir = str(tmp_path)
    first = run_demo(data_dir, "--crash-after", str(total // 3))
    assert first.returncode in KILLED
    second = run_demo(data_dir, "--crash-after", str(2 * total // 3))
    assert second.returncode in KILLED
    crash_and_resume(data_dir, total - 10, [], oracle)


def test_rerun_completed_is_noop(oracle, tmp_path):
    """Re-running over a completed data dir replays everything,
    suppresses everything, and leaves the directory unchanged."""
    data_dir = str(tmp_path)
    assert run_demo(data_dir).returncode == 0
    before = read_out_log(data_dir)
    rerun = run_demo(data_dir)
    assert rerun.returncode == 0
    assert read_out_log(data_dir) == before == oracle["out_log"]
    assert truth_lines(rerun.stdout) == oracle["truth"]


def test_changed_params_rejected(oracle, tmp_path):
    """Resuming with different demo parameters must be refused: the
    WAL-skip contract requires the identical deterministic source."""
    data_dir = str(tmp_path)
    first = run_demo(data_dir, "--crash-after", "100")
    assert first.returncode in KILLED
    env = dict(os.environ, PYTHONPATH=SRC)
    wrong = subprocess.run(
        [sys.executable, "-m", "repro", "demo", "--products", "9",
         "--shoppers", "2", "--shoplifters", "1", "--misplacements",
         "1", "--seed", "11", "--noise", "mild", "--data-dir",
         data_dir],
        env=env, capture_output=True, text=True, timeout=120,
        start_new_session=True)
    assert wrong.returncode != 0
    assert "products" in wrong.stdout + wrong.stderr


def test_recover_command(oracle, tmp_path):
    """``repro recover`` inspects and seals a crashed directory."""
    data_dir = str(tmp_path)
    total = oracle["total_events"]
    crashed = run_demo(data_dir, "--crash-after", str(total // 2))
    assert crashed.returncode in KILLED
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "recover", data_dir],
        env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "recovered" in proc.stdout
    # Recover sealed the replayed state under a fresh checkpoint.
    assert CheckpointStore(data_dir).latest() is not None


def test_crash_recovery_smoke(oracle, tmp_path):
    """The single fast case CI runs on every push."""
    crash_and_resume(str(tmp_path), oracle["total_events"] // 2, [],
                     oracle)
