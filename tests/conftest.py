"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.events.model import AttributeType, SchemaRegistry
from repro.schemas import retail_registry


@pytest.fixture
def abc_registry() -> SchemaRegistry:
    """Three simple types A/B/C with id + v attributes."""
    registry = SchemaRegistry()
    for name in ("A", "B", "C", "D"):
        registry.declare(name, id=AttributeType.INT, v=AttributeType.INT)
    return registry


@pytest.fixture
def retail_schemas() -> SchemaRegistry:
    return retail_registry()
