"""Unit tests for the resilience layer: chaos spec parsing and
deterministic injection, retry/backoff, the circuit breaker state
machine, shedding-policy parsing, reading validation, and the
dead-letter queue."""

from __future__ import annotations

import json

import pytest

from repro.errors import ResilienceError, SaseError
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    ChaosConfig,
    CircuitBreaker,
    DeadLetterQueue,
    FaultInjector,
    ResilienceConfig,
    SheddingPolicy,
    mangle_readings,
    retry_call,
    validate_reading,
)
from repro.rfid.simulator import RawReading


class TestChaosSpec:
    def test_parse_full_grammar(self):
        config = ChaosConfig.parse(
            "ingest.corrupt=0.25, wal.write@3, worker.crash@2*, "
            "worker.slow=0.5:0.02", seed=9)
        sites = {rule.site: rule for rule in config.rules}
        assert sites["ingest.corrupt"].rate == 0.25
        assert sites["wal.write"].nth == 3
        assert not sites["wal.write"].repeat
        assert sites["worker.crash"].repeat
        assert sites["worker.slow"].param == 0.02
        assert config.seed == 9

    def test_empty_spec_arms_nothing(self):
        config = ChaosConfig.parse(None)
        assert config.rules == ()
        assert not config.armed()

    @pytest.mark.parametrize("spec", [
        "nonsense", "ingest.corrupt=2.0", "no.such.site@1",
        "worker.teleport", "wal.write@", "ingest.corrupt=",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ResilienceError):
            ChaosConfig.parse(spec)
        # ResilienceError is a SaseError: the CLI turns it into a
        # one-line message with exit code 2 (no traceback).
        assert issubclass(ResilienceError, SaseError)

    def test_resilience_config_validates_eagerly(self):
        with pytest.raises(ResilienceError):
            ResilienceConfig(chaos="bogus spec")
        with pytest.raises(ResilienceError):
            ResilienceConfig(shedding="drop-everything")


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig.parse("ingest.drop=0.3", seed=42)
        first = FaultInjector(config, scope="system")
        second = FaultInjector(config, scope="system")
        schedule_a = [first.trip("ingest.drop") for _ in range(200)]
        schedule_b = [second.trip("ingest.drop") for _ in range(200)]
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)

    def test_scopes_draw_independently(self):
        config = ChaosConfig.parse("ingest.drop=0.5", seed=42)
        system = FaultInjector(config, scope="system")
        worker = FaultInjector(config, scope="worker-0")
        assert [system.trip("ingest.drop") for _ in range(64)] != \
            [worker.trip("ingest.drop") for _ in range(64)]

    def test_nth_fires_once_and_only_in_first_incarnation(self):
        config = ChaosConfig.parse("worker.crash@3", seed=1)
        fresh = FaultInjector(config, scope="worker-0", incarnation=0)
        hits = [fresh.trip("worker.crash") for _ in range(10)]
        assert hits == [False, False, True] + [False] * 7
        restarted = FaultInjector(config, scope="worker-0",
                                  incarnation=1)
        assert not any(restarted.trip("worker.crash")
                       for _ in range(10))

    def test_nth_star_fires_every_multiple_every_incarnation(self):
        config = ChaosConfig.parse("worker.crash@2*", seed=1)
        restarted = FaultInjector(config, scope="worker-0",
                                  incarnation=3)
        hits = [restarted.trip("worker.crash") for _ in range(6)]
        assert hits == [False, True, False, True, False, True]

    def test_maybe_raise_and_counters(self):
        config = ChaosConfig.parse("wal.write@2", seed=1)
        injector = FaultInjector(config, scope="wal")
        injector.maybe_raise("wal.write")  # first opportunity: clean
        with pytest.raises(OSError, match="injected wal.write"):
            injector.maybe_raise("wal.write")
        assert injector.injected["wal.write"] == 1
        assert injector.total_injected == 1

    def test_unarmed_site_never_trips(self):
        config = ChaosConfig.parse("wal.write@1", seed=1)
        injector = FaultInjector(config, scope="x")
        assert not injector.trip("worker.crash")
        assert not injector.armed("worker.")
        assert injector.armed("wal.")


class TestMangleReadings:
    def _readings(self, n=10):
        return [RawReading(epc=f"EPC{i}", reader_id="r1", time=float(i))
                for i in range(n)]

    def test_corruptions_all_fail_validation(self):
        config = ChaosConfig.parse("ingest.corrupt=1.0", seed=3)
        injector = FaultInjector(config, scope="system")
        mangled = mangle_readings(injector, self._readings(8))
        assert len(mangled) == 8
        assert all(validate_reading(reading) is not None
                   for reading in mangled)

    def test_drop_and_duplicate(self):
        readings = self._readings(50)
        config = ChaosConfig.parse("ingest.drop=1.0", seed=3)
        assert mangle_readings(
            FaultInjector(config, scope="s"), readings) == []
        config = ChaosConfig.parse("ingest.duplicate=1.0", seed=3)
        doubled = mangle_readings(FaultInjector(config, scope="s"),
                                  readings)
        assert len(doubled) == 100

    def test_reorder_keeps_the_multiset(self):
        readings = self._readings(20)
        config = ChaosConfig.parse("ingest.reorder=1.0", seed=5)
        shuffled = mangle_readings(FaultInjector(config, scope="s"),
                                   list(readings))
        assert shuffled != readings
        assert sorted(shuffled, key=lambda r: r.time) == readings


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []
        delays = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        assert retry_call(flaky, sleep=delays.append,
                          clock=lambda: 0.0) == "done"
        assert len(calls) == 3 and len(delays) == 2
        assert all(delay >= 0.0 for delay in delays)

    def test_exhausted_attempts_raise_last_error(self):
        def always_fails():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_call(always_fails, attempts=3, sleep=lambda _: None,
                       clock=lambda: 0.0)

    def test_deadline_cuts_retries_short(self):
        now = [0.0]

        def fails():
            now[0] += 10.0
            raise OSError("slow failure")

        with pytest.raises(OSError):
            retry_call(fails, attempts=100, deadline=5.0,
                       sleep=lambda _: None, clock=lambda: now[0])
        assert now[0] <= 20.0  # bounded by the deadline, not attempts

    def test_non_matching_exceptions_propagate_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(wrong_kind, sleep=lambda _: None)
        assert len(calls) == 1

    def test_backoff_is_capped_and_jittered(self):
        delays = []

        def fails():
            raise OSError("x")

        class FullJitter:
            @staticmethod
            def random():
                return 1.0  # worst case: jitter at the cap

        with pytest.raises(OSError):
            retry_call(fails, attempts=6, base_delay=0.01,
                       max_delay=0.04, sleep=delays.append,
                       clock=lambda: 0.0, rng=FullJitter())
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04]


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = [0.0]
        transitions = []
        breaker = CircuitBreaker(clock=lambda: self.now[0],
                                 on_transition=lambda a, b:
                                 transitions.append((a, b)),
                                 **kwargs)
        return breaker, transitions

    def test_opens_after_budget_exhausted(self):
        breaker, transitions = self.make(max_restarts=2, window=30.0,
                                         cooldown=10.0)
        assert breaker.record_failure() is True
        assert breaker.record_failure() is True
        assert breaker.state() == CLOSED
        assert breaker.record_failure() is False  # third strike
        assert breaker.state() == OPEN
        assert transitions == [(CLOSED, OPEN)]
        assert breaker.opens == 1

    def test_old_failures_age_out_of_the_window(self):
        breaker, _ = self.make(max_restarts=1, window=5.0)
        assert breaker.record_failure() is True
        self.now[0] = 100.0  # far outside the window
        assert breaker.record_failure() is True
        assert breaker.state() == CLOSED

    def test_half_open_probe_then_close(self):
        breaker, transitions = self.make(max_restarts=0, cooldown=10.0)
        assert breaker.record_failure() is False
        assert breaker.state() == OPEN
        self.now[0] = 11.0
        assert breaker.state() == HALF_OPEN
        breaker.record_success()
        assert breaker.state() == CLOSED
        assert transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                               (HALF_OPEN, CLOSED)]

    def test_half_open_failure_reopens_immediately(self):
        breaker, _ = self.make(max_restarts=0, cooldown=10.0)
        breaker.record_failure()
        self.now[0] = 11.0
        assert breaker.state() == HALF_OPEN
        assert breaker.record_failure() is False
        assert breaker.state() == OPEN
        assert breaker.opens == 2

    def test_success_while_closed_is_a_noop(self):
        breaker, transitions = self.make()
        breaker.record_success()
        assert breaker.state() == CLOSED and transitions == []


class TestSheddingPolicy:
    def test_parse_kinds(self):
        assert SheddingPolicy.parse(None).kind == "block"
        assert not SheddingPolicy.parse("block").active
        assert SheddingPolicy.parse("drop-newest").active
        assert SheddingPolicy.parse("drop-oldest").active
        sampled = SheddingPolicy.parse("sample:0.25")
        assert sampled.kind == "sample"
        assert sampled.probability == 0.25

    @pytest.mark.parametrize("text", ["sample:2", "sample:x", "drop",
                                      "random"])
    def test_bad_policies_rejected(self, text):
        with pytest.raises(ResilienceError):
            SheddingPolicy.parse(text)


class TestValidateReading:
    def test_clean_reading_passes(self):
        assert validate_reading(
            RawReading(epc="E1", reader_id="r1", time=3.0)) is None

    @pytest.mark.parametrize("reading", [
        RawReading(epc=None, reader_id="r1", time=1.0),
        RawReading(epc=12345, reader_id="r1", time=1.0),
        RawReading(epc="", reader_id="r1", time=1.0),
        RawReading(epc="E1", reader_id=None, time=1.0),
        RawReading(epc="E1", reader_id="r1", time=float("nan")),
        RawReading(epc="E1", reader_id="r1", time=float("inf")),
        RawReading(epc="E1", reader_id="r1", time=-5.0),
        RawReading(epc="E1", reader_id="r1", time=1.0e18),
        RawReading(epc="E1", reader_id="r1", time="soon"),
        RawReading(epc="E1", reader_id="r1", time=True),
    ])
    def test_malformed_readings_diagnosed(self, reading):
        assert validate_reading(reading) is not None


class TestDeadLetterQueue:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "dead.jsonl")
        queue = DeadLetterQueue(path, clock=lambda: 123.0)
        queue.append("ingest_validation", {"epc": None, "time": 1.0},
                     "epc must be a non-empty string", ingest_time=1.0)
        queue.append("cleaning", {"epc": "E1", "time": float("nan")},
                     ValueError("boom"), ingest_time=2.0)
        queue.close()
        records = DeadLetterQueue.load(path)
        assert len(records) == 2
        assert records[0].stage == "ingest_validation"
        assert records[0].error_type == "ValidationError"
        assert records[0].wall_time == 123.0
        assert records[1].error_type == "ValueError"
        assert records[1].error == "boom"
        # Every line is strict JSON even with awkward payloads.
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)

    def test_nan_payload_still_encodes(self, tmp_path):
        path = str(tmp_path / "dead.jsonl")
        queue = DeadLetterQueue(path)
        queue.append("cleaning", {"time": float("nan")}, "bad")
        queue.close()
        assert DeadLetterQueue.load(path)[0].payload["time"] == "nan"

    def test_rewrite_keeps_given_records(self, tmp_path):
        path = str(tmp_path / "dead.jsonl")
        queue = DeadLetterQueue(path)
        for index in range(4):
            queue.append("s", {"i": index}, "e")
        queue.close()
        records = DeadLetterQueue.load(path)
        DeadLetterQueue.rewrite(path, records[2:])
        assert [record.payload["i"]
                for record in DeadLetterQueue.load(path)] == [2, 3]

    def test_in_memory_mode_writes_nothing(self, tmp_path):
        queue = DeadLetterQueue(None)
        queue.append("s", {}, "e")
        assert len(queue) == 1
        queue.close()
        assert list(tmp_path.iterdir()) == []

    def test_hook_sees_each_record(self):
        seen = []
        queue = DeadLetterQueue()
        queue.on_record = seen.append
        record = queue.append("s", {"x": 1}, "oops", ingest_time=9.0)
        assert seen == [record] and record.ingest_time == 9.0
