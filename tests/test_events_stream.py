"""Tests for EventStream and merge_streams."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.events.event import Event
from repro.events.stream import EventStream, merge_streams


def _events(*timestamps: float) -> list[Event]:
    return [Event("A", ts) for ts in timestamps]


class TestEventStream:
    def test_assigns_sequence_numbers(self):
        collected = EventStream(_events(1, 2, 3)).collect()
        assert [event.seq for event in collected] == [0, 1, 2]

    def test_preserves_existing_seq(self):
        stream = EventStream([Event("A", 1.0).with_seq(42)])
        assert stream.collect()[0].seq == 42

    def test_rejects_out_of_order(self):
        with pytest.raises(StreamError, match="out of order"):
            EventStream(_events(2, 1)).collect()

    def test_allows_ties(self):
        assert len(EventStream(_events(1, 1, 1)).collect()) == 3

    def test_validation_can_be_disabled(self):
        stream = EventStream(_events(2, 1), validate=False)
        assert len(stream.collect()) == 2

    def test_rejects_non_event(self):
        with pytest.raises(StreamError, match="non-Event"):
            EventStream(["nope"]).collect()  # type: ignore[list-item]

    def test_start_seq(self):
        collected = EventStream(_events(1), start_seq=10).collect()
        assert collected[0].seq == 10

    def test_filter_preserves_seq(self):
        stream = EventStream(
            [Event("A", 1), Event("B", 2), Event("A", 3)])
        kept = stream.filter(lambda event: event.type == "A").collect()
        assert [event.seq for event in kept] == [0, 2]

    def test_mixed_preassigned_seqs_stay_monotonic(self):
        # A pre-sequenced event must not cause later auto-assigned
        # numbers to collide with or regress past it.
        events = [Event("A", 1), Event("A", 2).with_seq(5),
                  Event("A", 3), Event("A", 4)]
        collected = EventStream(events).collect()
        seqs = [event.seq for event in collected]
        assert seqs == [0, 5, 6, 7]
        assert len(set(seqs)) == len(seqs)
        assert seqs == sorted(seqs)

    def test_preassigned_seq_below_cursor_does_not_rewind(self):
        events = [Event("A", 1), Event("A", 2),
                  Event("A", 3).with_seq(0), Event("A", 4)]
        seqs = [event.seq for event in EventStream(events).collect()]
        # The pre-assigned number passes through untouched, and the
        # cursor never hands out a duplicate afterwards.
        assert seqs == [0, 1, 0, 2]
        assert seqs[3] not in seqs[1:3]

    def test_of_types(self):
        stream = EventStream(
            [Event("A", 1), Event("B", 2), Event("C", 3)])
        assert [event.type for event in
                stream.of_types("A", "C").collect()] == ["A", "C"]


class TestMergeStreams:
    def test_merges_in_time_order(self):
        left = _events(1, 4, 7)
        right = _events(2, 3, 8)
        merged = merge_streams(left, right).collect()
        assert [event.timestamp for event in merged] == \
            [1, 2, 3, 4, 7, 8]

    def test_ties_broken_by_source_order(self):
        left = [Event("L", 5)]
        right = [Event("R", 5)]
        merged = merge_streams(left, right).collect()
        assert [event.type for event in merged] == ["L", "R"]

    def test_merge_empty(self):
        assert merge_streams([], []).collect() == []

    def test_merge_no_sources(self):
        assert merge_streams().collect() == []

    def test_merge_one_empty_source_between_full_ones(self):
        merged = merge_streams(_events(1, 3), [], _events(2)).collect()
        assert [event.timestamp for event in merged] == [1, 2, 3]

    def test_three_way_tie_keeps_source_order(self):
        merged = merge_streams([Event("A", 5)], [Event("B", 5)],
                               [Event("C", 5)]).collect()
        assert [event.type for event in merged] == ["A", "B", "C"]

    def test_tie_at_differing_positions_keeps_source_order(self):
        # Regression: the tie-break index used to be captured late by a
        # generator expression, so every source saw the *final* index and
        # ties fell back to per-source position.  Here the tied event sits
        # at position 1 in the first source but position 0 in the later
        # ones, which the buggy key ordered ["B", "C", "A"].
        first = [Event("A0", 1), Event("A", 5)]
        second = [Event("B", 5)]
        third = [Event("C", 5)]
        merged = merge_streams(first, second, third).collect()
        assert [event.type for event in merged] == ["A0", "A", "B", "C"]

    def test_tie_prefix_lengths_vary_across_three_sources(self):
        # Same regression, sources staggered the other way: the earliest
        # argument must win the tie regardless of how many events each
        # source produced beforehand.
        merged = merge_streams(
            [Event("A1", 1), Event("A2", 2), Event("A", 9)],
            [Event("B1", 3), Event("B", 9)],
            [Event("C", 9)],
        ).collect()
        tied = [event.type for event in merged if event.timestamp == 9]
        assert tied == ["A", "B", "C"]

    def test_merged_stream_is_sequenced(self):
        merged = merge_streams(_events(1, 4), _events(2, 3)).collect()
        assert [event.seq for event in merged] == [0, 1, 2, 3]

    def test_merge_of_unsorted_source_raises_stream_error(self):
        # heapq.merge assumes sorted inputs; the EventStream wrapper is
        # what actually catches a misbehaving source.
        with pytest.raises(StreamError, match="out of order"):
            merge_streams(_events(5, 1), _events(2)).collect()

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=20),
           st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=20))
    def test_merge_property(self, left_ts, right_ts):
        left = _events(*sorted(left_ts))
        right = _events(*sorted(right_ts))
        merged = merge_streams(left, right).collect()
        timestamps = [event.timestamp for event in merged]
        assert timestamps == sorted(left_ts + right_ts)
        assert len(merged) == len(left_ts) + len(right_ts)
