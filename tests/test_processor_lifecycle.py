"""Online query lifecycle: deregistration must release every resource a
query held — runtime state, dispatch entries, metrics, and the
persistence manager's replay horizon."""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.db.eventdb import EventDatabase
from repro.errors import SaseError
from repro.events.event import Event
from repro.persist import FsyncPolicy, PersistenceConfig, \
    PersistenceManager
from repro.system.processor import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query


PAIR = "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 10\n" \
       "RETURN x.id, y.v"


def _events(count: int, types=("A", "B")) -> list[Event]:
    return [Event(types[index % len(types)], float(index),
                  {"id": index % 4, "v": index})
            for index in range(count)]


class TestStateRelease:
    def test_deregister_releases_runtime_state(self, abc_registry):
        processor = ComplexEventProcessor(abc_registry)
        registered = processor.register("pair", PAIR)
        for event in _events(50):
            processor.feed(event)
        assert registered.runtime.partitions > 0
        runtime_ref = weakref.ref(registered.runtime)
        processor.deregister("pair")
        del registered
        gc.collect()
        assert runtime_ref() is None, \
            "the runtime (stacks, partitions, windows) must be freed"

    def test_deregister_releases_shared_member_state(self, abc_registry):
        from repro.core.shared import SharedPlanConfig
        processor = ComplexEventProcessor(
            abc_registry, shared_plans=SharedPlanConfig())
        processor.register("one", PAIR)
        processor.register("two", PAIR)
        for event in _events(50):
            processor.feed(event)
        group_ref = weakref.ref(processor.query("one").shared_group)
        processor.deregister("one")
        processor.deregister("two")
        gc.collect()
        assert group_ref() is None, \
            "an empty shared group (and its pipeline) must be freed"

    def test_deregister_clears_metrics_and_dispatch(self, abc_registry):
        processor = ComplexEventProcessor(abc_registry)
        processor.register("pair", PAIR)
        for event in _events(10):
            processor.feed(event)
        assert "pair" in processor.metrics.queries
        processor.deregister("pair")
        assert "pair" not in processor.metrics.queries
        # The dispatch index must not route to the withdrawn query.
        assert processor.feed(Event("A", 99.0, {"id": 1, "v": 1})) == []

    def test_deregister_unknown_fails(self, abc_registry):
        processor = ComplexEventProcessor(abc_registry)
        with pytest.raises(SaseError, match="no query"):
            processor.deregister("ghost")

    def test_register_mid_stream_sees_only_later_events(
            self, abc_registry):
        processor = ComplexEventProcessor(abc_registry)
        processor.feed(Event("A", 1.0, {"id": 1, "v": 1}))
        processor.register("pair", PAIR)
        results = processor.feed(Event("B", 2.0, {"id": 1, "v": 2}))
        assert results == []  # the A predates registration

    def test_lifecycle_listeners_fire_and_detach(self, abc_registry):
        processor = ComplexEventProcessor(abc_registry)
        seen: list[tuple[str, str]] = []
        listener = lambda action, registered: \
            seen.append((action, registered.name))  # noqa: E731
        processor.add_lifecycle_listener(listener)
        processor.register("pair", PAIR)
        processor.deregister("pair")
        assert seen == [("register", "pair"), ("deregister", "pair")]
        processor.remove_lifecycle_listener(listener)
        processor.register("pair", PAIR)
        assert len(seen) == 2


class _Host:
    def __init__(self, registry):
        self.processor = ComplexEventProcessor(registry)
        self.event_db = EventDatabase()

    def adopt_event_db(self, event_db):
        self.event_db = event_db

    def scratch_event_db(self):
        return EventDatabase()


class TestPersistenceHorizon:
    """Withdrawing a query must let the persistence manager shrink its
    replay horizon — otherwise a withdrawn long-window query pins WAL
    segments (and replay work) forever."""

    def _manager(self, stream, data_dir):
        host = _Host(stream.registry)
        manager = PersistenceManager(PersistenceConfig(
            data_dir=str(data_dir), fsync=FsyncPolicy("never"),
            checkpoint_every=50, segment_max_bytes=2048,
            group_items=8), host)
        return host, manager

    def test_withdrawal_shrinks_replay_horizon(self, tmp_path):
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=400, n_types=2, id_domain=16, mean_gap=1.0,
            seed=23))
        host, manager = self._manager(stream, tmp_path / "d")
        host.processor.register(
            "short", seq_query(2, window=20.0, partitioned=True))
        host.processor.register(
            "long", seq_query(2, window=100000.0, partitioned=True))
        manager.recover()
        for event in stream.events[:200]:
            host.processor.feed(event)
        assert manager._max_window == 100000.0
        host.processor.deregister("long")
        assert manager._max_window == 20.0
        for event in stream.events[200:]:
            host.processor.feed(event)
        host.processor.flush()
        manager.finalize()
        # With only the 20s window live, old WAL segments must be GC'd
        # instead of being pinned by the withdrawn 100000s query.
        assert manager.gauges()["wal_oldest_lsn"] > 0

    def test_withdrawal_pins_horizon_when_newly_bounded(self, tmp_path):
        """Unbounded (no WITHIN) -> bounded: the frontier re-pins at the
        current WAL end instead of staying empty (which would mean
        'replay nothing' and lose in-window state on the next crash)."""
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=100, n_types=2, id_domain=8, mean_gap=1.0,
            seed=29))
        host, manager = self._manager(stream, tmp_path / "d")
        host.processor.register(
            "short", seq_query(2, window=20.0, partitioned=True))
        unbounded = seq_query(2, window=20.0, partitioned=True) \
            .replace("WITHIN 20 seconds\n", "")
        host.processor.register("unbounded", unbounded)
        manager.recover()
        assert manager._max_window is None
        for event in stream.events[:50]:
            host.processor.feed(event)
        host.processor.deregister("unbounded")
        assert manager._max_window == 20.0
        assert manager._frontier, \
            "horizon must re-pin at the WAL end when it becomes bounded"
        for event in stream.events[50:]:
            host.processor.feed(event)
        host.processor.flush()
        manager.finalize()

    def test_registration_extends_replay_horizon(self, tmp_path):
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=100, n_types=2, id_domain=8, mean_gap=1.0,
            seed=31))
        host, manager = self._manager(stream, tmp_path / "d")
        host.processor.register(
            "short", seq_query(2, window=20.0, partitioned=True))
        manager.recover()
        for event in stream.events[:50]:
            host.processor.feed(event)
        host.processor.register(
            "long", seq_query(2, window=500.0, partitioned=True))
        assert manager._max_window == 500.0
        for event in stream.events[50:]:
            host.processor.feed(event)
        host.processor.flush()
        manager.finalize()
