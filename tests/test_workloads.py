"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.db import EventDatabase
from repro.errors import SimulationError
from repro.events.stream import EventStream
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze
from repro.workloads import (
    RetailConfig,
    RetailScenario,
    SyntheticConfig,
    SyntheticStream,
    WarehouseConfig,
    WarehouseHistory,
)
from repro.workloads.retail import (
    MISPLACED_INVENTORY_QUERY,
    SHELF_CHANGE_RULE,
    SHOPLIFTING_QUERY,
)
from repro.workloads.synthetic import seq_query, synthetic_registry


class TestRetailScenario:
    def test_ground_truth_sizes(self):
        config = RetailConfig(n_products=20, n_shoppers=5,
                              n_shoplifters=2, n_misplacements=3)
        scenario = RetailScenario.generate(config)
        assert len(scenario.truth.purchased) == 5
        assert len(scenario.truth.shoplifted) == 2
        assert len(scenario.truth.misplaced) == 3
        # behaviours use distinct items
        tags = (scenario.truth.purchased_tags()
                | scenario.truth.shoplifted_tags()
                | scenario.truth.misplaced_tags())
        assert len(tags) == 10

    def test_every_product_registered(self):
        scenario = RetailScenario.generate(RetailConfig(n_products=15))
        assert len(scenario.ons) == 15

    def test_misplacement_targets_wrong_shelf(self):
        scenario = RetailScenario.generate(
            RetailConfig(n_misplacements=3))
        for incident in scenario.truth.misplaced:
            record = scenario.ons.lookup(incident.tag_id)
            assert record is not None
            assert incident.to_area != record.home_area_id

    def test_deterministic_for_seed(self):
        first = RetailScenario.generate(RetailConfig(seed=9))
        second = RetailScenario.generate(RetailConfig(seed=9))
        assert first.truth == second.truth

    def test_not_enough_products_rejected(self):
        with pytest.raises(SimulationError):
            RetailConfig(n_products=3, n_shoppers=5)

    def test_queries_parse(self):
        for text in (SHOPLIFTING_QUERY, MISPLACED_INVENTORY_QUERY,
                     SHELF_CHANGE_RULE):
            parse_query(text)

    def test_ticks_produce_readings(self):
        scenario = RetailScenario.generate(
            RetailConfig(n_products=10, n_shoppers=1, n_shoplifters=1,
                         n_misplacements=0))
        total = sum(len(readings) for _, readings in scenario.ticks())
        assert total > 0


class TestWarehouseHistory:
    def test_truth_consistency(self):
        history = WarehouseHistory.generate(WarehouseConfig(
            n_boxes=2, items_per_box=3, n_box_changes=1))
        assert len(history.item_tags) == 6
        assert len(history.box_tags) == 2
        # every item ends on its home shelf, out of any box
        for tag in history.item_tags:
            record = history.ons.lookup(tag)
            assert record is not None
            assert history.truth.final_location[tag] == \
                record.home_area_id
            assert history.truth.final_parent[tag] is None

    def test_populate_matches_truth(self):
        history = WarehouseHistory.generate(WarehouseConfig(
            n_boxes=2, items_per_box=2, n_box_changes=2))
        edb = EventDatabase()
        history.populate(edb)
        for tag in history.item_tags:
            location = edb.current_location(tag)
            assert location is not None
            assert location["area_id"] == \
                history.truth.final_location[tag]
            assert edb.current_containment(tag) is None
            assert len(edb.containment_history(tag)) == \
                len(history.truth.containment_history[tag])

    def test_events_are_time_ordered(self):
        history = WarehouseHistory.generate(WarehouseConfig(n_boxes=2))
        events = EventStream(history.events()).collect()
        assert events  # ordering validated by EventStream


class TestSyntheticStream:
    def test_generation_shape(self):
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=500, n_types=3, id_domain=10, seed=4))
        assert len(stream) == 500
        types = {event.type for event in stream.events}
        assert types <= {"A", "B", "C"}
        assert all(0 <= event["id"] < 10 for event in stream.events)
        assert stream.duration > 0

    def test_time_ordered(self):
        stream = SyntheticStream.generate(SyntheticConfig(n_events=200))
        EventStream(stream.events).collect()  # raises if out of order

    def test_deterministic(self):
        first = SyntheticStream.generate(SyntheticConfig(seed=5,
                                                         n_events=50))
        second = SyntheticStream.generate(SyntheticConfig(seed=5,
                                                          n_events=50))
        assert first.events == second.events

    def test_type_weights(self):
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=300, n_types=2, type_weights=(1.0, 0.0), seed=1))
        assert {event.type for event in stream.events} == {"A"}

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            SyntheticConfig(n_events=0)
        with pytest.raises(SimulationError):
            SyntheticConfig(n_types=2, type_weights=(1.0,))

    def test_seq_query_builder(self):
        registry = synthetic_registry(4)
        text = seq_query(3, window=50, partitioned=True, v_filter=5,
                         negation_at=1)
        analyzed = analyze(parse_query(text), registry)
        assert analyzed.window == 50
        assert analyzed.has_negation
        assert analyzed.partition is not None

    def test_seq_query_unpartitioned(self):
        registry = synthetic_registry(2)
        analyzed = analyze(
            parse_query(seq_query(2, window=10, partitioned=False)),
            registry)
        assert analyzed.partition is None
