"""Shared test utilities, including a brute-force semantic oracle.

The oracle enumerates every combination of events explicitly and applies
the language semantics directly from the analyzed query — a third,
deliberately naive implementation (besides the plan engine and the window
join baseline) used for differential testing.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterable

from repro.core.expressions import EvalContext, compile_predicate
from repro.events.event import Event
from repro.lang.semantics import AnalyzedQuery


def make_events(spec: Iterable[tuple[str, float, dict[str, Any]]]) \
        -> list[Event]:
    """Build a sequenced event list from (type, ts, attrs) tuples."""
    return [Event(name, ts, attrs).with_seq(index)
            for index, (name, ts, attrs) in enumerate(spec)]


def oracle_matches(analyzed: AnalyzedQuery, events: list[Event],
                   functions: Any = None,
                   system: Any = None) -> list[dict[str, Event]]:
    """All binding dicts satisfying the query, by exhaustive enumeration.

    Supports every feature except Kleene closure (tested separately).
    O(n^k): keep the event list small.
    """
    if analyzed.has_kleene:
        raise NotImplementedError("oracle does not cover Kleene patterns")
    positives = analyzed.positives
    window = analyzed.window

    positive_predicates = []
    for infos in analyzed.component_filters.values():
        positive_predicates.extend(compile_predicate(info.expr)
                                   for info in infos)
    positive_predicates.extend(compile_predicate(info.expr)
                               for info in analyzed.selection_predicates)
    negations = []
    for component, prev_index, next_index in analyzed.negation_layout():
        negations.append((
            component,
            prev_index,
            next_index,
            [compile_predicate(info.expr) for info in
             analyzed.negation_predicates[component.variable]],
        ))

    candidates = [[event for event in events
                   if component.accepts_type(event.type)]
                  for component in positives]
    results: list[dict[str, Event]] = []
    for combo in itertools.product(*candidates):
        if any(later.timestamp <= earlier.timestamp
               for earlier, later in zip(combo, combo[1:])):
            continue
        if window is not None and \
                combo[-1].timestamp - combo[0].timestamp > window:
            continue
        bindings = {component.variable: event
                    for component, event in zip(positives, combo)}
        context = EvalContext(bindings, functions, system)
        if not all(predicate(context)
                   for predicate in positive_predicates):
            continue
        if _oracle_negation_violated(negations, bindings, combo, window,
                                     events, functions, system):
            continue
        results.append(bindings)
    return results


def _oracle_negation_violated(negations, bindings, combo, window, events,
                              functions, system) -> bool:
    n = len(combo)
    for component, prev_index, next_index, predicates in negations:
        if prev_index < 0:
            low = combo[-1].timestamp - window if window is not None \
                else -math.inf
            low_ok = lambda ts, low=low: ts >= low
            high_ok = lambda ts, high=combo[0].timestamp: ts < high
        elif next_index >= n:
            high = combo[0].timestamp + window if window is not None \
                else math.inf
            low_ok = lambda ts, low=combo[-1].timestamp: ts > low
            high_ok = lambda ts, high=high: ts <= high
        else:
            low_ok = lambda ts, low=combo[prev_index].timestamp: ts > low
            high_ok = lambda ts, high=combo[next_index].timestamp: ts < high
        for event in events:
            if not component.accepts_type(event.type):
                continue
            if not (low_ok(event.timestamp) and high_ok(event.timestamp)):
                continue
            context = EvalContext(
                bindings, functions, system).rebind(component.variable,
                                                    event)
            if all(predicate(context) for predicate in predicates):
                return True
    return False


def result_keys(composites) -> list[tuple]:
    """Order-independent comparison keys for composite events."""
    keys = []
    for composite in composites:
        attrs = tuple(sorted((key, value) for key, value
                             in composite.attributes.items()))
        keys.append((attrs, composite.start, composite.end))
    return sorted(keys)


def binding_keys(matches: Iterable[dict[str, Event]]) -> list[tuple]:
    """Order-independent comparison keys for oracle binding dicts."""
    keys = []
    for bindings in matches:
        keys.append(tuple(sorted(
            (variable, event.type, event.timestamp, event.seq)
            for variable, event in bindings.items())))
    return sorted(keys)


def composite_binding_keys(composites) -> list[tuple]:
    """Comparison keys from composite events' provenance bindings
    (positive, non-tuple bindings only)."""
    keys = []
    for composite in composites:
        keys.append(tuple(sorted(
            (variable, event.type, event.timestamp, event.seq)
            for variable, event in composite.bindings.items()
            if isinstance(event, Event))))
    return sorted(keys)
