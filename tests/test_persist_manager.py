"""In-process tests for the persistence manager.

A "crash" here is simulated by abandoning a system without calling
``finalize()``: the WAL's ``never`` policy still flushes every record to
the OS page cache, so a second manager opening the same directory sees
exactly what a killed process would have left behind.  The subprocess
SIGKILL matrix lives in ``test_persist_crash.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.db.eventdb import EventDatabase
from repro.errors import PersistenceError
from repro.persist import OUT_LOG, FsyncPolicy, PersistenceConfig, \
    PersistenceManager
from repro.sharding import ShardingConfig
from repro.system import SaseSystem
from repro.system.processor import ComplexEventProcessor
from repro.workloads import (
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

READING_TYPES = ("SHELF_READING", "COUNTER_READING", "EXIT_READING")


def fingerprint(results) -> list[tuple]:
    return [(name, result.type, result.start, result.end)
            for name, result in results]


def out_log_bytes(data_dir: str) -> bytes:
    with open(os.path.join(data_dir, OUT_LOG), "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def scenario():
    return RetailScenario.generate(RetailConfig(
        n_products=8, n_shoppers=2, n_shoplifters=1, n_misplacements=1,
        seed=11))


@pytest.fixture(scope="module")
def ticks(scenario):
    return list(scenario.ticks())


def build_system(scenario, data_dir=None, checkpoint_every=64,
                 sharding=None) -> SaseSystem:
    persistence = None
    if data_dir is not None:
        # A small commit group so an abandoned run still leaves a
        # sealed WAL tail past its last checkpoint to replay.
        persistence = PersistenceConfig(
            data_dir=str(data_dir), fsync=FsyncPolicy("never"),
            checkpoint_every=checkpoint_every, group_items=8)
    system = SaseSystem(scenario.layout, scenario.ons,
                        sharding=sharding, persistence=persistence)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    for event_type in READING_TYPES:
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    return system


@pytest.fixture(scope="module")
def oracle(scenario, ticks):
    """The uncrashed, unpersisted run every recovery must reproduce."""
    system = build_system(scenario)
    results = system.run_simulation(ticks)
    return fingerprint(results), system.event_db.to_snapshot()


class TestRecoveryEquivalence:
    def test_persisted_run_matches_oracle(self, scenario, ticks, oracle,
                                          tmp_path):
        system = build_system(scenario, tmp_path)
        assert system.recover().durable_matches == 0
        results = system.run_simulation(ticks)
        assert fingerprint(results) == oracle[0]
        assert system.event_db.to_snapshot() == oracle[1]

    def test_completed_run_resumes_as_noop(self, scenario, ticks, oracle,
                                           tmp_path):
        first = build_system(scenario, tmp_path)
        first.recover()
        first_results = fingerprint(first.run_simulation(ticks))
        sealed = out_log_bytes(str(tmp_path))

        second = build_system(scenario, tmp_path)
        report = second.recover()
        assert report.checkpoint_lsn is not None
        assert report.durable_matches == len(first_results)
        assert fingerprint(report.suppressed_matches) == first_results
        resumed = second.run_simulation(ticks)
        # Every event is skipped, every match was already durable.
        assert resumed == []
        assert second.persistence.skipped_events > 0
        assert out_log_bytes(str(tmp_path)) == sealed

    def test_crash_resume_matches_oracle(self, scenario, ticks, oracle,
                                         tmp_path):
        crashed = build_system(scenario, tmp_path)
        crashed.recover()
        for now, readings in ticks[:len(ticks) // 2]:
            crashed.process_tick(readings, now)
        # Abandon without finalize: the simulated crash.

        recovered = build_system(scenario, tmp_path)
        report = recovered.recover()
        assert report.checkpoint_lsn is not None
        assert report.replayed_events > 0
        results = fingerprint(report.recovered_matches)
        results.extend(fingerprint(recovered.run_simulation(ticks)))
        assert results == oracle[0]
        assert recovered.event_db.to_snapshot() == oracle[1]

    def test_crash_before_first_checkpoint(self, scenario, ticks, oracle,
                                           tmp_path):
        crashed = build_system(scenario, tmp_path, checkpoint_every=0)
        crashed.recover()
        for now, readings in ticks[:len(ticks) // 3]:
            crashed.process_tick(readings, now)

        recovered = build_system(scenario, tmp_path)
        report = recovered.recover()
        assert report.checkpoint_lsn is None  # pure WAL replay
        results = fingerprint(report.recovered_matches)
        results.extend(fingerprint(recovered.run_simulation(ticks)))
        assert results == oracle[0]

    def test_sharded_inline_crash_resume(self, scenario, ticks, oracle,
                                         tmp_path):
        sharding = ShardingConfig(shards=2, backend="inline")
        crashed = build_system(scenario, tmp_path, sharding=sharding)
        crashed.recover()
        for now, readings in ticks[:len(ticks) // 2]:
            crashed.process_tick(readings, now)

        recovered = build_system(scenario, tmp_path,
                                 sharding=ShardingConfig(
                                     shards=2, backend="inline"))
        report = recovered.recover()
        results = fingerprint(report.recovered_matches)
        results.extend(fingerprint(recovered.run_simulation(ticks)))
        assert results == oracle[0]


class TestManagerGuards:
    def test_recover_runs_once(self, scenario, tmp_path):
        system = build_system(scenario, tmp_path)
        system.recover()
        with pytest.raises(PersistenceError, match="once"):
            system.persistence.recover()

    def test_log_event_requires_recover(self, scenario, ticks, tmp_path):
        system = build_system(scenario, tmp_path)
        now, readings = ticks[0]
        with pytest.raises(PersistenceError, match="recover"):
            system.process_tick(readings, now)


class _Host:
    """The minimal duck-typed host the manager needs (no SaseSystem)."""

    def __init__(self, registry):
        self.processor = ComplexEventProcessor(registry)
        self.event_db = EventDatabase()

    def adopt_event_db(self, event_db):
        self.event_db = event_db

    def scratch_event_db(self):
        return EventDatabase()


def synthetic_run(stream, data_dir, *, upto=None, resume=False,
                  checkpoint_every=50, segment_max_bytes=2048):
    """Feed a synthetic keyed SEQ workload under persistence; returns
    the manager (its host keeps the processor alive)."""
    host = _Host(stream.registry)
    host.processor.register("pair",
                            seq_query(2, window=30.0, partitioned=True))
    manager = PersistenceManager(PersistenceConfig(
        data_dir=str(data_dir), fsync=FsyncPolicy("never"),
        checkpoint_every=checkpoint_every,
        segment_max_bytes=segment_max_bytes, group_items=8), host)
    manager.recover()   # installs the feed-fused WAL/checkpoint hooks
    for event in stream.events[:upto]:
        if manager.should_skip(event):
            continue
        host.processor.feed(event)
    if upto is None:
        host.processor.flush()
        manager.finalize()
    return manager


class TestReplayHorizonGc:
    def test_wal_segments_collected_within_window(self, tmp_path):
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=600, n_types=2, id_domain=16, mean_gap=1.0,
            seed=15))
        manager = synthetic_run(stream, tmp_path / "a")
        gauges = manager.gauges()
        # The 30s window covers a fraction of the ~600s stream: old
        # segments must have been GC'd, not the whole history kept.
        assert gauges["wal_oldest_lsn"] > 0
        assert gauges["wal_segments"] < 600 * 40 // 2048

    def test_continuation_identical_after_gc(self, tmp_path):
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=600, n_types=2, id_domain=16, mean_gap=1.0,
            seed=15))
        synthetic_run(stream, tmp_path / "oracle")
        synthetic_run(stream, tmp_path / "crash", upto=400)
        resumed = synthetic_run(stream, tmp_path / "crash")
        # The abandoned run loses its open group-commit window, so the
        # WAL covers at most 400 events; the resume skips exactly what
        # is on disk and re-feeds the rest.  Byte-equality of the out
        # logs below is the real exactness check.
        skipped = resumed.gauges()["skipped_events"]
        assert 0 < skipped <= 400
        assert out_log_bytes(str(tmp_path / "crash")) == \
            out_log_bytes(str(tmp_path / "oracle"))
