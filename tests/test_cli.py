"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def events_file(tmp_path):
    path = tmp_path / "events.jsonl"
    records = [
        {"type": "A", "timestamp": 1, "attributes": {"id": 1, "v": 2}},
        {"type": "B", "timestamp": 2, "attributes": {"id": 1, "v": 9}},
        {"type": "B", "timestamp": 3, "attributes": {"id": 2, "v": 1}},
    ]
    path.write_text("\n".join(json.dumps(record) for record in records))
    return str(path)


class TestExplain:
    def test_explain_retail_query(self):
        code, text = run_cli(
            "explain",
            "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
            "WHERE x.TagId = z.TagId WITHIN 1 hour RETURN x.TagId")
        assert code == 0
        assert "PAIS" in text and "pushed down" in text

    def test_explain_naive(self):
        code, text = run_cli(
            "explain", "--naive",
            "EVENT SEQ(SHELF_READING x, EXIT_READING z) "
            "WHERE x.TagId = z.TagId WITHIN 1 hour RETURN x.TagId")
        assert code == 0
        assert "PAIS" not in text

    def test_explain_query_from_file(self, tmp_path):
        query_file = tmp_path / "q.sase"
        query_file.write_text("EVENT SHELF_READING x RETURN x.TagId")
        code, text = run_cli("explain", f"@{query_file}")
        assert code == 0 and "SSC" in text

    def test_parse_error_reported(self):
        code, text = run_cli("explain", "EVENT SEQ(")
        assert code == 2
        assert "error:" in text

    def test_custom_schemas(self, tmp_path):
        schema_file = tmp_path / "schemas.json"
        schema_file.write_text(json.dumps(
            {"TICK": {"sym": "string", "price": "float"}}))
        code, text = run_cli(
            "explain", "--schemas", str(schema_file),
            "EVENT TICK t WHERE t.price > 10 RETURN t.sym")
        assert code == 0 and "SSC" in text

    def test_bad_schema_type_word(self, tmp_path):
        schema_file = tmp_path / "schemas.json"
        schema_file.write_text(json.dumps({"TICK": {"x": "decimal"}}))
        code, text = run_cli("explain", "--schemas", str(schema_file),
                             "EVENT TICK t")
        assert code == 2 and "unknown attribute type" in text


class TestRun:
    def test_run_with_inferred_schemas(self, events_file):
        code, text = run_cli(
            "run", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
                   "RETURN x.id, y.v", "--events", events_file)
        assert code == 0
        assert "x_id=1" in text and "y_v=9" in text
        assert "1 result(s) over 3 event(s)" in text

    def test_run_naive_same_results(self, events_file):
        _, optimized = run_cli(
            "run", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
                   "RETURN x.id", "--events", events_file)
        _, naive = run_cli(
            "run", "--naive",
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", "--events", events_file)
        assert optimized == naive

    def test_run_limit(self, events_file):
        code, text = run_cli(
            "run", "EVENT B y RETURN y.id", "--events", events_file,
            "--limit", "1")
        assert code == 0
        assert text.count("y_id=") == 1
        assert "2 result(s)" in text

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "A"}')
        code, text = run_cli("run", "EVENT A x", "--events", str(path))
        assert code == 2 and "timestamp" in text

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope")
        code, text = run_cli("run", "EVENT A x", "--events", str(path))
        assert code == 2 and "invalid JSON" in text

    def test_missing_file_reported(self):
        code, text = run_cli("run", "EVENT A x", "--events",
                             "/no/such/file.jsonl")
        assert code == 1 and "error:" in text


class TestCsvEvents:
    @pytest.fixture
    def csv_file(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text(
            "type,timestamp,id,v,hot\n"
            "A,1,1,2.5,true\n"
            "B,2,1,9,false\n"
            "B,3,2,,\n")
        return str(path)

    def test_run_over_csv(self, csv_file):
        code, text = run_cli(
            "run", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
                   "RETURN x.id, x.hot", "--events", csv_file)
        assert code == 0
        assert "x_id=1" in text and "x_hot=True" in text
        assert "1 result(s)" in text

    def test_csv_type_inference(self, csv_file):
        # v is float on row 1 (2.5) and int on row 2 (9): inferred FLOAT;
        # the row with an empty v cell is reported as skipped
        code, text = run_cli(
            "run", "EVENT B y WHERE y.v > 1 RETURN y.v",
            "--events", csv_file)
        assert code == 0 and "y_v=9" in text
        assert "skipped 1 event(s)" in text

    def test_csv_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("kind,when\nA,1\n")
        code, text = run_cli("run", "EVENT A x", "--events", str(path))
        assert code == 2 and "'type' and 'timestamp'" in text

    def test_csv_bad_timestamp(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("type,timestamp\nA,yesterday\n")
        code, text = run_cli("run", "EVENT A x", "--events", str(path))
        assert code == 2 and "bad timestamp" in text


class TestScenarios:
    def test_demo_small(self):
        code, text = run_cli(
            "demo", "--products", "12", "--shoppers", "2",
            "--shoplifters", "1", "--misplacements", "1",
            "--noise", "none", "--seed", "5", "--trace", "1000")
        assert code == 0
        assert "shoplifted:" in text and "Present Queries" in text
        assert "trace for tag 1000" in text

    def test_warehouse_small(self):
        code, text = run_cli("warehouse", "--boxes", "2",
                             "--items-per-box", "2")
        assert code == 0
        assert text.count("recorded moves") == 4

    def test_bench_runs(self):
        code, text = run_cli("bench", "--events", "400", "--window", "10")
        assert code == 0
        assert "optimized" in text and "events/s" in text


class TestShardArgHardening:
    """Usage errors in the shard arguments must exit 2 eagerly — with
    one 'error:' line, before any manifest write, worker spawn, or
    socket connect (PR 5 convention)."""

    DEMO = ("demo", "--products", "12", "--shoppers", "2",
            "--shoplifters", "1", "--misplacements", "1",
            "--noise", "none", "--seed", "5")

    def test_remote_without_workers_exits_2(self):
        code, text = run_cli(*self.DEMO, "--shard-backend", "remote")
        assert code == 2
        assert text.startswith("error:") and "--shard-workers" in text

    @pytest.mark.parametrize("workers", [
        "nonsense", "host:", ":9000", "host:abc", "host:0",
        "host:99999", "a:1,,b:2", " ",
    ])
    def test_malformed_workers_exit_2(self, workers):
        code, text = run_cli(*self.DEMO, "--shard-backend", "remote",
                             "--shard-workers", workers)
        assert code == 2
        assert text.startswith("error:")

    def test_workers_without_remote_backend_exit_2(self):
        code, text = run_cli(*self.DEMO, "--shards", "2",
                             "--shard-backend", "process",
                             "--shard-workers", "127.0.0.1:9000")
        assert code == 2
        assert "only applies to" in text

    def test_worker_count_mismatch_exits_2(self):
        code, text = run_cli(*self.DEMO, "--shards", "3",
                             "--shard-backend", "remote",
                             "--shard-workers",
                             "127.0.0.1:9000,127.0.0.1:9001")
        assert code == 2
        assert "does not match" in text

    def test_unknown_backend_and_transport_exit_2(self):
        # argparse rejects unknown choices with the same exit code 2.
        with pytest.raises(SystemExit) as info:
            run_cli(*self.DEMO, "--shard-backend", "bogus")
        assert info.value.code == 2
        with pytest.raises(SystemExit) as info:
            run_cli(*self.DEMO, "--shards", "2",
                    "--shard-backend", "process",
                    "--shard-transport", "bogus")
        assert info.value.code == 2

    def test_bad_workers_leave_no_manifest(self, tmp_path):
        # Eager: the data directory must stay untouched on a usage
        # error, so a later correct run is not pinned to garbage.
        data_dir = tmp_path / "demo-data"
        code, text = run_cli(*self.DEMO, "--shard-backend", "remote",
                             "--shard-workers", "host:abc",
                             "--data-dir", str(data_dir))
        assert code == 2
        assert not (data_dir / "manifest.json").exists()

    def test_worker_port_out_of_range_exits_2(self):
        code, text = run_cli("worker", "--port", "70000")
        assert code == 2
        assert "out of range" in text

    def test_trace_validates_shard_workers_too(self):
        code, text = run_cli("trace", "--shard-backend", "remote",
                             "--shard-workers", "host:abc")
        assert code == 2
        assert text.startswith("error:")

    def test_remote_without_secret_exits_2(self):
        code, text = run_cli(*self.DEMO, "--shard-backend", "remote",
                             "--shard-workers", "127.0.0.1:9000")
        assert code == 2
        assert text.startswith("error:") and "--shard-secret" in text

    def test_secret_without_remote_backend_exits_2(self):
        code, text = run_cli(*self.DEMO, "--shards", "2",
                             "--shard-backend", "process",
                             "--shard-secret", "s3cret")
        assert code == 2
        assert "only applies to" in text

    @pytest.mark.parametrize("secret", [
        "env:SASE_UNSET_SECRET_VAR", "file:/no/such/secret-file", " ",
    ])
    def test_unresolvable_secret_exits_2_eagerly(self, secret,
                                                 tmp_path):
        # Resolution happens before any manifest write or connect.
        data_dir = tmp_path / "demo-data"
        code, text = run_cli(*self.DEMO, "--shard-backend", "remote",
                             "--shard-workers", "127.0.0.1:9000",
                             "--shard-secret", secret,
                             "--data-dir", str(data_dir))
        assert code == 2
        assert text.startswith("error:") and "--shard-secret" in text
        assert not (data_dir / "manifest.json").exists()

    def test_net_chaos_without_remote_backend_exits_2(self):
        code, text = run_cli(*self.DEMO, "--shards", "2",
                             "--shard-backend", "process",
                             "--chaos", "net.drop_conn@3")
        assert code == 2
        assert "net." in text and "remote" in text

    def test_malformed_net_chaos_clause_exits_2(self):
        code, text = run_cli(*self.DEMO, "--shard-backend", "remote",
                             "--shard-workers", "127.0.0.1:9000",
                             "--shard-secret", "s3cret",
                             "--chaos", "net.delay@-1")
        assert code == 2
        assert text.startswith("error:")

    def test_worker_without_secret_exits_2(self):
        code, text = run_cli("worker", "--port", "9100")
        assert code == 2
        assert text.startswith("error:") and "--shard-secret" in text

    def test_worker_malformed_chaos_exits_2_before_listening(self):
        code, text = run_cli("worker", "--port", "9100",
                             "--shard-secret", "s3cret",
                             "--chaos", "net.bogus_site@1")
        assert code == 2
        assert text.startswith("error:")
