"""Tests for SMURF-style adaptive smoothing."""

from __future__ import annotations

import pytest

from repro.cleaning import AdaptiveSmoothing, CleaningConfig, \
    CleaningPipeline
from repro.cleaning.base import CleanReading
from repro.errors import CleaningError
from repro.ons import ObjectNameService
from repro.rfid import MovementScript, NoiseModel, RfidSimulator, \
    default_retail_layout


def reading(tag: int, time: float, reader: str = "R1") -> CleanReading:
    return CleanReading(tag, reader, time)


class TestWindowAdaptation:
    def test_reliable_tag_gets_minimal_window(self):
        layer = AdaptiveSmoothing(tick=1.0)
        for tick in range(10):
            layer.process([reading(1, float(tick))], now=float(tick))
        assert layer.window_ticks((1, "R1")) == 1

    def test_lossy_tag_gets_longer_window(self):
        layer = AdaptiveSmoothing(tick=1.0, history=8)
        # read every other tick: p ~ 0.5
        for tick in range(10):
            observed = [reading(1, float(tick))] if tick % 2 == 0 else []
            layer.process(observed, now=float(tick))
        lossy_window = layer.window_ticks((1, "R1"))
        assert lossy_window > 1

    def test_window_clamped_to_max(self):
        layer = AdaptiveSmoothing(tick=1.0, max_window_ticks=4)
        layer.process([reading(1, 0.0)], now=0.0)
        for tick in range(1, 4):
            layer.process([], now=float(tick))
        assert layer.window_ticks((1, "R1")) <= 4

    def test_unknown_key_defaults_to_one_tick(self):
        assert AdaptiveSmoothing().window_ticks((9, "R9")) == 1

    def test_gap_within_window_filled(self):
        layer = AdaptiveSmoothing(tick=1.0, history=4)
        # establish a flaky pattern so the window grows
        for tick in range(6):
            observed = [reading(1, float(tick))] if tick % 2 == 0 else []
            out = layer.process(observed, now=float(tick))
            if tick % 2 == 1:
                assert any(r.smoothed for r in out), f"tick {tick}"

    def test_departed_tag_expires(self):
        layer = AdaptiveSmoothing(tick=1.0, max_window_ticks=2)
        layer.process([reading(1, 0.0)], now=0.0)
        for tick in range(1, 6):
            layer.process([], now=float(tick))
        out = layer.process([], now=6.0)
        assert out == []
        assert layer.window_ticks((1, "R1")) == 1  # history gone

    def test_parameter_validation(self):
        with pytest.raises(CleaningError):
            AdaptiveSmoothing(tick=0)
        with pytest.raises(CleaningError):
            AdaptiveSmoothing(confidence=1.5)
        with pytest.raises(CleaningError):
            AdaptiveSmoothing(history=0)

    def test_reset(self):
        layer = AdaptiveSmoothing()
        layer.process([reading(1, 0.0)], now=0.0)
        layer.reset()
        assert layer.window_ticks((1, "R1")) == 1


class TestPipelineIntegration:
    def _run(self, smoothing: str, miss_rate: float) -> tuple[int, int]:
        """Returns (events produced, smoothed readings created)."""
        layout = default_retail_layout()
        ons = ObjectNameService()
        for tag in (1, 2, 3):
            ons.register_product(tag, f"p{tag}", home_area_id=1)
        simulator = RfidSimulator(
            layout,
            NoiseModel(miss_rate=miss_rate, duplicate_rate=0,
                       truncate_rate=0, ghost_rate=0), seed=11)
        script = MovementScript()
        for tag in (1, 2, 3):
            script.move(0.0, tag, 1)
        pipeline = CleaningPipeline(layout, ons, CleaningConfig(
            smoothing=smoothing))
        events = list(pipeline.run(
            simulator.run_script(script, until=40.0)))
        created = pipeline.stats.stage("temporal_smoothing").created
        return len(events), created

    def test_adaptive_fills_more_gaps_under_heavy_loss(self):
        _, fixed_created = self._run("fixed", miss_rate=0.4)
        _, adaptive_created = self._run("adaptive", miss_rate=0.4)
        assert adaptive_created > fixed_created

    def test_adaptive_adds_nothing_when_readers_are_perfect(self):
        events, created = self._run("adaptive", miss_rate=0.0)
        assert created == 0
        assert events == 3 * 41  # 3 tags x 41 scan ticks

    def test_none_strategy_disables_smoothing(self):
        _, created = self._run("none", miss_rate=0.4)
        assert created == 0

    def test_unknown_strategy_rejected(self):
        layout = default_retail_layout()
        with pytest.raises(CleaningError, match="unknown smoothing"):
            CleaningPipeline(layout, ObjectNameService(),
                             CleaningConfig(smoothing="magic"))
