"""Tests for database snapshot persistence."""

from __future__ import annotations

import json
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, EventDatabase
from repro.errors import DatabaseError
from repro.events.event import Event


class TestDatabaseSnapshot:
    def _populated(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, "
                         "c FLOAT, d BOOL)")
        database.execute("CREATE INDEX ON t (b)")
        database.execute("INSERT INTO t VALUES (1, 'x', 1.5, TRUE), "
                         "(2, NULL, NULL, FALSE)")
        return database

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        original = self._populated()
        original.dump(path)
        restored = Database.load(path)
        assert restored.query("SELECT * FROM t ORDER BY a") == \
            original.query("SELECT * FROM t ORDER BY a")

    def test_indexes_restored(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        self._populated().dump(path)
        restored = Database.load(path)
        table = restored.table("t")
        assert table.index_for("a") is not None  # primary key
        assert table.index_for("b") is not None  # explicit index

    def test_schema_enforced_after_load(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        self._populated().dump(path)
        restored = Database.load(path)
        with pytest.raises(Exception):
            restored.execute("INSERT INTO t VALUES (1, 'dup', 0.0, TRUE)")

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "tables": {}}))
        with pytest.raises(DatabaseError, match="snapshot"):
            Database.load(str(path))


class TestEventDatabaseSnapshot:
    def test_roundtrip_preserves_state(self, tmp_path):
        path = str(tmp_path / "eventdb.json")
        original = EventDatabase()
        original.register_area(1, "shelf", "shelf A")
        original.register_product(100, "soap", price=1.99)
        original.update_location(100, 1, 5.0)
        original.update_containment(100, 900, 2.0)
        original.archive_event(Event("SHELF_READING", 5.0,
                                     {"TagId": 100, "AreaId": 1}))
        original.save(path)

        restored = EventDatabase.load(path)
        location = restored.current_location(100)
        assert location is not None and location["area_id"] == 1
        assert restored.current_containment(100) == 900
        assert restored.product_info(100)["product_name"] == "soap"

    def test_archive_sequence_continues(self, tmp_path):
        path = str(tmp_path / "eventdb.json")
        original = EventDatabase()
        first = original.archive_event(Event("E", 1.0, {"TagId": 1,
                                                        "AreaId": 1}))
        original.save(path)
        restored = EventDatabase.load(path)
        second = restored.archive_event(Event("E", 2.0, {"TagId": 1,
                                                         "AreaId": 1}))
        assert second == first + 1

    def test_updates_work_after_load(self, tmp_path):
        path = str(tmp_path / "eventdb.json")
        original = EventDatabase()
        original.register_area(1, "shelf", "A")
        original.register_area(2, "shelf", "B")
        original.update_location(7, 1, 1.0)
        original.save(path)
        restored = EventDatabase.load(path)
        restored.update_location(7, 2, 9.0)
        assert len(restored.movement_history(7)) == 2

    def test_rejects_non_eventdb_snapshot(self, tmp_path):
        path = str(tmp_path / "plain.json")
        plain = Database()
        plain.execute("CREATE TABLE t (a INT)")
        plain.dump(path)
        with pytest.raises(DatabaseError, match="missing"):
            EventDatabase.load(path)


# Rows over all four SqlTypes; the primary key stays unique and non-NULL,
# every other column may be NULL.  NaN is excluded (NaN != NaN would make
# equality assertions vacuous); JSON round-trips everything else exactly.
_snapshot_rows = st.lists(
    st.tuples(
        st.text(max_size=8).filter(lambda s: "\x00" not in s),
        st.one_of(st.none(),
                  st.floats(allow_nan=False, allow_infinity=False)),
        st.one_of(st.none(), st.booleans()),
    ),
    max_size=20,
).map(lambda rows: [(index, text if index % 3 else None, number, flag)
                    for index, (text, number, flag) in enumerate(rows)])


class TestSnapshotProperties:
    def _build(self, rows) -> Database:
        database = Database()
        database.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, "
                         "c FLOAT, d BOOL)")
        database.execute("CREATE INDEX ON t (b)")
        for row in rows:
            database.table("t").insert(list(row))
        return database

    @given(_snapshot_rows)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_snapshot(self, tmp_path_factory, rows):
        path = str(tmp_path_factory.mktemp("prop") / "snapshot.json")
        original = self._build(rows)
        original.dump(path)
        restored = Database.load(path)
        assert restored.to_snapshot() == original.to_snapshot()

    @given(_snapshot_rows)
    @settings(max_examples=25, deadline=None)
    def test_indexes_answer_after_roundtrip(self, rows):
        restored = Database.from_snapshot(
            self._build(rows).to_snapshot())
        table = restored.table("t")
        assert table.index_for("a") is not None
        assert table.index_for("b") is not None
        for a, b, c, d in rows:
            got = restored.query(f"SELECT b, c, d FROM t WHERE a = {a}")
            assert got == [{"b": b, "c": c, "d": d}]

    @given(_snapshot_rows)
    @settings(max_examples=25, deadline=None)
    def test_rowids_stay_monotonic_after_reload(self, rows):
        restored = Database.from_snapshot(
            self._build(rows).to_snapshot())
        rowid = restored.table("t").insert([10_000, "new", 0.5, True])
        assert rowid == len(rows)
        assert [stored for stored, _ in restored.table("t").rows()] == \
            list(range(len(rows) + 1))


class TestAtomicDump:
    """A crash or error mid-dump must leave the previous snapshot."""

    def _seed(self, path: str) -> Database:
        database = Database()
        database.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        database.dump(path)
        return database

    def test_exception_leaves_original_and_no_temp(self, tmp_path,
                                                   monkeypatch):
        path = str(tmp_path / "db.json")
        original = self._seed(path)

        def partial_then_fail(snapshot, handle, **kwargs):
            handle.write('{"version": 1, "tab')
            raise RuntimeError("disk full")

        monkeypatch.setattr(json, "dump", partial_then_fail)
        with pytest.raises(RuntimeError):
            original.dump(path)
        monkeypatch.undo()
        assert not os.path.exists(f"{path}.tmp")
        assert Database.load(path).to_snapshot() == \
            original.to_snapshot()

    def test_sigkill_mid_write_leaves_original(self, tmp_path):
        path = str(tmp_path / "db.json")
        original = self._seed(path)
        snapshot = original.to_snapshot()

        pid = os.fork()
        if pid == 0:  # the doomed child: die halfway through the dump
            def partial_then_die(payload, handle, **kwargs):
                handle.write('{"version": 1, "tab')
                handle.flush()
                os.kill(os.getpid(), signal.SIGKILL)

            json.dump = partial_then_die
            try:
                original.dump(path)
            finally:
                os._exit(2)  # pragma: no cover - must not be reached
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == signal.SIGKILL
        # The published snapshot never saw the torn write.
        assert Database.load(path).to_snapshot() == snapshot
