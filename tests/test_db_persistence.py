"""Tests for database snapshot persistence."""

from __future__ import annotations

import json

import pytest

from repro.db import Database, EventDatabase
from repro.errors import DatabaseError
from repro.events.event import Event


class TestDatabaseSnapshot:
    def _populated(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, "
                         "c FLOAT, d BOOL)")
        database.execute("CREATE INDEX ON t (b)")
        database.execute("INSERT INTO t VALUES (1, 'x', 1.5, TRUE), "
                         "(2, NULL, NULL, FALSE)")
        return database

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        original = self._populated()
        original.dump(path)
        restored = Database.load(path)
        assert restored.query("SELECT * FROM t ORDER BY a") == \
            original.query("SELECT * FROM t ORDER BY a")

    def test_indexes_restored(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        self._populated().dump(path)
        restored = Database.load(path)
        table = restored.table("t")
        assert table.index_for("a") is not None  # primary key
        assert table.index_for("b") is not None  # explicit index

    def test_schema_enforced_after_load(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        self._populated().dump(path)
        restored = Database.load(path)
        with pytest.raises(Exception):
            restored.execute("INSERT INTO t VALUES (1, 'dup', 0.0, TRUE)")

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "tables": {}}))
        with pytest.raises(DatabaseError, match="snapshot"):
            Database.load(str(path))


class TestEventDatabaseSnapshot:
    def test_roundtrip_preserves_state(self, tmp_path):
        path = str(tmp_path / "eventdb.json")
        original = EventDatabase()
        original.register_area(1, "shelf", "shelf A")
        original.register_product(100, "soap", price=1.99)
        original.update_location(100, 1, 5.0)
        original.update_containment(100, 900, 2.0)
        original.archive_event(Event("SHELF_READING", 5.0,
                                     {"TagId": 100, "AreaId": 1}))
        original.save(path)

        restored = EventDatabase.load(path)
        location = restored.current_location(100)
        assert location is not None and location["area_id"] == 1
        assert restored.current_containment(100) == 900
        assert restored.product_info(100)["product_name"] == "soap"

    def test_archive_sequence_continues(self, tmp_path):
        path = str(tmp_path / "eventdb.json")
        original = EventDatabase()
        first = original.archive_event(Event("E", 1.0, {"TagId": 1,
                                                        "AreaId": 1}))
        original.save(path)
        restored = EventDatabase.load(path)
        second = restored.archive_event(Event("E", 2.0, {"TagId": 1,
                                                         "AreaId": 1}))
        assert second == first + 1

    def test_updates_work_after_load(self, tmp_path):
        path = str(tmp_path / "eventdb.json")
        original = EventDatabase()
        original.register_area(1, "shelf", "A")
        original.register_area(2, "shelf", "B")
        original.update_location(7, 1, 1.0)
        original.save(path)
        restored = EventDatabase.load(path)
        restored.update_location(7, 2, 9.0)
        assert len(restored.movement_history(7)) == 2

    def test_rejects_non_eventdb_snapshot(self, tmp_path):
        path = str(tmp_path / "plain.json")
        plain = Database()
        plain.execute("CREATE TABLE t (a INT)")
        plain.dump(path)
        with pytest.raises(DatabaseError, match="missing"):
            EventDatabase.load(path)
