"""Tests for the window-join baseline on its own."""

from __future__ import annotations

import pytest

from repro.baselines import WindowJoinEngine
from repro.errors import PlanError
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze

from tests.helpers import make_events


def engine_for(text: str, registry) -> WindowJoinEngine:
    return WindowJoinEngine(analyze(parse_query(text), registry))


class TestWindowJoinEngine:
    def test_basic_join(self, abc_registry):
        engine = engine_for(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", abc_registry)
        results = list(engine.run(make_events([
            ("A", 1, {"id": 1, "v": 0}), ("A", 2, {"id": 2, "v": 0}),
            ("B", 3, {"id": 1, "v": 0})])))
        assert len(results) == 1 and results[0]["x_id"] == 1

    def test_counts_join_attempts(self, abc_registry):
        engine = engine_for(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", abc_registry)
        list(engine.run(make_events([
            ("A", 1, {"id": 1, "v": 0}), ("A", 2, {"id": 2, "v": 0}),
            ("B", 3, {"id": 1, "v": 0})])))
        # the baseline enumerated both (A,B) pairs before filtering
        assert engine.joins_attempted == 2

    def test_window_evicts_buffers(self, abc_registry):
        engine = engine_for(
            "EVENT SEQ(A x, B y) WITHIN 5 RETURN x.id", abc_registry)
        results = list(engine.run(make_events([
            ("A", 0, {"id": 1, "v": 0}), ("B", 100, {"id": 1, "v": 0})])))
        assert results == []

    def test_trailing_negation_flush(self, abc_registry):
        engine = engine_for(
            "EVENT SEQ(A x, !(B y)) WHERE x.id = y.id WITHIN 5 "
            "RETURN x.id", abc_registry)
        results = list(engine.run(make_events([
            ("A", 0, {"id": 1, "v": 0}), ("A", 1, {"id": 2, "v": 0}),
            ("B", 2, {"id": 2, "v": 0})])))
        assert [composite["x_id"] for composite in results] == [1]

    def test_kleene_unsupported(self, abc_registry):
        with pytest.raises(PlanError, match="Kleene"):
            engine_for("EVENT SEQ(A x, B+ y) WITHIN 5", abc_registry)

    def test_event_never_joins_with_itself(self, abc_registry):
        engine = engine_for(
            "EVENT SEQ(A x, A y) WITHIN 10 RETURN x.id", abc_registry)
        results = list(engine.run(make_events([
            ("A", 1, {"id": 1, "v": 0})])))
        assert results == []
