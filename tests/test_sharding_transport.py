"""Unit tests of the shared-memory ring transport.

The ring carries CRC32/length frames in the WAL's record format; these
tests pin the SPSC ring mechanics (wraparound, backpressure, torn-frame
detection), the marshal codec round-trips, the pipe-fallback lane, and
the hybrid spin-then-park waiter — the fault-matrix tests exercise the
same machinery end to end under SIGKILL.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time

import pytest

from repro.events.event import CompositeEvent, Event
from repro.persist.records import frame
from repro.sharding.transport import (
    AdaptiveWaiter,
    CoordinatorChannel,
    Ring,
    RingTorn,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods()
    else "spawn")


class Opaque:
    """Picklable but not marshalable: forces the pipe-fallback lane."""

    def __eq__(self, other):
        return isinstance(other, Opaque)

    def __hash__(self):
        return 1


@pytest.fixture
def ring():
    instance = Ring.create(256)
    yield instance
    instance.close()


@pytest.fixture
def channel():
    instance = CoordinatorChannel(CTX, 1 << 16)
    worker = instance.handles().connect(instance.in_queue,
                                        instance.out_queue)
    yield instance, worker
    worker.close()
    instance.close()


class TestRing:
    def test_write_read_roundtrip(self, ring):
        assert ring.try_write(b"hello")
        assert ring.snapshot() == b"hello"
        ring.consume(5)
        assert ring.snapshot() == b""

    def test_rejects_when_full(self, ring):
        assert ring.try_write(b"x" * 256)
        assert not ring.try_write(b"y")
        ring.consume(1)
        assert ring.try_write(b"y")

    def test_wraparound_preserves_bytes(self, ring):
        # Drive the positions far past the capacity with varied sizes so
        # writes and reads straddle the wrap point many times.
        received = bytearray()
        expected = bytearray()
        for index in range(200):
            payload = bytes([index % 251]) * (7 + index % 90)
            while not ring.try_write(payload):
                data = ring.snapshot()
                received += data
                ring.consume(len(data))
            expected += payload
        received += ring.snapshot()
        assert bytes(received) == bytes(expected)

    def test_attach_sees_creator_writes(self, ring):
        ring.try_write(b"shared")
        other = Ring.attach(ring.name, 256)
        try:
            assert other.snapshot() == b"shared"
            other.consume(6)
            assert ring.snapshot() == b""
        finally:
            other.close()


class TestCodecs:
    def test_batch_request_roundtrip(self):
        event = Event("A", 1.5, {"id": 3, "note": "x"}, 42)
        message = ("batch", 9, [("e", 0, event, (0, 2)),
                                ("w", 1, 7.25, (0,))])
        payload = encode_request(message)
        assert payload is not None
        decoded = decode_request(payload)
        assert decoded[0] == "batch" and decoded[1] == 9
        entry = decoded[2][0]
        assert entry[2] == event and entry[3] == (0, 2)
        assert decoded[2][1] == ("w", 1, 7.25, (0,))

    def test_control_requests_roundtrip(self):
        for message in (("flush", 3), ("stop",)):
            assert decode_request(encode_request(message)) == message

    def test_unmarshalable_request_falls_back(self):
        # An arbitrary object defeats marshal: the codec must decline so
        # the message travels the pipe lane instead of failing.
        event = Event("A", 1.0, {"weird": Opaque()}, 0)
        assert encode_request(
            ("batch", 0, [("e", 0, event, (0,))])) is None

    def test_marshal_native_containers_stay_on_the_ring(self):
        # marshal handles sets/tuples/lists natively — no fallback.
        event = Event("A", 1.0, {"tags": {1, 2}}, 0)
        message = ("batch", 0, [("e", 0, event, (0,))])
        payload = encode_request(message)
        assert payload is not None
        assert decode_request(payload)[2][0][2] == event

    def test_batch_response_roundtrip(self):
        event = Event("A", 1.0, {"id": 1}, 5)
        composite = CompositeEvent("M", {"x_id": 1}, {"x": event},
                                   1.0, 2.0, "matches")
        message = ("batch", 1, 9, [(5, 0, 1, 2.0, 0, composite)],
                   [("q", 4, 1, 0.25, 2.0, [0.001, 0.002])], [])
        decoded = decode_response(encode_response(message))
        assert decoded[:3] == ("batch", 1, 9)
        tag = decoded[3][0]
        assert tag[:5] == (5, 0, 1, 2.0, 0)
        assert tag[5] == composite
        assert tag[5].bindings["x"] == event
        assert tag[5].complete is composite.complete
        assert decoded[4] == message[4]

    def test_incomplete_composite_survives(self):
        composite = CompositeEvent("M", {}, {}, 1.0, 2.0, "s")
        composite.complete = False
        decoded = decode_response(encode_response(
            ("flush", 0, 1, [(0, 2.0, 0, composite)], [], [])))
        assert decoded[3][0][3].complete is False

    def test_nested_containers_roundtrip(self):
        event = Event("A", 1.0, {"path": (1, 2), "tags": ["a", "b"],
                                 "map": {"k": (3,)}}, 1)
        composite = CompositeEvent("M", {"all": [event]}, {}, 1.0, 2.0,
                                   "s")
        decoded = decode_response(encode_response(
            ("flush", 0, 1, [(0, 2.0, 0, composite)], [], [])))
        rebuilt = decoded[3][0][3]
        assert rebuilt.attributes["all"][0] == event
        inner = rebuilt.attributes["all"][0].attributes
        assert inner["path"] == (1, 2) and inner["map"]["k"] == (3,)

    def test_error_response_roundtrip(self):
        message = ("error", 2, ("batch", 7), "Traceback ...")
        assert decode_response(encode_response(message)) == message

    def test_unencodable_response_falls_back(self):
        assert encode_response(
            ("batch", 0, 1, [(0, 0, 1, 1.0, 0, Opaque())], [], [])) \
            is None


class TestChannels:
    def test_request_and_response_roundtrip(self, channel):
        coordinator, worker = channel
        event = Event("A", 1.0, {"id": 1}, 0)
        coordinator.put(("batch", 1, [("e", 0, event, (0,))]), 1.0)
        got = worker.get()
        assert got[0] == "batch" and got[2][0][2] == event
        worker.put(("batch", 0, 1, [], [], []))
        assert coordinator.drain() == [("batch", 0, 1, [], [], [])]

    def test_nonblocking_put_raises_full(self):
        coordinator = CoordinatorChannel(CTX, 1 << 16)
        try:
            big = ("batch", 0,
                   [("e", 0, Event("A", 1.0, {"blob": "x" * 4096}, 0),
                     (0,))])
            with pytest.raises(queue.Full):
                for _ in range(1 << 16):
                    coordinator.put(big, None)
        finally:
            coordinator.close()

    def test_pipe_fallback_preserves_message(self, channel):
        coordinator, worker = channel
        event = Event("A", 1.0, {"weird": Opaque()}, 0)
        message = ("batch", 1, [("e", 0, event, (0,))])
        coordinator.put(message, 1.0)
        got = worker.get()
        assert got[1] == 1
        assert got[2][0][2].attributes == {"weird": Opaque()}

    def test_oversized_payload_falls_back(self):
        from repro.system.metrics import ShardMetrics

        metrics = ShardMetrics(0)
        coordinator = CoordinatorChannel(CTX, 1 << 16, metrics=metrics)
        worker = coordinator.handles().connect(coordinator.in_queue,
                                               coordinator.out_queue)
        try:
            event = Event("A", 1.0, {"blob": "z" * (1 << 17)}, 0)
            message = ("batch", 1, [("e", 0, event, (0,))])
            coordinator.put(message, 1.0)
            assert metrics.pipe_fallbacks == 1
            got = worker.get()
            assert got[2][0][2] == event
        finally:
            worker.close()
            coordinator.close()

    def test_worker_fallback_response(self, channel):
        coordinator, worker = channel
        worker.put(("batch", 0, 1, [(0, 0, 1, 1.0, 0, Opaque())], [],
                    []))
        drained = coordinator.drain(alive=lambda: True)
        assert len(drained) == 1
        assert drained[0][3][0][5] == Opaque()

    def test_requeue_returns_messages_first(self, channel):
        coordinator, worker = channel
        worker.put(("batch", 0, 1, [], [], []))
        coordinator.requeue([("batch", 0, 0, [], [], [])])
        drained = coordinator.drain()
        assert [item[2] for item in drained] == [0, 1]

    def test_torn_frame_raises_ring_torn(self, channel):
        coordinator, worker = channel
        # A worker SIGKILLed mid-write leaves a frame whose header
        # promises more bytes than were published.  Simulate the debris
        # by publishing a truncated frame directly.
        debris = frame(b"\x4dhello")[:-3]
        assert coordinator.out_ring.try_write(debris)
        with pytest.raises(RingTorn):
            for _ in range(64):
                coordinator.drain(alive=lambda: False)

    def test_corrupt_tag_raises_ring_torn(self, channel):
        coordinator, worker = channel
        assert coordinator.out_ring.try_write(frame(b"\xffgarbage"))
        with pytest.raises(RingTorn):
            coordinator.drain(alive=lambda: False)

    def test_intact_frames_before_tear_still_delivered(self, channel):
        coordinator, worker = channel
        worker.put(("batch", 0, 1, [], [], []))
        assert coordinator.out_ring.try_write(frame(b"\x4dxx")[:-1])
        survivors = None
        with pytest.raises(RingTorn):
            for _ in range(64):
                drained = coordinator.drain(alive=lambda: False)
                if drained:
                    survivors = drained
        assert survivors == [("batch", 0, 1, [], [], [])]

    def test_worker_get_blocks_until_message(self, channel):
        coordinator, worker = channel
        received = []

        def reader():
            received.append(worker.get())

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.05)  # force the reader past its spin phase
        coordinator.put(("flush", 4), 1.0)
        thread.join(timeout=5.0)
        assert received == [("flush", 4)]

    def test_worker_raises_eof_on_torn_input(self, channel):
        coordinator, worker = channel
        assert coordinator.in_ring.try_write(frame(b"\x4dzz")[:-1])
        with pytest.raises(EOFError):
            worker.get()


class TestAdaptiveWaiter:
    def test_spins_then_parks(self):
        from repro.system.metrics import ShardMetrics

        metrics = ShardMetrics(0)
        waiter = AdaptiveWaiter(spins=3, min_park=0.0001,
                                max_park=0.001, metrics=metrics)
        for _ in range(5):
            waiter.wait()
        assert metrics.spin_waits == 3
        assert metrics.park_waits == 2

    def test_backoff_caps_at_max_park(self):
        waiter = AdaptiveWaiter(spins=0, min_park=0.0001, max_park=0.0004)
        for _ in range(8):
            waiter.wait()
        assert waiter._delay == 0.0004

    def test_reset_restores_spin_phase(self):
        from repro.system.metrics import ShardMetrics

        metrics = ShardMetrics(0)
        waiter = AdaptiveWaiter(spins=1, min_park=0.0001,
                                max_park=0.001, metrics=metrics)
        waiter.wait()
        waiter.wait()
        waiter.reset()
        waiter.wait()
        assert metrics.spin_waits == 2
        assert waiter._delay == 0.0001


class TestRingBackendEndToEnd:
    def test_ring_and_pipe_transports_agree(self):
        from repro.sharding import ShardingConfig
        from repro.system import ComplexEventProcessor
        from repro.workloads.synthetic import SyntheticConfig, \
            SyntheticStream, seq_query

        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=300, n_types=4, id_domain=6, seed=21))

        def run(transport):
            processor = ComplexEventProcessor(
                stream.registry,
                sharding=ShardingConfig(shards=2, backend="process",
                                        batch_size=16,
                                        queue_capacity=4,
                                        response_timeout=30.0,
                                        transport=transport))
            processor.register(
                "pair", seq_query(2, window=5.0, partitioned=True))
            produced = []
            for event in stream.events:
                produced.extend(processor.feed(event))
            produced.extend(processor.flush())
            return [(name, result.start, result.end,
                     tuple(sorted(result.attributes.items())))
                    for name, result in produced]

        assert run("ring") == run("pipe")
