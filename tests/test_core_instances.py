"""Tests for active instance stacks (and their pruning arithmetic)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.instances import InstanceStack, StackGroup
from repro.events.event import Event


def _push(stack: InstanceStack, ts: float, rip: int = -1):
    return stack.push(Event("A", ts), rip)


class TestInstanceStack:
    def test_push_and_absolute_index(self):
        stack = InstanceStack()
        _push(stack, 1.0)
        _push(stack, 2.0)
        assert len(stack) == 2
        assert stack.last_absolute_index == 1
        assert stack.get_absolute(0).event.timestamp == 1.0

    def test_prune_keeps_absolute_indexes_valid(self):
        stack = InstanceStack()
        for ts in (1.0, 2.0, 3.0, 4.0):
            _push(stack, ts)
        dropped = stack.prune_before(3.0)
        assert dropped == 2
        assert len(stack) == 2
        assert stack.last_absolute_index == 3
        assert stack.get_absolute(2).event.timestamp == 3.0

    def test_candidate_range_rip_bound(self):
        stack = InstanceStack()
        for ts in (1.0, 2.0, 3.0):
            _push(stack, ts)
        # rip=1 excludes the instance at absolute index 2
        assert list(stack.candidate_range(1, 10.0, None)) == [0, 1]

    def test_candidate_range_strict_time_bound(self):
        stack = InstanceStack()
        for ts in (1.0, 2.0, 2.0, 3.0):
            _push(stack, ts)
        # before_ts=2.0 excludes both ts==2.0 entries
        assert list(stack.candidate_range(3, 2.0, None)) == [0]

    def test_candidate_range_window_bound(self):
        stack = InstanceStack()
        for ts in (1.0, 2.0, 3.0):
            _push(stack, ts)
        assert list(stack.candidate_range(2, 10.0, 2.0)) == [1, 2]

    def test_candidate_range_empty_when_rip_pruned(self):
        stack = InstanceStack()
        for ts in (1.0, 2.0, 3.0):
            _push(stack, ts)
        stack.prune_before(2.5)  # drops absolute 0,1
        assert list(stack.candidate_range(1, 10.0, None)) == []

    def test_instances_between_exclusive(self):
        stack = InstanceStack()
        for ts in (1.0, 2.0, 3.0, 4.0):
            _push(stack, ts)
        between = stack.instances_between(1.0, 4.0)
        assert [instance.event.timestamp for instance in between] == \
            [2.0, 3.0]

    @given(st.lists(st.floats(min_value=0, max_value=50,
                              allow_nan=False), min_size=1, max_size=30),
           st.floats(min_value=0, max_value=60, allow_nan=False))
    def test_prune_property(self, timestamps, horizon):
        stack = InstanceStack()
        ordered = sorted(timestamps)
        for ts in ordered:
            _push(stack, ts)
        total = len(ordered)
        dropped = stack.prune_before(horizon)
        assert dropped == sum(1 for ts in ordered if ts < horizon)
        assert len(stack) == total - dropped
        assert all(instance.event.timestamp >= horizon
                   for instance in stack)

    @given(st.lists(st.floats(min_value=0, max_value=50,
                              allow_nan=False), min_size=1, max_size=25),
           st.integers(min_value=-1, max_value=30),
           st.floats(min_value=0, max_value=60, allow_nan=False))
    def test_candidate_range_matches_bruteforce(self, timestamps, rip,
                                                before_ts):
        stack = InstanceStack()
        ordered = sorted(timestamps)
        for ts in ordered:
            _push(stack, ts)
        got = list(stack.candidate_range(rip, before_ts, None))
        expected = [index for index, ts in enumerate(ordered)
                    if index <= rip and ts < before_ts]
        assert got == expected


class TestStackGroup:
    def test_totals_and_prune(self):
        group = StackGroup(3)
        group.stacks[0].push(Event("A", 1.0), -1)
        group.stacks[1].push(Event("B", 2.0), 0)
        group.stacks[2].push(Event("C", 3.0), 0)
        assert group.total_instances() == 3
        assert not group.is_empty()
        assert group.prune_before(2.5) == 2
        assert group.total_instances() == 1

    def test_empty(self):
        assert StackGroup(2).is_empty()
