"""Tests for expression compilation and evaluation."""

from __future__ import annotations

import pytest

from repro.core.expressions import EvalContext, compile_expr, \
    compile_predicate
from repro.errors import EvaluationError, FunctionError
from repro.events.event import Event
from repro.lang.parser import parse_query


def expr_for(text: str):
    """Parse a WHERE expression through the query grammar."""
    query = parse_query(f"EVENT A x WHERE {text}")
    assert query.where is not None
    return query.where


def return_expr(text: str):
    query = parse_query(f"EVENT A x RETURN {text}")
    assert query.return_clause is not None
    return query.return_clause.items[0].expr


def ctx(**bindings):
    return EvalContext(bindings)


class TestScalarEvaluation:
    def test_literal(self):
        assert compile_expr(expr_for("x.v = 1").right)(ctx()) == 1

    def test_attribute_ref(self):
        event = Event("A", 1.0, {"v": 42})
        closure = compile_expr(return_expr("x.v"))
        assert closure(ctx(x=event)) == 42

    def test_timestamp_pseudo_attribute(self):
        event = Event("A", 7.5, {"v": 1})
        closure = compile_expr(return_expr("x.Timestamp"))
        assert closure(ctx(x=event)) == 7.5

    def test_missing_attribute_raises(self):
        closure = compile_expr(return_expr("x.zzz"))
        with pytest.raises(EvaluationError, match="no attribute"):
            closure(ctx(x=Event("A", 1.0, {"v": 1})))

    def test_unbound_variable_raises(self):
        closure = compile_expr(return_expr("x.v"))
        with pytest.raises(EvaluationError, match="unbound"):
            closure(ctx())

    def test_arithmetic(self):
        event = Event("A", 1.0, {"v": 10})
        closure = compile_expr(return_expr("x.v * 2 + 1"))
        assert closure(ctx(x=event)) == 21

    def test_division(self):
        closure = compile_expr(return_expr("x.v / 4"))
        assert closure(ctx(x=Event("A", 1, {"v": 10}))) == 2.5

    def test_division_by_zero(self):
        closure = compile_expr(return_expr("x.v / 0"))
        with pytest.raises(EvaluationError, match="division by zero"):
            closure(ctx(x=Event("A", 1, {"v": 10})))

    def test_modulo_and_negation(self):
        closure = compile_expr(return_expr("-(x.v % 3)"))
        assert closure(ctx(x=Event("A", 1, {"v": 10}))) == -1

    def test_string_concatenation(self):
        closure = compile_expr(return_expr("x.name + '!'"))
        assert closure(ctx(x=Event("A", 1, {"name": "hi"}))) == "hi!"


class TestPredicates:
    def test_comparisons(self):
        event_pair = ctx(x=Event("A", 1, {"v": 5}),
                         y=Event("B", 2, {"v": 7}))
        query = parse_query("EVENT SEQ(A x, B y) WHERE x.v < y.v")
        assert query.where is not None
        assert compile_predicate(query.where)(event_pair) is True

    def test_and_short_circuit(self):
        predicate = compile_predicate(expr_for("x.v = 1 AND x.v > 0"))
        assert predicate(ctx(x=Event("A", 1, {"v": 1})))
        assert not predicate(ctx(x=Event("A", 1, {"v": 2})))

    def test_or(self):
        predicate = compile_predicate(expr_for("x.v = 1 OR x.v = 2"))
        assert predicate(ctx(x=Event("A", 1, {"v": 2})))
        assert not predicate(ctx(x=Event("A", 1, {"v": 3})))

    def test_not(self):
        predicate = compile_predicate(expr_for("NOT x.v = 1"))
        assert predicate(ctx(x=Event("A", 1, {"v": 2})))

    def test_non_boolean_predicate_fails_loudly(self):
        predicate = compile_predicate(return_expr("x.v"))
        with pytest.raises(EvaluationError, match="expected a boolean"):
            predicate(ctx(x=Event("A", 1, {"v": 2})))

    def test_incomparable_types(self):
        predicate = compile_predicate(expr_for("x.v < x.name"))
        with pytest.raises(EvaluationError, match="cannot compare"):
            predicate(ctx(x=Event("A", 1, {"v": 1, "name": "a"})))

    def test_rebind(self):
        base = ctx(x=Event("A", 1, {"v": 1}))
        rebound = base.rebind("x", Event("A", 2, {"v": 9}))
        closure = compile_expr(return_expr("x.v"))
        assert closure(base) == 1
        assert closure(rebound) == 9


class TestAggregates:
    def _kleene_ctx(self):
        events = tuple(Event("T", float(index), {"p": index * 10.0})
                       for index in range(1, 4))
        return ctx(t=events, a=Event("A", 0.5, {"v": 1}))

    def test_count_variable(self):
        query = parse_query("EVENT SEQ(A a, T+ t) RETURN COUNT(t)")
        assert query.return_clause is not None
        closure = compile_expr(query.return_clause.items[0].expr)
        assert closure(self._kleene_ctx()) == 3

    def test_count_star(self):
        query = parse_query("EVENT SEQ(A a, T+ t) RETURN COUNT(*)")
        assert query.return_clause is not None
        closure = compile_expr(query.return_clause.items[0].expr)
        assert closure(self._kleene_ctx()) == 4  # 3 kleene + 1 single

    def test_sum_avg_min_max(self):
        context = self._kleene_ctx()
        for text, expected in [("SUM(t.p)", 60.0), ("AVG(t.p)", 20.0),
                               ("MIN(t.p)", 10.0), ("MAX(t.p)", 30.0)]:
            query = parse_query(f"EVENT SEQ(A a, T+ t) RETURN {text}")
            assert query.return_clause is not None
            closure = compile_expr(query.return_clause.items[0].expr)
            assert closure(context) == expected

    def test_first_last(self):
        context = self._kleene_ctx()
        for text, expected in [("FIRST(t.p)", 10.0), ("LAST(t.p)", 30.0)]:
            query = parse_query(f"EVENT SEQ(A a, T+ t) RETURN {text}")
            assert query.return_clause is not None
            closure = compile_expr(query.return_clause.items[0].expr)
            assert closure(context) == expected

    def test_aggregate_over_single_binding(self):
        query = parse_query("EVENT A a RETURN COUNT(a)")
        assert query.return_clause is not None
        closure = compile_expr(query.return_clause.items[0].expr)
        assert closure(ctx(a=Event("A", 1, {"v": 1}))) == 1

    def test_max_timestamp(self):
        query = parse_query("EVENT SEQ(A a, T+ t) RETURN MAX(t.Timestamp)")
        assert query.return_clause is not None
        closure = compile_expr(query.return_clause.items[0].expr)
        assert closure(self._kleene_ctx()) == 3.0

    def test_scalar_ref_on_kleene_binding_raises(self):
        query = parse_query("EVENT SEQ(A a, T+ t) RETURN t.p")
        assert query.return_clause is not None
        closure = compile_expr(query.return_clause.items[0].expr)
        with pytest.raises(EvaluationError, match="Kleene binding"):
            closure(self._kleene_ctx())


class TestFunctions:
    def test_call_without_registry_raises(self):
        closure = compile_expr(return_expr("_lookup(x.v)"))
        with pytest.raises(FunctionError, match="no function registry"):
            closure(ctx(x=Event("A", 1, {"v": 1})))

    def test_call_through_registry(self):
        from repro.funcs import FunctionRegistry
        registry = FunctionRegistry()
        registry.register("_double", lambda value: value * 2)
        closure = compile_expr(return_expr("_double(x.v)"))
        context = EvalContext({"x": Event("A", 1, {"v": 21})}, registry)
        assert closure(context) == 42
