"""Coverage for the thinner seams: schemas catalogue, plan stats, and
stream-merging integration with the engine."""

from __future__ import annotations


from repro.core.engine import Engine
from repro.core.stats import OperatorStats, PlanStats
from repro.events.event import Event
from repro.events.stream import EventStream, merge_streams
from repro.rfid.layout import AreaKind
from repro.schemas import (
    EVENT_TYPE_FOR_KIND,
    READING_ATTRIBUTES,
    reading_schema,
    retail_registry,
)


class TestSchemasCatalogue:
    def test_every_area_kind_has_a_type(self):
        assert set(EVENT_TYPE_FOR_KIND) == set(AreaKind)

    def test_registry_covers_all_types(self):
        registry = retail_registry()
        for event_type in EVENT_TYPE_FOR_KIND.values():
            assert event_type in registry

    def test_reading_schema_shape(self):
        schema = reading_schema("SHELF_READING")
        assert schema.attribute_names == tuple(
            name for name, _ in READING_ATTRIBUTES)

    def test_all_reading_types_share_attributes(self):
        registry = retail_registry()
        shapes = {tuple(spec.type for spec in registry.get(event_type))
                  for event_type in EVENT_TYPE_FOR_KIND.values()}
        assert len(shapes) == 1


class TestPlanStats:
    def test_operator_created_on_demand(self):
        stats = PlanStats()
        operator = stats.operator("SSC")
        assert stats.operator("SSC") is operator

    def test_selectivity(self):
        operator = OperatorStats("SL", consumed=10, produced=4)
        assert operator.selectivity == 0.4
        assert OperatorStats("SL").selectivity == 1.0

    def test_high_water_marks(self):
        stats = PlanStats()
        stats.record_stack_size(5, 2)
        stats.record_stack_size(3, 7)
        assert stats.stack_high_water == 5
        assert stats.partitions_high_water == 7

    def test_snapshot_and_repr(self):
        stats = PlanStats()
        stats.operator("SSC").consumed = 3
        stats.operator("SSC").produced = 2
        assert stats.snapshot() == {"SSC": (3, 2)}
        assert "SSC[3/2]" in repr(stats)


class TestMergedStreamsThroughEngine:
    def test_two_reader_streams_merge_and_match(self, abc_registry):
        shelf_reader = [Event("A", 1, {"id": 1, "v": 0}),
                        Event("A", 5, {"id": 2, "v": 0})]
        exit_reader = [Event("B", 3, {"id": 1, "v": 0}),
                       Event("B", 7, {"id": 2, "v": 0})]
        merged = merge_streams(shelf_reader, exit_reader)
        engine = Engine(abc_registry)
        results = list(engine.run(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", merged))
        assert sorted(result["x_id"] for result in results) == [1, 2]

    def test_engine_accepts_event_stream_wrapper(self, abc_registry):
        stream = EventStream([Event("A", 1, {"id": 1, "v": 0}),
                              Event("B", 2, {"id": 1, "v": 0})])
        engine = Engine(abc_registry)
        results = list(engine.run(
            "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id", stream))
        assert len(results) == 1

    def test_composite_chaining_by_hand(self, abc_registry):
        """Manually feed one query's output events into another engine —
        the building block the processor's FROM/INTO routing automates."""
        from repro.events.model import AttributeType
        abc_registry.declare("Pair", key=AttributeType.INT)
        engine = Engine(abc_registry)
        stage_one = engine.run(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN Pair(x.id AS key)",
            [Event("A", 1, {"id": 1, "v": 0}),
             Event("B", 2, {"id": 1, "v": 0}),
             Event("A", 3, {"id": 1, "v": 0}),
             Event("B", 4, {"id": 1, "v": 0})])
        derived = [composite.to_event() for composite in stage_one]
        # three Pair events at t=2, t=4, t=4: the strictly-increasing
        # pairs are (2,4) with either of the two t=4 events
        assert [event.timestamp for event in derived] == [2, 4, 4]
        results = list(engine.run(
            "EVENT SEQ(Pair p, Pair q) WHERE p.key = q.key WITHIN 10 "
            "RETURN p.key", derived))
        assert len(results) == 2
