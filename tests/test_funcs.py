"""Tests for the function registry and the built-in `_` library."""

from __future__ import annotations

import pytest

from repro.core.expressions import EvalContext
from repro.db import EventDatabase
from repro.errors import FunctionError
from repro.funcs import FunctionRegistry, default_registry
from repro.ons import ObjectNameService
from repro.system.context import SystemContext


@pytest.fixture
def system() -> SystemContext:
    edb = EventDatabase()
    edb.register_area(1, "shelf", "shelf A")
    edb.register_area(4, "exit", "the south door")
    ons = ObjectNameService()
    ons.register_product(100, "soap")
    return SystemContext(event_db=edb, ons=ons)


def ctx(system=None) -> EvalContext:
    return EvalContext({}, default_registry(), system)


class TestRegistry:
    def test_register_and_call(self):
        registry = FunctionRegistry()
        registry.register("_twice", lambda value: value * 2)
        assert registry.call("_twice", EvalContext({}), [21]) == 42

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register("_f", lambda: 1)
        with pytest.raises(FunctionError, match="already registered"):
            registry.register("_f", lambda: 2)

    def test_unknown_function_lists_known(self):
        registry = FunctionRegistry()
        registry.register("_f", lambda: 1)
        with pytest.raises(FunctionError, match="registered: _f"):
            registry.call("_zzz", EvalContext({}), [])

    def test_exception_wrapped(self):
        registry = FunctionRegistry()
        registry.register("_boom", lambda: 1 / 0)
        with pytest.raises(FunctionError, match="_boom.*failed"):
            registry.call("_boom", EvalContext({}), [])

    def test_decorator(self):
        registry = FunctionRegistry()

        @registry.function("_three")
        def three() -> int:
            return 3

        assert "_three" in registry
        assert registry.call("_three", EvalContext({}), []) == 3


class TestBuiltins:
    def test_retrieve_location(self, system):
        registry = default_registry()
        context = EvalContext({}, registry, system)
        assert registry.call("_retrieveLocation", context, [4]) == \
            "the south door"
        assert "unknown area" in registry.call(
            "_retrieveLocation", context, [99])

    def test_update_and_current_location(self, system):
        registry = default_registry()
        context = EvalContext({}, registry, system)
        assert registry.call("_updateLocation", context, [100, 1, 5.0])
        assert registry.call("_currentLocation", context, [100]) == 1

    def test_movement_history_formatting(self, system):
        registry = default_registry()
        context = EvalContext({}, registry, system)
        registry.call("_updateLocation", context, [100, 1, 5.0])
        registry.call("_updateLocation", context, [100, 4, 9.0])
        text = registry.call("_movementHistory", context, [100])
        assert "shelf A" in text and "->" in text
        assert registry.call("_movementHistory", context, [777]) == \
            "(no recorded movement)"

    def test_containment_roundtrip(self, system):
        registry = default_registry()
        context = EvalContext({}, registry, system)
        assert registry.call("_updateContainment", context,
                             [100, 900, 1.0])
        assert registry.call("_closeContainment", context, [100, 2.0])
        assert system.event_db.current_containment(100) is None

    def test_product_name(self, system):
        registry = default_registry()
        context = EvalContext({}, registry, system)
        assert registry.call("_productName", context, [100]) == "soap"
        assert "unknown tag" in registry.call("_productName", context,
                                              [1])

    def test_archive_event(self, system):
        registry = default_registry()
        context = EvalContext({}, registry, system)
        seq = registry.call("_archiveEvent", context,
                            ["EXIT_READING", 100, 4, 7.0])
        assert seq == 0

    def test_db_function_without_system_raises(self):
        registry = default_registry()
        context = EvalContext({}, registry, None)
        with pytest.raises(FunctionError, match="event database"):
            registry.call("_retrieveLocation", context, [4])
