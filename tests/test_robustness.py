"""Robustness and failure-injection tests across the stack."""

from __future__ import annotations

import pytest

from repro.cleaning import CleaningPipeline, CleaningConfig
from repro.core.engine import Engine, run_query
from repro.errors import EvaluationError, FunctionError, SaseError
from repro.events.event import Event
from repro.funcs import FunctionRegistry
from repro.ons import ObjectNameService
from repro.rfid import NoiseModel, RfidSimulator, MovementScript, \
    default_retail_layout
from repro.schemas import retail_registry

from tests.helpers import make_events


class TestEngineRobustness:
    def test_unknown_event_types_flow_past_queries(self, abc_registry):
        """Events of types the query does not mention are skipped, even
        when they are not in the registry at all."""
        events = [Event("A", 1, {"id": 1, "v": 0}),
                  Event("WEIRD", 2, {"anything": "goes"}),
                  Event("B", 3, {"id": 1, "v": 0})]
        results = run_query(
            "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
            abc_registry, events)
        assert len(results) == 1

    def test_event_missing_partition_attribute_is_skipped(self,
                                                          abc_registry):
        events = [Event("A", 1, {"v": 0}),  # no id at all
                  Event("A", 2, {"id": 1, "v": 0}),
                  Event("B", 3, {"id": 1, "v": 0})]
        results = run_query(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", abc_registry, events)
        assert len(results) == 1

    def test_predicate_on_missing_attribute_raises(self, abc_registry):
        events = [Event("A", 1, {"id": 1})]  # schema promises v
        with pytest.raises(EvaluationError, match="no attribute"):
            run_query("EVENT A x WHERE x.v > 1 RETURN x.id",
                      abc_registry, events)

    def test_failing_user_function_is_wrapped(self, abc_registry):
        registry = FunctionRegistry()
        registry.register("_boom", lambda value: 1 / 0)
        events = make_events([("A", 1, {"id": 1, "v": 0})])
        engine = Engine(abc_registry, functions=registry)
        with pytest.raises(FunctionError, match="_boom"):
            list(engine.run("EVENT A x RETURN _boom(x.id)", events))

    def test_zero_length_stream(self, abc_registry):
        assert run_query("EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
                         abc_registry, []) == []

    def test_huge_timestamps(self, abc_registry):
        events = make_events([
            ("A", 1e15, {"id": 1, "v": 0}),
            ("B", 1e15 + 1, {"id": 1, "v": 0})])
        results = run_query(
            "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
            abc_registry, events)
        assert len(results) == 1

    def test_many_equal_timestamps_no_matches(self, abc_registry):
        events = make_events([("A", 5, {"id": 1, "v": 0})] * 10
                             + [("B", 5, {"id": 1, "v": 0})] * 10)
        assert run_query("EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
                         abc_registry, events) == []

    def test_long_quiet_gap_then_burst(self, abc_registry):
        events = make_events(
            [("A", 0, {"id": 1, "v": 0})]
            + [("C", 1e6 + offset, {"id": 9, "v": 0})
               for offset in range(5)]
            + [("A", 2e6, {"id": 1, "v": 0}),
               ("B", 2e6 + 1, {"id": 1, "v": 0})])
        results = run_query(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
            "RETURN x.id", abc_registry, events)
        assert len(results) == 1


class TestCleaningRobustness:
    def test_harsh_noise_still_produces_valid_events(self,
                                                     retail_schemas):
        layout = default_retail_layout(redundant_exit_reader=True)
        ons = ObjectNameService()
        for tag in range(50, 60):
            ons.register_product(tag, f"p{tag}", home_area_id=1)
        simulator = RfidSimulator(layout, NoiseModel.harsh(), seed=9)
        script = MovementScript()
        for tag in range(50, 60):
            script.move(0.0, tag, 1)
        script.move(10.0, 55, 4)
        pipeline = CleaningPipeline(layout, ons)
        events = list(pipeline.run(
            simulator.run_script(script, until=20.0)))
        assert events, "harsh noise should not silence the pipeline"
        last_ts = None
        for event in events:
            schema = retail_schemas.get(event.type)
            assert event.matches_schema(schema)
            assert last_ts is None or event.timestamp >= last_ts
            last_ts = event.timestamp

    def test_total_miss_rate_produces_nothing(self):
        layout = default_retail_layout()
        ons = ObjectNameService()
        ons.register_product(1, "p", home_area_id=1)
        simulator = RfidSimulator(
            layout, NoiseModel(miss_rate=1.0, duplicate_rate=0,
                               truncate_rate=0, ghost_rate=0))
        simulator.place(1, 1)
        pipeline = CleaningPipeline(layout, ons,
                                    CleaningConfig(smoothing_window=0.0))
        assert pipeline.process_tick(simulator.scan(1.0), now=1.0) == []

    def test_ghost_storm_fully_filtered(self):
        layout = default_retail_layout()
        ons = ObjectNameService()  # nothing registered: everything ghost
        simulator = RfidSimulator(
            layout, NoiseModel(miss_rate=0, duplicate_rate=0,
                               truncate_rate=0, ghost_rate=1.0), seed=2)
        pipeline = CleaningPipeline(layout, ons)
        events = pipeline.process_tick(simulator.scan(1.0), now=1.0)
        assert events == []
        assert pipeline.stats.stage("anomaly_filter").dropped > 0


class TestRegistryGuards:
    def test_compile_against_wrong_schema_attribute(self):
        engine = Engine(retail_registry())
        with pytest.raises(SaseError, match="no attribute"):
            engine.compile("EVENT SHELF_READING x WHERE x.Bogus = 1")

    def test_window_in_different_units_equivalent(self, abc_registry):
        events = make_events([("A", 0, {"id": 1, "v": 0}),
                              ("B", 3599, {"id": 1, "v": 0}),
                              ("B", 3601, {"id": 1, "v": 0})])
        in_hours = run_query(
            "EVENT SEQ(A x, B y) WITHIN 1 hour RETURN y.Timestamp",
            abc_registry, events)
        in_seconds = run_query(
            "EVENT SEQ(A x, B y) WITHIN 3600 seconds RETURN y.Timestamp",
            abc_registry, events)
        assert [c.attributes for c in in_hours] == \
            [c.attributes for c in in_seconds]
        assert len(in_hours) == 1
