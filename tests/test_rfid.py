"""Tests for the simulated physical device layer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.rfid import (
    MovementScript,
    NoiseModel,
    RfidSimulator,
    decode_epc,
    default_retail_layout,
    encode_epc,
    is_valid_epc,
)
from repro.rfid.layout import AreaKind, StoreLayout


class TestEpc:
    @given(st.integers(min_value=0, max_value=9_999_999_999))
    def test_roundtrip(self, tag_id):
        epc = encode_epc(tag_id)
        assert is_valid_epc(epc)
        assert decode_epc(epc) == tag_id

    @given(st.integers(min_value=0, max_value=9_999_999),
           st.integers(min_value=1, max_value=14))
    def test_truncation_detected(self, tag_id, cut):
        epc = encode_epc(tag_id)
        truncated = epc[:len(epc) - cut]
        assert not is_valid_epc(truncated)

    def test_corrupted_digit_usually_detected(self):
        epc = encode_epc(1234)
        # flip one serial digit; the positional checksum must notice
        corrupted = epc[:5] + ("9" if epc[5] != "9" else "1") + epc[6:]
        assert not is_valid_epc(corrupted)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_epc(-1)
        with pytest.raises(ValueError):
            encode_epc(10**10)

    def test_decode_invalid_raises(self):
        with pytest.raises(ValueError):
            decode_epc("garbage")


class TestLayout:
    def test_default_retail_layout(self):
        layout = default_retail_layout()
        assert len(layout.areas) == 4
        assert len(layout.readers) == 4
        assert layout.shelf_ids() == [1, 2]
        assert layout.area_of_reader("R4").kind is AreaKind.EXIT

    def test_redundant_reader(self):
        layout = default_retail_layout(redundant_exit_reader=True)
        assert len(layout.readers_in_area(4)) == 2

    def test_duplicate_area_rejected(self):
        layout = StoreLayout()
        layout.add_area(1, AreaKind.SHELF, "s")
        with pytest.raises(SimulationError):
            layout.add_area(1, AreaKind.EXIT, "e")

    def test_reader_needs_existing_area(self):
        layout = StoreLayout()
        with pytest.raises(SimulationError, match="unknown area"):
            layout.add_reader("R1", 5)

    def test_unknown_reader(self):
        with pytest.raises(SimulationError, match="unknown reader"):
            default_retail_layout().area_of_reader("R99")


class TestNoiseModel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(miss_rate=1.5)

    def test_perfect_never_fires(self):
        noise = NoiseModel.perfect()
        rng = random.Random(0)
        assert not any(noise.drops_reading(rng) or
                       noise.duplicates_reading(rng) or
                       noise.truncates_id(rng) or noise.emits_ghost(rng)
                       for _ in range(200))

    def test_corrupt_epc_is_invalid(self):
        noise = NoiseModel.harsh()
        rng = random.Random(1)
        for _ in range(20):
            assert not is_valid_epc(noise.corrupt_epc(encode_epc(5), rng))


class TestSimulator:
    def test_scan_reads_present_tags(self):
        simulator = RfidSimulator(default_retail_layout())
        simulator.place(100, 1)
        simulator.place(101, 3)
        readings = simulator.scan(5.0)
        observed = {(decode_epc(r.epc), r.reader_id) for r in readings}
        assert observed == {(100, "R1"), (101, "R3")}
        assert all(r.time == 5.0 for r in readings)

    def test_remove_stops_readings(self):
        simulator = RfidSimulator(default_retail_layout())
        simulator.place(100, 1)
        simulator.remove(100)
        assert simulator.scan(1.0) == []
        assert simulator.position_of(100) is None

    def test_place_unknown_area(self):
        simulator = RfidSimulator(default_retail_layout())
        with pytest.raises(SimulationError):
            simulator.place(100, 99)

    def test_script_moves_applied_in_order(self):
        script = MovementScript()
        script.move(0.0, 100, 1)
        script.move(2.0, 100, 3)
        script.remove(4.0, 100)
        simulator = RfidSimulator(default_retail_layout())
        by_time = {}
        for time, readings in simulator.run_script(script, until=5.0):
            by_time[time] = {(decode_epc(r.epc), r.reader_id)
                             for r in readings}
        assert by_time[0.0] == {(100, "R1")}
        assert by_time[1.0] == {(100, "R1")}
        assert by_time[2.0] == {(100, "R3")}
        assert by_time[4.0] == set()

    def test_script_end_time(self):
        script = MovementScript()
        script.move(3.0, 1, 1)
        assert script.end_time == 3.0
        assert len(script) == 1

    def test_duplicates_from_redundant_readers(self):
        layout = default_retail_layout(redundant_exit_reader=True)
        simulator = RfidSimulator(layout)
        simulator.place(100, 4)
        readings = simulator.scan(1.0)
        assert len(readings) == 2  # both exit antennas

    def test_noise_produces_invalid_epcs(self):
        simulator = RfidSimulator(
            default_retail_layout(),
            NoiseModel(miss_rate=0, duplicate_rate=0, truncate_rate=1.0,
                       ghost_rate=0), seed=3)
        simulator.place(100, 1)
        readings = simulator.scan(1.0)
        assert readings and not is_valid_epc(readings[0].epc)

    def test_scan_interval_validation(self):
        with pytest.raises(SimulationError):
            RfidSimulator(default_retail_layout(), scan_interval=0)

    def test_deterministic_with_seed(self):
        def run(seed):
            simulator = RfidSimulator(default_retail_layout(),
                                      NoiseModel.harsh(), seed=seed)
            simulator.place(100, 1)
            return [(r.epc, r.reader_id) for r in simulator.scan(1.0)]
        assert run(5) == run(5)
