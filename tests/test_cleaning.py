"""Tests for the five cleaning and association layers."""

from __future__ import annotations

import pytest

from repro.cleaning import (
    AnomalyFilter,
    CleanReading,
    CleaningConfig,
    CleaningPipeline,
    Deduplication,
    EventGeneration,
    TemporalSmoothing,
    TimeConversion,
)
from repro.cleaning.base import LogicalReading
from repro.errors import CleaningError
from repro.ons import ObjectNameService
from repro.rfid import default_retail_layout, encode_epc
from repro.rfid.simulator import RawReading


def raw(tag_id: int, reader: str = "R1", time: float = 1.0) -> RawReading:
    return RawReading(encode_epc(tag_id), reader, time)


class TestAnomalyFilter:
    def test_valid_reading_decoded(self):
        layer = AnomalyFilter()
        out = layer.process([raw(100)])
        assert out == [CleanReading(100, "R1", 1.0)]

    def test_truncated_id_dropped(self):
        layer = AnomalyFilter()
        broken = RawReading(encode_epc(100)[:-3], "R1", 1.0)
        assert layer.process([broken]) == []
        assert layer.stats.dropped == 1

    def test_ghost_tag_dropped_with_known_set(self):
        layer = AnomalyFilter(known_tags={100})
        assert layer.process([raw(100), raw(999)]) == \
            [CleanReading(100, "R1", 1.0)]

    def test_ghost_kept_without_known_set(self):
        layer = AnomalyFilter(known_tags=None)
        assert len(layer.process([raw(999)])) == 1


class TestTemporalSmoothing:
    def test_gap_filled_within_window(self):
        layer = TemporalSmoothing(window=2.0)
        layer.process([CleanReading(100, "R1", 0.0)], now=0.0)
        out = layer.process([], now=1.0)
        assert len(out) == 1 and out[0].smoothed
        assert out[0].time == 1.0

    def test_gap_beyond_window_not_filled(self):
        layer = TemporalSmoothing(window=2.0)
        layer.process([CleanReading(100, "R1", 0.0)], now=0.0)
        out = layer.process([], now=5.0)
        assert out == []

    def test_real_reading_refreshes_window(self):
        layer = TemporalSmoothing(window=1.5)
        layer.process([CleanReading(100, "R1", 0.0)], now=0.0)
        layer.process([CleanReading(100, "R1", 1.0)], now=1.0)
        out = layer.process([], now=2.0)
        assert len(out) == 1  # still within 1.5 of the t=1 reading

    def test_smoothing_is_per_reader(self):
        layer = TemporalSmoothing(window=2.0)
        layer.process([CleanReading(100, "R1", 0.0)], now=0.0)
        out = layer.process([CleanReading(100, "R2", 1.0)], now=1.0)
        # real reading at R2 plus smoothed reading at R1
        assert {(r.reader_id, r.smoothed) for r in out} == \
            {("R2", False), ("R1", True)}

    def test_zero_window_disables_smoothing(self):
        layer = TemporalSmoothing(window=0.0)
        layer.process([CleanReading(100, "R1", 0.0)], now=0.0)
        assert layer.process([], now=1.0) == []

    def test_negative_window_rejected(self):
        with pytest.raises(CleaningError):
            TemporalSmoothing(window=-1.0)


class TestTimeConversion:
    def test_quantisation(self):
        layer = TimeConversion(unit=5.0)
        out = layer.process([CleanReading(100, "R1", 12.3)])
        assert out[0].timestamp == 10.0
        assert out[0].time == 12.3

    def test_origin_shift(self):
        layer = TimeConversion(unit=1.0, origin=10.0)
        out = layer.process([CleanReading(100, "R1", 12.7)])
        assert out[0].timestamp == 2.0

    def test_invalid_unit(self):
        with pytest.raises(CleaningError):
            TimeConversion(unit=0)


class TestDeduplication:
    def _layer(self):
        return Deduplication(default_retail_layout(
            redundant_exit_reader=True))

    def _logical(self, tag, reader, timestamp):
        return LogicalReading(tag, reader, timestamp, timestamp)

    def test_redundant_readers_same_area_deduped(self):
        layer = self._layer()
        out = layer.process([self._logical(100, "R4", 1.0),
                             self._logical(100, "R4b", 1.0)])
        assert len(out) == 1
        assert layer.stats.dropped == 1

    def test_same_reader_same_unit_deduped(self):
        layer = self._layer()
        out = layer.process([self._logical(100, "R1", 1.0),
                             self._logical(100, "R1", 1.0)])
        assert len(out) == 1

    def test_new_time_unit_passes(self):
        layer = self._layer()
        layer.process([self._logical(100, "R1", 1.0)])
        out = layer.process([self._logical(100, "R1", 2.0)])
        assert len(out) == 1

    def test_different_areas_both_pass(self):
        layer = self._layer()
        out = layer.process([self._logical(100, "R1", 1.0),
                             self._logical(100, "R2", 1.0)])
        assert len(out) == 2


class TestEventGeneration:
    def test_enrichment(self):
        layout = default_retail_layout()
        ons = ObjectNameService()
        ons.register_product(100, "soap", category="household",
                             price=1.99, home_area_id=1)
        layer = EventGeneration(layout, ons)
        events = layer.process([LogicalReading(100, "R1", 3.0, 3.0)])
        assert len(events) == 1
        event = events[0]
        assert event.type == "SHELF_READING"
        assert event.timestamp == 3.0
        assert event["ProductName"] == "soap"
        assert event["AreaId"] == 1
        assert event["HomeAreaId"] == 1
        assert event["Saleable"] is True

    def test_counter_and_exit_types(self):
        layout = default_retail_layout()
        ons = ObjectNameService()
        ons.register_product(100, "soap")
        layer = EventGeneration(layout, ons)
        types = [layer.process([LogicalReading(100, reader, 1.0, 1.0)]
                               )[0].type for reader in ("R3", "R4")]
        assert types == ["COUNTER_READING", "EXIT_READING"]

    def test_unknown_tag_dropped(self):
        layer = EventGeneration(default_retail_layout(),
                                ObjectNameService())
        assert layer.process([LogicalReading(5, "R1", 1.0, 1.0)]) == []
        assert layer.stats.dropped == 1


class TestPipeline:
    def test_end_to_end_order_and_stats(self):
        layout = default_retail_layout()
        ons = ObjectNameService()
        for tag in (100, 101):
            ons.register_product(tag, f"p{tag}", home_area_id=1)
        pipeline = CleaningPipeline(layout, ons,
                                    CleaningConfig(smoothing_window=1.0))
        ticks = [
            (0.0, [raw(100, "R1", 0.0), raw(101, "R2", 0.0)]),
            (1.0, [raw(100, "R1", 1.0)]),   # 101 smoothed in
            (2.0, []),
        ]
        events = list(pipeline.run(ticks))
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)
        snapshot = pipeline.stats.snapshot()
        assert snapshot["anomaly_filter"][0] == 3
        assert snapshot["temporal_smoothing"][3] >= 1  # created
        assert snapshot["event_generation"][1] == len(events)

    def test_events_validate_against_registry(self, retail_schemas):
        layout = default_retail_layout()
        ons = ObjectNameService()
        ons.register_product(100, "soap")
        pipeline = CleaningPipeline(layout, ons)
        events = pipeline.process_tick([raw(100, "R3", 1.0)], now=1.0)
        schema = retail_schemas.get("COUNTER_READING")
        assert events[0].matches_schema(schema)
