"""Batched ingest at the system layer: ``feed_batch`` edge cases.

The batched API's contract is strict result identity with per-event
feeding — including negation watermarks advancing mid-batch, empty
batches, registration changes around (but never inside) a batch, and
every sharding backend.  These tests pin that contract at the
processor, system, and service layers.
"""

from __future__ import annotations

import pytest

from repro.errors import SaseError
from repro.service import QueryService, TenantQuota
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor, SaseSystem
from repro.workloads import RetailConfig, RetailScenario, \
    SHOPLIFTING_QUERY, MISPLACED_INVENTORY_QUERY
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


@pytest.fixture(scope="module")
def stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=400, n_types=4, id_domain=8, seed=31))


def build_processor(stream, sharding=None) -> ComplexEventProcessor:
    processor = ComplexEventProcessor(stream.registry, sharding=sharding)
    processor.register("pair", seq_query(2, window=5.0, partitioned=True))
    processor.register("neg", seq_query(2, window=5.0, partitioned=True,
                                        negation_at=2))
    return processor


@pytest.fixture(scope="module")
def per_event_baseline(stream):
    processor = build_processor(stream)
    produced = []
    for event in stream.events:
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    return fingerprint(produced)


def test_empty_batch_is_a_noop(stream):
    processor = build_processor(stream)
    assert processor.feed_batch([]) == []
    assert processor.feed_batch(iter([])) == []
    assert processor.metrics.query("pair").events_in == 0


@pytest.mark.parametrize("batch", [1, 3, 64, 1000])
def test_batched_equals_per_event(stream, per_event_baseline, batch):
    """Batches spanning watermark advances (the negation query skips
    most types, advancing its watermark mid-batch) still produce the
    per-event result sequence."""
    processor = build_processor(stream)
    produced = []
    events = stream.events
    for start in range(0, len(events), batch):
        produced.extend(processor.feed_batch(events[start:start + batch]))
    produced.extend(processor.flush())
    assert fingerprint(produced) == per_event_baseline


@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_batched_equals_per_event(stream, per_event_baseline,
                                          backend, shards):
    processor = build_processor(stream, sharding=ShardingConfig(
        shards=shards, backend=backend, batch_size=16))
    produced = []
    events = stream.events
    for start in range(0, len(events), 64):
        produced.extend(processor.feed_batch(events[start:start + 64]))
    produced.extend(processor.flush())
    assert fingerprint(produced) == per_event_baseline


def test_mid_batch_deregistration_rejected(stream):
    """A result callback must not mutate the query set while a batch is
    in flight — the per-event path allows it, so the batch path fails
    loudly instead of silently diverging."""
    processor = build_processor(stream)
    errors: list = []

    def deregister_now(name, result):
        try:
            processor.deregister("neg")
        except SaseError as error:
            errors.append(error)

    processor.query("pair").on_result = deregister_now
    processor.feed_batch(stream.events[:200])
    assert errors, "expected mid-batch deregistration to be rejected"
    assert "batch" in str(errors[0])
    # Between batches the same call is fine.
    processor.deregister("neg")
    assert processor.feed_batch(stream.events[200:250]) is not None


def test_mid_batch_registration_rejected(stream):
    processor = build_processor(stream)
    errors: list = []

    def register_now(name, result):
        try:
            processor.register("late", seq_query(2, window=5.0))
        except SaseError as error:
            errors.append(error)

    processor.query("pair").on_result = register_now
    processor.feed_batch(stream.events[:200])
    assert errors, "expected mid-batch registration to be rejected"


def test_cascades_degrade_to_per_event(stream):
    """INTO cascades disable the batch fast path (composites must
    interleave with their triggering events); feed_batch silently takes
    the per-event route and results stay identical."""
    def build():
        processor = ComplexEventProcessor(stream.registry)
        processor.register(
            "pair", seq_query(2, window=5.0, partitioned=True)
            + " INTO PAIRS")
        return processor

    reference = build()
    expected = []
    for event in stream.events[:200]:
        expected.extend(reference.feed(event))
    expected.extend(reference.flush())

    batched = build()
    produced = list(batched.feed_batch(stream.events[:200]))
    produced.extend(batched.flush())
    assert fingerprint(produced) == fingerprint(expected)


def test_batched_metrics_aggregates_match(stream):
    per_event = build_processor(stream)
    for event in stream.events:
        per_event.feed(event)
    batched = build_processor(stream)
    for start in range(0, len(stream.events), 64):
        batched.feed_batch(stream.events[start:start + 64])
    for name in ("pair", "neg"):
        reference = per_event.metrics.query(name)
        measured = batched.metrics.query(name)
        assert measured.events_in == reference.events_in
        assert measured.results_out == reference.results_out
        assert measured.last_result_at == reference.last_result_at


# -- system layer ------------------------------------------------------------

def _run_retail(ingest_batch: int):
    scenario = RetailScenario.generate(RetailConfig(seed=99))
    system = SaseSystem(scenario.layout, scenario.ons,
                        ingest_batch=ingest_batch)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    results = system.run_simulation(scenario.ticks())
    return [(name, result.end, tuple(sorted(result.attributes.items())))
            for name, result in results]


def test_system_ingest_batch_identical():
    assert _run_retail(ingest_batch=64) == _run_retail(ingest_batch=1)


# -- service layer -----------------------------------------------------------

def test_service_feed_many_batches(stream):
    def build():
        service = QueryService(stream.registry,
                               default_quota=TenantQuota())
        service.register("t0", "pairs",
                         seq_query(2, window=5.0, partitioned=True))
        return service

    batched = build()
    count = batched.feed_many(stream.events[:200])
    reference = build()
    expected = sum(reference.feed(event)
                   for event in stream.events[:200])
    assert count == expected
    assert batched.events_fed == reference.events_fed == 200
    assert batched.drain("t0") == reference.drain("t0")
