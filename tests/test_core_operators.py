"""Tests for the relational-style plan operators."""

from __future__ import annotations


from repro.core.match import Match
from repro.core.operators import (
    KleeneFilter,
    Negation,
    Selection,
    Transformation,
    WindowFilter,
)
from repro.events.event import Event
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze


def analyzed_for(text: str, registry):
    return analyze(parse_query(text), registry)


def match_of(**bindings) -> Match:
    return Match.from_bindings(bindings)


class TestSelection:
    def test_filters_by_predicate(self, abc_registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, B y) WHERE x.v < y.v", abc_registry)
        selection = Selection(analyzed, skip_partition_equalities=False)
        good = match_of(x=Event("A", 1, {"v": 1}), y=Event("B", 2, {"v": 5}))
        bad = match_of(x=Event("A", 1, {"v": 9}), y=Event("B", 2, {"v": 5}))
        assert selection.process(good) is good
        assert selection.process(bad) is None

    def test_skips_partition_equalities(self, abc_registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, B y) WHERE x.id = y.id", abc_registry)
        skipping = Selection(analyzed, skip_partition_equalities=True)
        keeping = Selection(analyzed, skip_partition_equalities=False)
        assert skipping.predicate_count == 0
        assert keeping.predicate_count == 1

    def test_includes_component_filters_when_not_pushed(self, abc_registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, B y) WHERE x.v > 3", abc_registry)
        selection = Selection(analyzed, skip_partition_equalities=False,
                              include_component_filters=True)
        assert selection.predicate_count == 1
        bad = match_of(x=Event("A", 1, {"v": 1}), y=Event("B", 2, {"v": 5}))
        assert selection.process(bad) is None


class TestWindowFilter:
    def test_span_boundary(self):
        window = WindowFilter(10.0)
        inside = match_of(x=Event("A", 0), y=Event("B", 10))
        outside = match_of(x=Event("A", 0), y=Event("B", 10.5))
        assert window.process(inside) is inside
        assert window.process(outside) is None


class TestKleeneFilter:
    def _analyzed(self, registry):
        return analyzed_for(
            "EVENT SEQ(A a, B+ b) WHERE b.v > a.v", registry)

    def test_maximal_mode_trims(self, abc_registry):
        kleene = KleeneFilter(self._analyzed(abc_registry),
                              maximal_mode=True)
        match = match_of(
            a=Event("A", 1, {"v": 5}),
            b=(Event("B", 2, {"v": 9}), Event("B", 3, {"v": 1})))
        result = kleene.process(match)
        assert result is not None
        assert [event["v"] for event in result.bindings["b"]] == [9]

    def test_maximal_mode_drops_empty(self, abc_registry):
        kleene = KleeneFilter(self._analyzed(abc_registry),
                              maximal_mode=True)
        match = match_of(a=Event("A", 1, {"v": 5}),
                         b=(Event("B", 2, {"v": 1}),))
        assert kleene.process(match) is None

    def test_subset_mode_drops_instead_of_trimming(self, abc_registry):
        kleene = KleeneFilter(self._analyzed(abc_registry),
                              maximal_mode=False)
        match = match_of(
            a=Event("A", 1, {"v": 5}),
            b=(Event("B", 2, {"v": 9}), Event("B", 3, {"v": 1})))
        assert kleene.process(match) is None

    def test_trivial_when_no_predicates(self, abc_registry):
        analyzed = analyzed_for("EVENT SEQ(A a, B+ b)", abc_registry)
        assert KleeneFilter(analyzed, maximal_mode=True).is_trivial


class TestNegationMiddle:
    def _negation(self, registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, !(B y), C z) WHERE x.id = y.id WITHIN 100",
            registry)
        return Negation(analyzed, use_partition_index=False)

    def test_passes_without_negative(self, abc_registry):
        negation = self._negation(abc_registry)
        match = match_of(x=Event("A", 1, {"id": 1}),
                         z=Event("C", 5, {"id": 1}))
        assert negation.process(match) is match

    def test_rejects_qualifying_negative(self, abc_registry):
        negation = self._negation(abc_registry)
        negation.observe(Event("B", 3, {"id": 1}))
        match = match_of(x=Event("A", 1, {"id": 1}),
                         z=Event("C", 5, {"id": 1}))
        assert negation.process(match) is None

    def test_ignores_negative_with_wrong_key(self, abc_registry):
        negation = self._negation(abc_registry)
        negation.observe(Event("B", 3, {"id": 999}))
        match = match_of(x=Event("A", 1, {"id": 1}),
                         z=Event("C", 5, {"id": 1}))
        assert negation.process(match) is match

    def test_interval_is_open(self, abc_registry):
        negation = self._negation(abc_registry)
        negation.observe(Event("B", 1, {"id": 1}))  # ts == x.ts
        negation.observe(Event("B", 5, {"id": 1}))  # ts == z.ts
        match = match_of(x=Event("A", 1, {"id": 1}),
                         z=Event("C", 5, {"id": 1}))
        assert negation.process(match) is match

    def test_partitioned_history(self, abc_registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, !(B y), C z) "
            "WHERE x.id = y.id AND x.id = z.id WITHIN 100", abc_registry)
        negation = Negation(analyzed, use_partition_index=True)
        negation.observe(Event("B", 3, {"id": 1}))
        blocked = match_of(x=Event("A", 1, {"id": 1}),
                           z=Event("C", 5, {"id": 1}))
        passed = match_of(x=Event("A", 1, {"id": 2}),
                          z=Event("C", 5, {"id": 2}))
        assert negation.process(blocked) is None
        assert negation.process(passed) is passed


class TestNegationLeading:
    def test_leading_window_interval(self, abc_registry):
        analyzed = analyzed_for(
            "EVENT SEQ(!(B y), A x) WITHIN 10", abc_registry)
        negation = Negation(analyzed, use_partition_index=False)
        match = match_of(x=Event("A", 20, {"id": 1}))
        # interval is [end - W, start) == [10, 20)
        negation.observe(Event("B", 9, {"id": 1}))
        assert negation.process(match) is match
        negation.observe(Event("B", 10, {"id": 1}))
        assert negation.process(match) is None


class TestNegationTrailing:
    def _negation(self, registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, !(B y)) WHERE x.id = y.id WITHIN 10",
            registry)
        return Negation(analyzed, use_partition_index=False)

    def test_buffers_until_deadline(self, abc_registry):
        negation = self._negation(abc_registry)
        negation.advance(1.0)
        match = match_of(x=Event("A", 1, {"id": 1}))
        assert negation.process(match) is None  # buffered
        assert negation.pending_count == 1
        assert negation.advance(11.0) == []  # 11 <= deadline 11? released?
        # deadline = 1 + 10 = 11; released strictly after
        assert negation.pending_count == 1
        released = negation.advance(11.5)
        assert released == [match]

    def test_negative_in_interval_drops(self, abc_registry):
        negation = self._negation(abc_registry)
        match = match_of(x=Event("A", 1, {"id": 1}))
        negation.advance(1.0)
        assert negation.process(match) is None
        negation.observe(Event("B", 5, {"id": 1}))
        assert negation.advance(20.0) == []
        assert negation.pending_count == 0

    def test_flush_decides_pending(self, abc_registry):
        negation = self._negation(abc_registry)
        negation.advance(1.0)
        good = match_of(x=Event("A", 1, {"id": 1}))
        bad = match_of(x=Event("A", 1, {"id": 2}))
        negation.process(good)
        negation.process(bad)
        negation.observe(Event("B", 2, {"id": 2}))
        released = negation.flush()
        assert released == [good]

    def test_has_trailing_flag(self, abc_registry):
        negation = self._negation(abc_registry)
        assert negation.has_trailing


class TestTransformation:
    def test_builds_composite(self, abc_registry):
        analyzed = analyzed_for(
            "EVENT SEQ(A x, B y) RETURN Alert(x.v, y.v AS second) "
            "INTO alerts", abc_registry)
        transform = Transformation(analyzed)
        match = match_of(x=Event("A", 1, {"v": 10}),
                         y=Event("B", 2, {"v": 20}))
        composite = transform.process(match)
        assert composite.type == "Alert"
        assert composite.stream == "alerts"
        assert composite.attributes == {"x_v": 10, "second": 20}
        assert composite.start == 1 and composite.end == 2
        assert composite.bindings["x"]["v"] == 10

    def test_default_return_binds_events(self, abc_registry):
        analyzed = analyzed_for("EVENT SEQ(A x, B y)", abc_registry)
        transform = Transformation(analyzed)
        match = match_of(x=Event("A", 1, {"v": 1}),
                         y=Event("B", 2, {"v": 2}))
        composite = transform.process(match)
        assert composite.attributes["x"].type == "A"
