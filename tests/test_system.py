"""Tests for the complex event processor and the wired system."""

from __future__ import annotations

import pytest

from repro.errors import SaseError
from repro.events.event import Event
from repro.ons import ObjectNameService
from repro.rfid import default_retail_layout
from repro.rfid.simulator import RawReading
from repro.rfid.tags import encode_epc
from repro.schemas import retail_registry
from repro.system import ComplexEventProcessor, QueryKind, SaseSystem
from repro.workloads import LOCATION_UPDATE_RULE, SHOPLIFTING_QUERY


def reading_event(event_type: str, ts: float, tag: int,
                  area: int) -> Event:
    return Event(event_type, ts, {
        "TagId": tag, "AreaId": area, "ReaderId": "R1",
        "ProductName": f"p{tag}", "Category": "general", "Price": 1.0,
        "ExpirationDate": "", "Saleable": True, "HomeAreaId": 1})


class TestProcessor:
    def _processor(self) -> ComplexEventProcessor:
        return ComplexEventProcessor(retail_registry())

    def test_register_and_feed(self):
        processor = self._processor()
        seen = []
        processor.register_monitoring_query(
            "exits", "EVENT EXIT_READING x RETURN x.TagId",
            on_result=lambda name, result: seen.append(result))
        produced = processor.feed(reading_event("EXIT_READING", 1, 7, 4))
        assert len(produced) == 1 and produced[0][0] == "exits"
        assert seen[0]["x_TagId"] == 7
        assert processor.query("exits").results_produced == 1

    def test_duplicate_name_rejected(self):
        processor = self._processor()
        processor.register_monitoring_query(
            "q", "EVENT EXIT_READING x RETURN x.TagId")
        with pytest.raises(SaseError, match="already registered"):
            processor.register_monitoring_query(
                "q", "EVENT EXIT_READING x RETURN x.TagId")

    def test_deregister_stops_query(self):
        processor = self._processor()
        processor.register_monitoring_query(
            "q", "EVENT EXIT_READING x RETURN x.TagId")
        processor.deregister("q")
        assert processor.feed(reading_event("EXIT_READING", 1, 7, 4)) == []
        with pytest.raises(SaseError):
            processor.deregister("q")

    def test_multiple_queries_share_stream(self):
        processor = self._processor()
        processor.register_monitoring_query(
            "exits", "EVENT EXIT_READING x RETURN x.TagId")
        processor.register_monitoring_query(
            "shelves", "EVENT SHELF_READING x RETURN x.TagId")
        produced = processor.feed_many([
            reading_event("SHELF_READING", 1, 7, 1),
            reading_event("EXIT_READING", 2, 7, 4)])
        assert {name for name, _ in produced} == {"exits", "shelves"}

    def test_flush_releases_trailing_negation(self):
        processor = self._processor()
        processor.register_monitoring_query(
            "no_checkout",
            "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y)) "
            "WHERE x.TagId = y.TagId WITHIN 100 RETURN x.TagId")
        assert processor.feed(
            reading_event("SHELF_READING", 1, 7, 1)) == []
        produced = processor.flush()
        assert len(produced) == 1

    def test_kind_recorded(self):
        processor = self._processor()
        rule = processor.register_archiving_rule(
            "rule", "EVENT SHELF_READING x "
                    "RETURN _updateLocation(x.TagId, x.AreaId, "
                    "x.Timestamp)")
        assert rule.kind is QueryKind.ARCHIVING_RULE


class TestSaseSystem:
    def _system(self) -> SaseSystem:
        layout = default_retail_layout()
        ons = ObjectNameService()
        ons.register_product(100, "soap", home_area_id=1)
        return SaseSystem(layout, ons)

    def test_reference_data_synced(self):
        system = self._system()
        assert system.event_db.area_description(4) is not None
        assert system.event_db.product_info(100) is not None

    def test_process_tick_runs_full_stack(self):
        system = self._system()
        system.register_monitoring_query(
            "shelf", "EVENT SHELF_READING x RETURN x.TagId")
        produced = system.process_tick(
            [RawReading(encode_epc(100), "R1", 1.0)], now=1.0)
        assert len(produced) == 1
        assert system.taps.cleaning_output
        assert system.taps.stream_results
        assert system.taps.messages

    def test_archiving_rule_updates_database(self):
        system = self._system()
        system.register_archiving_rule(
            "loc", LOCATION_UPDATE_RULE("SHELF_READING"))
        system.process_tick([RawReading(encode_epc(100), "R1", 1.0)],
                            now=1.0)
        location = system.event_db.current_location(100)
        assert location is not None and location["area_id"] == 1
        assert system.taps.database_reports

    def test_custom_message_formatter(self):
        system = self._system()
        system.register_monitoring_query(
            "shelf", "EVENT SHELF_READING x RETURN x.TagId",
            message=lambda result: f"custom {result['x_TagId']}")
        system.process_tick([RawReading(encode_epc(100), "R1", 1.0)],
                            now=1.0)
        assert system.taps.messages == ["custom 100"]

    def test_query_database_records_report(self):
        system = self._system()
        rows = system.query_database("SELECT * FROM areas")
        assert len(rows) == 4
        assert any("ad-hoc" in line
                   for line in system.taps.database_reports)

    def test_shoplifting_query_compiles_against_system(self):
        system = self._system()
        registered = system.register_monitoring_query(
            "shoplifting", SHOPLIFTING_QUERY)
        assert "PAIS" in registered.compiled.explain()

    def test_taps_bounded(self):
        system = self._system()
        system.taps.limit = 5
        for index in range(20):
            system.taps.record_message(f"m{index}")
        assert len(system.taps.messages) == 5
        assert system.taps.messages[-1] == "m19"
