"""Tests for SQL access-path selection (index usage) and EXPLAIN."""

from __future__ import annotations

import pytest

from repro.db import Database


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, name TEXT)")
    database.execute("CREATE INDEX ON t (grp)")
    for index in range(200):
        database.table("t").insert({"id": index, "grp": index % 10,
                                    "name": f"n{index}"})
    return database


class TestIndexedAccess:
    def test_primary_key_lookup(self, db):
        rows = db.query("SELECT name FROM t WHERE id = 42")
        assert rows == [{"name": "n42"}]
        assert "index lookup" in db.explain(
            "SELECT name FROM t WHERE id = 42")[0]

    def test_secondary_index_lookup(self, db):
        rows = db.query("SELECT id FROM t WHERE grp = 3")
        assert len(rows) == 20
        assert "index lookup on t.grp" in db.explain(
            "SELECT id FROM t WHERE grp = 3")[0]

    def test_index_with_residual_predicate(self, db):
        rows = db.query("SELECT id FROM t WHERE grp = 3 AND id < 50")
        assert sorted(row["id"] for row in rows) == [3, 13, 23, 33, 43]

    def test_constant_expression_pins_index(self, db):
        rows = db.query("SELECT id FROM t WHERE id = 40 + 2")
        assert rows == [{"id": 42}]
        assert "index lookup" in db.explain(
            "SELECT id FROM t WHERE id = 40 + 2")[0]

    def test_unindexed_column_scans(self, db):
        explain = db.explain("SELECT id FROM t WHERE name = 'n5'")
        assert "full scan" in explain[0]
        assert db.query("SELECT id FROM t WHERE name = 'n5'") == \
            [{"id": 5}]

    def test_or_prevents_index_use(self, db):
        explain = db.explain("SELECT id FROM t WHERE id = 1 OR grp = 2")
        assert "full scan" in explain[0]
        rows = db.query("SELECT id FROM t WHERE id = 1 OR grp = 2")
        assert len(rows) == 21  # id=1 is not in grp 2; 20 + 1

    def test_column_to_column_equality_not_pinned(self, db):
        explain = db.explain("SELECT id FROM t WHERE id = grp")
        assert "full scan" in explain[0]
        rows = db.query("SELECT id FROM t WHERE id = grp")
        assert sorted(row["id"] for row in rows) == list(range(10))

    def test_update_and_delete_use_index(self, db):
        assert "index lookup" in db.explain(
            "UPDATE t SET name = 'x' WHERE id = 7")[0]
        db.execute("UPDATE t SET name = 'x' WHERE id = 7")
        assert db.execute(
            "SELECT name FROM t WHERE id = 7").scalar() == "x"
        assert "index lookup" in db.explain(
            "DELETE FROM t WHERE grp = 9")[0]
        assert db.execute("DELETE FROM t WHERE grp = 9").affected == 20

    def test_indexed_results_match_scan_results(self, db):
        indexed = db.query("SELECT id FROM t WHERE grp = 4 ORDER BY id")
        scanned = db.query(
            "SELECT id FROM t WHERE grp + 0 = 4 ORDER BY id")
        assert indexed == scanned


class TestExplainShapes:
    def test_join_explain(self, db):
        db.execute("CREATE TABLE u (ref INT)")
        explain = db.explain("SELECT t.name FROM u, t WHERE u.ref = t.id")
        assert any("index join" in line for line in explain)

    def test_aggregate_and_sort_steps(self, db):
        explain = db.explain(
            "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp "
            "ORDER BY n LIMIT 3")
        assert "aggregate" in explain
        assert "sort" in explain
        assert "limit 3" in explain

    def test_non_select_explain(self, db):
        assert db.explain("DROP TABLE t") == ["direct: DropTableStmt"]
