"""Tests for attribute types, schemas, and the schema registry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.events.model import (
    AttributeSpec,
    AttributeType,
    EventSchema,
    SchemaRegistry,
)


class TestAttributeType:
    def test_int_validates_ints(self):
        assert AttributeType.INT.validate(3)
        assert not AttributeType.INT.validate(3.5)
        assert not AttributeType.INT.validate("3")

    def test_bool_is_not_int(self):
        assert not AttributeType.INT.validate(True)
        assert not AttributeType.FLOAT.validate(False)

    def test_float_accepts_int(self):
        assert AttributeType.FLOAT.validate(3)
        assert AttributeType.FLOAT.validate(3.5)

    def test_string_validates(self):
        assert AttributeType.STRING.validate("hello")
        assert not AttributeType.STRING.validate(5)

    def test_bool_validates(self):
        assert AttributeType.BOOL.validate(True)
        assert not AttributeType.BOOL.validate(1)

    def test_coerce_int_from_string(self):
        assert AttributeType.INT.coerce("42") == 42

    def test_coerce_int_from_whole_float(self):
        assert AttributeType.INT.coerce(42.0) == 42

    def test_coerce_int_rejects_fractional(self):
        with pytest.raises(SchemaError):
            AttributeType.INT.coerce(42.5)

    def test_coerce_float_widens_int(self):
        value = AttributeType.FLOAT.coerce(7)
        assert value == 7.0 and isinstance(value, float)

    def test_coerce_bool_from_words(self):
        assert AttributeType.BOOL.coerce("true") is True
        assert AttributeType.BOOL.coerce("NO") is False

    def test_coerce_bool_rejects_garbage(self):
        with pytest.raises(SchemaError):
            AttributeType.BOOL.coerce("maybe")

    def test_coerce_string_from_number(self):
        assert AttributeType.STRING.coerce(5) == "5"

    @given(st.integers())
    def test_int_coerce_roundtrip(self, value):
        assert AttributeType.INT.coerce(value) == value


class TestAttributeSpec:
    def test_rejects_bad_name(self):
        with pytest.raises(SchemaError):
            AttributeSpec("1bad", AttributeType.INT)

    def test_rejects_bad_default(self):
        with pytest.raises(SchemaError):
            AttributeSpec("x", AttributeType.INT, default="zero")

    def test_accepts_good_default(self):
        spec = AttributeSpec("x", AttributeType.INT, default=0)
        assert spec.default == 0


class TestEventSchema:
    def test_tuple_shorthand(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        assert "x" in schema
        assert schema.attribute("x").type is AttributeType.INT

    def test_rejects_duplicate_attribute(self):
        with pytest.raises(SchemaError):
            EventSchema("A", [("x", AttributeType.INT),
                              ("x", AttributeType.STRING)])

    def test_rejects_reserved_names(self):
        for reserved in ("timestamp", "ts", "seq", "Timestamp"):
            with pytest.raises(SchemaError):
                EventSchema("A", [(reserved, AttributeType.INT)])

    def test_unknown_attribute_raises_with_suggestions(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        with pytest.raises(SchemaError, match="known attributes: x"):
            schema.attribute("y")

    def test_validate_payload_happy(self):
        schema = EventSchema("A", [("x", AttributeType.INT),
                                   ("y", AttributeType.STRING)])
        assert schema.validate_payload({"x": 1, "y": "a"}) == \
            {"x": 1, "y": "a"}

    def test_validate_payload_missing_required(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        with pytest.raises(SchemaError, match="missing required"):
            schema.validate_payload({})

    def test_validate_payload_uses_default(self):
        schema = EventSchema("A", [AttributeSpec("x", AttributeType.INT,
                                                 default=9)])
        assert schema.validate_payload({}) == {"x": 9}

    def test_validate_payload_rejects_unknown(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.validate_payload({"x": 1, "zzz": 2})

    def test_validate_payload_type_mismatch(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        with pytest.raises(SchemaError, match="expects int"):
            schema.validate_payload({"x": "one"})

    def test_validate_payload_coerces_when_asked(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        assert schema.validate_payload({"x": "5"}, coerce=True) == {"x": 5}

    def test_validate_payload_widens_float(self):
        schema = EventSchema("A", [("x", AttributeType.FLOAT)])
        result = schema.validate_payload({"x": 2})
        assert isinstance(result["x"], float)

    def test_equality_and_hash(self):
        a1 = EventSchema("A", [("x", AttributeType.INT)])
        a2 = EventSchema("A", [("x", AttributeType.INT)])
        b = EventSchema("A", [("x", AttributeType.STRING)])
        assert a1 == a2 and hash(a1) == hash(a2)
        assert a1 != b

    def test_iteration_order_preserved(self):
        schema = EventSchema("A", [("b", AttributeType.INT),
                                   ("a", AttributeType.INT)])
        assert schema.attribute_names == ("b", "a")


class TestSchemaRegistry:
    def test_declare_and_get(self):
        registry = SchemaRegistry()
        registry.declare("A", x=AttributeType.INT)
        assert registry.get("A").name == "A"
        assert "A" in registry and len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = SchemaRegistry()
        registry.declare("A", x=AttributeType.INT)
        with pytest.raises(SchemaError, match="already registered"):
            registry.declare("A", y=AttributeType.INT)

    def test_unknown_type_lists_known(self):
        registry = SchemaRegistry()
        registry.declare("A", x=AttributeType.INT)
        with pytest.raises(SchemaError, match="registered types: A"):
            registry.get("B")

    def test_constructor_accepts_schemas(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        registry = SchemaRegistry([schema])
        assert registry.get("A") is schema

    def test_names_sorted(self):
        registry = SchemaRegistry()
        registry.declare("B", x=AttributeType.INT)
        registry.declare("A", x=AttributeType.INT)
        assert registry.names() == ("A", "B")
