"""Tests for the SASE query parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    AggregateCall,
    AggregateKind,
    AttributeRef,
    BinaryOp,
    BinOpKind,
    FunctionCall,
    Literal,
    TimeUnit,
    UnaryOp,
    UnOpKind,
    VariableRef,
)
from repro.lang.parser import parse_query


class TestPatternParsing:
    def test_q1_shoplifting_structure(self):
        query = parse_query("""
            EVENT SEQ(SHELF_READING x, !(COUNTER_READING y),
                      EXIT_READING z)
            WHERE x.TagId = y.TagId AND x.TagId = z.TagId
            WITHIN 12 hours
            RETURN x.TagId, x.ProductName, z.AreaId,
                   _retrieveLocation(z.AreaId)
        """)
        components = query.pattern.components
        assert [c.event_type for c in components] == [
            "SHELF_READING", "COUNTER_READING", "EXIT_READING"]
        assert [c.negated for c in components] == [False, True, False]
        assert query.within is not None
        assert query.within.seconds == 12 * 3600
        assert query.return_clause is not None
        assert len(query.return_clause.items) == 4

    def test_single_event_pattern(self):
        query = parse_query("EVENT SHELF_READING x")
        assert len(query.pattern.components) == 1
        assert not query.pattern.components[0].negated

    def test_kleene_component(self):
        query = parse_query("EVENT SEQ(A a, B+ b)")
        assert query.pattern.components[1].kleene

    def test_from_clause(self):
        query = parse_query("FROM rfid EVENT A x")
        assert query.from_stream == "rfid"

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ParseError, match="duplicate pattern variable"):
            parse_query("EVENT SEQ(A x, B x)")

    def test_all_negated_rejected(self):
        with pytest.raises(ParseError, match="at least one non-negated"):
            parse_query("EVENT SEQ(!(A x), !(B y))")

    def test_negated_kleene_rejected(self):
        with pytest.raises(ParseError):
            parse_query("EVENT SEQ(A a, !(B+ b))")

    def test_empty_seq_rejected(self):
        with pytest.raises(ParseError):
            parse_query("EVENT SEQ()")

    def test_missing_event_clause(self):
        with pytest.raises(ParseError, match="EVENT"):
            parse_query("WHERE x.a = 1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("EVENT A x RETURN x.v extra stuff ( ")


class TestDurations:
    @pytest.mark.parametrize("text,seconds", [
        ("WITHIN 90", 90.0),
        ("WITHIN 90 seconds", 90.0),
        ("WITHIN 5 minutes", 300.0),
        ("WITHIN 2 hours", 7200.0),
        ("WITHIN 1 hour", 3600.0),
        ("WITHIN 1 day", 86400.0),
        ("WITHIN 0.5 hours", 1800.0),
    ])
    def test_units(self, text, seconds):
        query = parse_query(f"EVENT A x {text}")
        assert query.within is not None
        assert query.within.seconds == seconds

    def test_unknown_unit(self):
        with pytest.raises(ParseError, match="unknown time unit"):
            parse_query("EVENT A x WITHIN 5 fortnights")

    def test_non_positive_window(self):
        with pytest.raises(ParseError, match="positive"):
            parse_query("EVENT A x WITHIN 0")

    def test_time_unit_parse_variants(self):
        assert TimeUnit.parse("hr") is TimeUnit.HOURS
        assert TimeUnit.parse("mins") is TimeUnit.MINUTES


class TestExpressions:
    def _where(self, text: str):
        query = parse_query(f"EVENT SEQ(A x, B y) WHERE {text}")
        assert query.where is not None
        return query.where

    def test_precedence_and_over_or(self):
        expr = self._where("x.a = 1 OR x.a = 2 AND y.b = 3")
        assert isinstance(expr, BinaryOp) and expr.op is BinOpKind.OR

    def test_arithmetic_precedence(self):
        expr = self._where("x.a + 2 * y.b = 10")
        assert isinstance(expr, BinaryOp) and expr.op is BinOpKind.EQ
        left = expr.left
        assert isinstance(left, BinaryOp) and left.op is BinOpKind.ADD
        assert isinstance(left.right, BinaryOp)
        assert left.right.op is BinOpKind.MUL

    def test_parentheses(self):
        expr = self._where("(x.a + 2) * y.b = 10")
        assert isinstance(expr, BinaryOp)
        left = expr.left
        assert isinstance(left, BinaryOp) and left.op is BinOpKind.MUL

    def test_not(self):
        expr = self._where("NOT x.a = 1")
        assert isinstance(expr, UnaryOp) and expr.op is UnOpKind.NOT

    def test_unary_minus(self):
        expr = self._where("x.a = -5")
        assert isinstance(expr, BinaryOp)
        assert isinstance(expr.right, UnaryOp)
        assert expr.right.op is UnOpKind.NEG

    def test_string_literal(self):
        expr = self._where("x.name = 'container'")
        assert isinstance(expr, BinaryOp)
        assert expr.right == Literal("container")

    def test_boolean_literal(self):
        expr = self._where("x.flag = TRUE")
        assert isinstance(expr, BinaryOp)
        assert expr.right == Literal(True)

    def test_wedge_is_and(self):
        expr = self._where("x.a = 1 ∧ y.b = 2")
        assert isinstance(expr, BinaryOp) and expr.op is BinOpKind.AND

    def test_attribute_ref(self):
        expr = self._where("x.TagId = y.TagId")
        assert isinstance(expr, BinaryOp)
        assert expr.left == AttributeRef("x", "TagId")


class TestReturnClause:
    def test_plain_items(self):
        query = parse_query("EVENT A x RETURN x.a, x.b AS beta")
        clause = query.return_clause
        assert clause is not None
        assert clause.items[0].alias is None
        assert clause.items[1].alias == "beta"

    def test_function_call(self):
        query = parse_query(
            "EVENT A x RETURN _retrieveLocation(x.area)")
        clause = query.return_clause
        assert clause is not None
        expr = clause.items[0].expr
        assert isinstance(expr, FunctionCall)
        assert expr.name == "_retrieveLocation"

    def test_aggregates(self):
        query = parse_query(
            "EVENT SEQ(A a, B+ b) RETURN COUNT(b), AVG(b.v), COUNT(*)")
        clause = query.return_clause
        assert clause is not None
        first, second, third = (item.expr for item in clause.items)
        assert isinstance(first, AggregateCall)
        assert first.kind is AggregateKind.COUNT
        assert first.arg == VariableRef("b")
        assert isinstance(second, AggregateCall)
        assert second.kind is AggregateKind.AVG
        assert isinstance(third, AggregateCall) and third.arg is None

    def test_star_only_in_count(self):
        with pytest.raises(ParseError, match="only valid inside COUNT"):
            parse_query("EVENT A x RETURN SUM(*)")

    def test_aggregate_arity(self):
        with pytest.raises(ParseError, match="exactly one argument"):
            parse_query("EVENT A x RETURN SUM(x.a, x.b)")

    def test_constructor_form(self):
        query = parse_query("EVENT A x RETURN Alert(x.a, x.b)")
        clause = query.return_clause
        assert clause is not None
        assert clause.event_name == "Alert"
        assert len(clause.items) == 2

    def test_constructor_with_into(self):
        query = parse_query("EVENT A x RETURN Alert(x.a) INTO alerts")
        clause = query.return_clause
        assert clause is not None
        assert clause.event_name == "Alert"
        assert clause.into_stream == "alerts"

    def test_function_first_item_is_not_constructor(self):
        # a leading function call followed by more items stays a plain list
        query = parse_query("EVENT A x RETURN _f(x.a), x.b")
        clause = query.return_clause
        assert clause is not None
        assert clause.event_name is None
        assert len(clause.items) == 2

    def test_return_star(self):
        query = parse_query("EVENT A x RETURN *")
        clause = query.return_clause
        assert clause is not None
        assert clause.items[0].expr == VariableRef("*")

    def test_q2_rule_parses(self):
        query = parse_query("""
            EVENT SEQ(SHELF_READING x, SHELF_READING y)
            WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId
            WITHIN 1 hour
            RETURN _updateLocation(y.TagId, y.AreaId, y.Timestamp)
        """)
        assert query.within is not None
        assert query.within.seconds == 3600
        clause = query.return_clause
        assert clause is not None
        expr = clause.items[0].expr
        assert isinstance(expr, FunctionCall)
        assert len(expr.args) == 3
