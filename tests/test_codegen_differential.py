"""Differential tests for the code-generated runtime (repro.core.codegen).

For every query in the corpus and randomized streams, the compiled scan
must produce *bit-identical* output to the interpreted scan — same
composite events, in the same order, at the same feed.  Shapes codegen
does not cover must transparently fall back to the interpreter.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine
from repro.core.plan import KleeneMode, PlanConfig
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.funcs.registry import FunctionRegistry
from repro.workloads.hospital import HospitalScenario
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

# The corpus: every structural shape the scan supports — plain and
# partitioned sequences, repeated types, cross-variable predicates,
# negation in every position, Kleene closure, aggregates, unbounded
# windows, and ANY() multi-type components.
QUERIES = [
    "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND y.id = z.id "
    "WITHIN 15 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE x.v < y.v WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE x.v < 5 AND y.v >= 2 WITHIN 10 "
    "RETURN x.id, y.v",
    "EVENT SEQ(A x, !(B y), C z) WHERE x.id = y.id AND x.id = z.id "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(!(C w), A x, B y) WHERE x.id = y.id AND w.id = x.id "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y, !(C w)) WHERE x.id = y.id AND w.id = x.id "
    "WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, A y) WHERE x.id = y.id WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) RETURN x.id",  # unbounded window
    "EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 10 "
    "RETURN a.id, COUNT(b)",
    "EVENT SEQ(A a, B+ b, C c) WHERE a.id = b.id AND a.id = c.id "
    "WITHIN 15 RETURN a.id",
    "EVENT SEQ(A x, ANY(B, C) y) WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE x.v + 1 < y.v * 2 WITHIN 10 RETURN x.id",
    "EVENT SEQ(A x, B y) WHERE NOT x.v > 5 WITHIN 10 RETURN x.id",
    # Two cross-component equality classes: the second fuses into the
    # partition key.
    "EVENT SEQ(A x, B y) WHERE x.id = y.id AND x.v = y.v WITHIN 10 "
    "RETURN x.id",
    "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND y.id = z.id "
    "AND x.v = y.v AND y.v = z.v WITHIN 15 RETURN x.id",
]

CONFIGS = [
    PlanConfig(),
    PlanConfig.naive(),
    PlanConfig().with_construction_pushdown(),
    PlanConfig(kleene_mode=KleeneMode.ANY_SUBSET),
]


def _registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    for name in ("A", "B", "C"):
        registry.declare(name, id=AttributeType.INT, v=AttributeType.INT)
    return registry


def _random_stream(seed: int, size: int, id_domain: int = 3,
                   tie_probability: float = 0.2) -> list[Event]:
    rng = random.Random(seed)
    events = []
    ts = 0.0
    for index in range(size):
        if rng.random() > tie_probability:
            ts += rng.choice([0.5, 1.0, 2.0])
        events.append(Event(
            rng.choice(["A", "B", "C"]), ts,
            {"id": rng.randrange(id_domain), "v": rng.randrange(10)},
        ).with_seq(index))
    return events


def _keys(results):
    """A full identity key per composite: output values, bindings,
    detection interval — order-preserving."""
    keys = []
    for composite in results:
        bindings = tuple(
            (variable, binding)
            for variable, binding in sorted(composite.bindings.items()))
        keys.append((composite.type, tuple(composite.attributes.items()),
                     bindings, composite.start, composite.end))
    return keys


def _assert_identical(registry, query_text, events, config,
                      functions=None, expect_compiled=True):
    """Feed-by-feed comparison: same results at every step and at flush."""
    engine = Engine(registry, functions=functions)
    compiled_rt = engine.runtime(query_text, config=config)
    interp_rt = engine.runtime(
        query_text, config=config.without("use_codegen"))
    assert compiled_rt.scan_compiled is expect_compiled
    assert interp_rt.scan_compiled is False
    for event in events:
        assert _keys(compiled_rt.feed(event)) == \
            _keys(interp_rt.feed(event)), \
            f"divergence at event {event!r} for {query_text!r}"
    assert _keys(compiled_rt.flush()) == _keys(interp_rt.flush())


@pytest.mark.parametrize("query_text", QUERIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_compiled_equals_interpreted(query_text, seed):
    registry = _registry()
    events = _random_stream(seed, size=40)
    for config in CONFIGS:
        _assert_identical(registry, query_text, events, config)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=0, max_value=50),
       query_index=st.integers(min_value=0, max_value=len(QUERIES) - 1),
       config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1))
def test_compiled_equals_interpreted_hypothesis(seed, size, query_index,
                                                config_index):
    registry = _registry()
    events = _random_stream(seed, size, id_domain=4, tie_probability=0.3)
    _assert_identical(registry, QUERIES[query_index], events,
                      CONFIGS[config_index])


def test_compiled_equals_interpreted_hospital_workload():
    scenario = HospitalScenario.generate()
    from repro.workloads.hospital import DOUBLE_DOSE_QUERY, \
        MISSED_DOSE_QUERY
    for query_text in (MISSED_DOSE_QUERY, DOUBLE_DOSE_QUERY):
        _assert_identical(scenario.registry, query_text, scenario.events,
                          PlanConfig())


def test_compiled_equals_interpreted_synthetic_workload():
    stream = SyntheticStream.generate(
        SyntheticConfig(n_events=400, n_types=4, id_domain=10))
    registry, events = stream.registry, stream.events
    for query_text in (
            seq_query(3, window=20.0, partitioned=True),
            seq_query(2, window=10.0, v_filter=5),
            seq_query(3, window=25.0, partitioned=True, negation_at=1)):
        _assert_identical(registry, query_text, events, PlanConfig())


# -- batched ingest ----------------------------------------------------------

def _assert_batched_identical(registry, query_text, events, config,
                              split_seed, functions=None):
    """Random batch splits through the compiled ``feed_batch`` (and the
    interpreter's loop-based one) must match per-event interpreted
    feeding exactly — same composites, same order, same flush."""
    engine = Engine(registry, functions=functions)
    compiled_rt = engine.runtime(query_text, config=config)
    interp_batch_rt = engine.runtime(
        query_text, config=config.without("use_codegen"))
    interp_rt = engine.runtime(
        query_text, config=config.without("use_codegen"))
    rng = random.Random(split_seed)
    compiled_out, interp_batch_out, interp_out = [], [], []
    index = 0
    while index < len(events):
        chunk = events[index:index + rng.randrange(1, 8)]
        index += len(chunk)
        compiled_out.extend(compiled_rt.feed_batch(chunk))
        interp_batch_out.extend(interp_batch_rt.feed_batch(chunk))
        for event in chunk:
            interp_out.extend(interp_rt.feed(event))
    compiled_out.extend(compiled_rt.flush())
    interp_batch_out.extend(interp_batch_rt.flush())
    interp_out.extend(interp_rt.flush())
    reference = _keys(interp_out)
    assert _keys(compiled_out) == reference, \
        f"compiled batched divergence for {query_text!r}"
    assert _keys(interp_batch_out) == reference, \
        f"interpreted batched divergence for {query_text!r}"


@pytest.mark.parametrize("query_text", QUERIES)
def test_batched_equals_per_event(query_text):
    registry = _registry()
    events = _random_stream(7, size=60)
    for config in CONFIGS:
        _assert_batched_identical(registry, query_text, events, config,
                                  split_seed=13)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=0, max_value=50),
       query_index=st.integers(min_value=0, max_value=len(QUERIES) - 1),
       config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
       split_seed=st.integers(min_value=0, max_value=1_000))
def test_batched_equals_per_event_hypothesis(seed, size, query_index,
                                             config_index, split_seed):
    registry = _registry()
    events = _random_stream(seed, size, id_domain=4, tie_probability=0.3)
    _assert_batched_identical(registry, QUERIES[query_index], events,
                              CONFIGS[config_index], split_seed)


def test_scan_coverage_flags():
    """Coverage introspection: which queries get a generated construct
    walk and batch body, and which fall back wholesale."""
    registry = _registry()
    engine = Engine(registry)
    trailing = engine.runtime(
        "EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 10 "
        "RETURN a.id, COUNT(b)")
    assert trailing.scan_coverage == {
        "compiled": True, "construct": True, "batch": True}
    mid_kleene = engine.runtime(
        "EVENT SEQ(A a, B+ b, C c) WHERE a.id = b.id AND a.id = c.id "
        "WITHIN 15 RETURN a.id")
    assert mid_kleene.scan_coverage == {
        "compiled": True, "construct": False, "batch": True}
    interpreted = engine.runtime(
        "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
        config=PlanConfig(use_codegen=False))
    assert interpreted.scan_coverage == {
        "compiled": False, "construct": False, "batch": False}


# -- interpreter fallback ----------------------------------------------------

def test_function_call_filter_forces_fallback():
    """A WHERE predicate calling a user function is outside codegen's
    expression subset: the runtime must silently use the interpreter and
    produce the same results."""
    registry = _registry()
    functions = FunctionRegistry()
    functions.register("_even", lambda value: value % 2 == 0)
    query_text = "EVENT SEQ(A x, B y) WHERE _even(x.v) WITHIN 10 " \
        "RETURN x.id"
    events = _random_stream(3, size=40)
    _assert_identical(registry, query_text, events, PlanConfig(),
                      functions=functions, expect_compiled=False)


def test_fuzzed_fallback_queries_still_correct():
    """Fuzz across predicates that mix compilable and non-compilable
    fragments; whichever path is chosen, output must match the pure
    interpreter."""
    registry = _registry()
    functions = FunctionRegistry()
    functions.register("_identity", lambda value: value)
    fragments = [
        ("x.v < 5", True),
        ("x.id = y.id", True),
        ("_identity(x.v) = x.v", False),
        ("x.v + y.v > 4", True),
    ]
    rng = random.Random(11)
    for trial in range(8):
        chosen = rng.sample(fragments, rng.randrange(1, len(fragments)))
        where = " AND ".join(fragment for fragment, _ in chosen)
        query_text = f"EVENT SEQ(A x, B y) WHERE {where} WITHIN 10 " \
            f"RETURN x.id"
        events = _random_stream(100 + trial, size=30)
        # Single-variable function predicates push to the scan and force
        # fallback there; cross-variable ones stay in Selection so the
        # scan still compiles.
        pushed_uncompilable = any(
            not compilable and "y." not in fragment
            for fragment, compilable in chosen)
        _assert_identical(registry, query_text, events, PlanConfig(),
                          functions=functions,
                          expect_compiled=not pushed_uncompilable)


def test_stateful_fallback_fuzz():
    """Function predicates landing in a stateful shape's pushed filters
    force wholesale fallback; the interpreter loop must still carry its
    batch API and produce identical output under random batch splits."""
    registry = _registry()
    functions = FunctionRegistry()
    functions.register("_even", lambda value: value % 2 == 0)
    shapes = [
        ("EVENT SEQ(A a, B+ b) WHERE a.id = b.id AND _even(a.v) "
         "WITHIN 10 RETURN a.id, COUNT(b)", False),
        ("EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND y.id = z.id "
         "AND _even(z.v) WITHIN 15 RETURN x.id", False),
        ("EVENT SEQ(A x, B y) WHERE x.id = y.id AND x.v = y.v "
         "AND _even(y.v) WITHIN 10 RETURN x.id", False),
        ("EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 10 "
         "RETURN a.id, COUNT(b)", True),
    ]
    for trial, (query_text, expect_compiled) in enumerate(shapes):
        events = _random_stream(200 + trial, size=50)
        _assert_identical(registry, query_text, events, PlanConfig(),
                          functions=functions,
                          expect_compiled=expect_compiled)
        _assert_batched_identical(registry, query_text, events,
                                  PlanConfig(), split_seed=trial,
                                  functions=functions)


def test_codegen_flag_off_uses_interpreter():
    registry = _registry()
    engine = Engine(registry)
    runtime = engine.runtime(
        "EVENT SEQ(A x, B y) WITHIN 10 RETURN x.id",
        config=PlanConfig(use_codegen=False))
    assert runtime.scan_compiled is False


def test_compiled_scan_exposes_source():
    registry = _registry()
    engine = Engine(registry)
    runtime = engine.runtime(
        "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 RETURN x.id")
    assert runtime.scan_compiled is True
    source = runtime._scan.codegen_source
    assert "def feed(self, event):" in source
    assert "EvalContext" not in source  # the point of the exercise
