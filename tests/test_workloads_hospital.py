"""Tests for the medication-compliance workload and its queries."""

from __future__ import annotations

import pytest

from repro.core.engine import Engine
from repro.errors import SimulationError
from repro.events.stream import EventStream
from repro.workloads import (
    DOUBLE_DOSE_QUERY,
    HospitalConfig,
    HospitalScenario,
    MISSED_DOSE_QUERY,
)


@pytest.fixture(scope="module")
def scenario() -> HospitalScenario:
    return HospitalScenario.generate(HospitalConfig(
        n_patients=12, doses_per_patient=4, seed=5))


class TestGeneration:
    def test_events_time_ordered(self, scenario):
        EventStream(scenario.events).collect()  # raises if out of order

    def test_truth_counts_match_events(self, scenario):
        dispensed = sum(1 for event in scenario.events
                        if event.type == "DISPENSED")
        intakes = sum(1 for event in scenario.events
                      if event.type == "INTAKE")
        expected_dispensed = 12 * 4
        assert dispensed == expected_dispensed
        assert intakes == (expected_dispensed
                           - len(scenario.truth.missed)
                           + len(scenario.truth.double))

    def test_deterministic(self):
        first = HospitalScenario.generate(HospitalConfig(seed=9))
        second = HospitalScenario.generate(HospitalConfig(seed=9))
        assert first.events == second.events

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            HospitalConfig(n_patients=0)
        with pytest.raises(SimulationError):
            HospitalConfig(miss_probability=0.7, double_probability=0.7)
        with pytest.raises(SimulationError):
            HospitalConfig(dose_interval=60.0)


class TestMonitoringQueries:
    def _engine(self, scenario) -> Engine:
        # the composite output types need no registration: they are not
        # consumed by downstream queries here
        return Engine(scenario.registry)

    def test_missed_dose_detection_exact(self, scenario):
        engine = self._engine(scenario)
        detected = {
            (result["d_PatientId"], result["d_Drug"], result.start)
            for result in engine.run(MISSED_DOSE_QUERY, scenario.events)}
        assert detected == scenario.truth.missed_keys()

    def test_double_dose_detection_exact(self, scenario):
        engine = self._engine(scenario)
        detected = {(result["a_PatientId"], result["a_Drug"])
                    for result in engine.run(DOUBLE_DOSE_QUERY,
                                             scenario.events)}
        assert detected == scenario.truth.double_keys()

    def test_compliant_patients_never_flagged(self, scenario):
        engine = self._engine(scenario)
        flagged = {result["d_PatientId"] for result in
                   engine.run(MISSED_DOSE_QUERY, scenario.events)}
        flagged |= {result["a_PatientId"] for result in
                    engine.run(DOUBLE_DOSE_QUERY, scenario.events)}
        incident_patients = (
            {incident.patient_id for incident in scenario.truth.missed}
            | {incident.patient_id
               for incident in scenario.truth.double})
        assert flagged == incident_patients
