"""Round-trip tests for the unparser: parse(format(q)) == q."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.lang.ast import (
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Duration,
    Literal,
    PatternComponent,
    Query,
    ReturnClause,
    ReturnItem,
    SeqPattern,
    TimeUnit,
    UnaryOp,
    UnOpKind,
)
from repro.lang.parser import parse_query
from repro.lang.pretty import format_expr, format_query

# -- hypothesis strategies for random query ASTs -----------------------------

_ident = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True).filter(
    lambda s: s.upper() not in {
        "FROM", "EVENT", "SEQ", "ANY", "WHERE", "WITHIN", "RETURN", "INTO",
        "AS", "AND", "OR", "NOT", "TRUE", "FALSE"})
_type_name = st.sampled_from(["A", "B", "C", "D", "E"])

_literal = st.one_of(
    st.integers(min_value=0, max_value=999).map(Literal),
    st.booleans().map(Literal),
    st.from_regex(r"[a-z ]{0,8}", fullmatch=True).map(Literal),
)


def _attr_refs(variables: list[str]):
    return st.builds(AttributeRef, st.sampled_from(variables),
                     st.sampled_from(["a", "b", "val"]))


def _exprs(variables: list[str]):
    leaves = st.one_of(_literal, _attr_refs(variables))

    def extend(children):
        binary = st.builds(
            BinaryOp,
            st.sampled_from([BinOpKind.AND, BinOpKind.OR, BinOpKind.EQ,
                             BinOpKind.LT, BinOpKind.ADD, BinOpKind.MUL,
                             BinOpKind.SUB]),
            children, children)
        unary = st.builds(UnaryOp, st.sampled_from([UnOpKind.NOT]),
                          children)
        return st.one_of(binary, unary)

    return st.recursive(leaves, extend, max_leaves=8)


@st.composite
def _queries(draw) -> Query:
    n_components = draw(st.integers(min_value=1, max_value=4))
    variables = [f"v{index}" for index in range(n_components)]
    components = []
    for index, variable in enumerate(variables):
        negated = draw(st.booleans()) if 0 < index else False
        kleene = False if negated else draw(
            st.sampled_from([False, False, True]))
        components.append(PatternComponent(
            draw(_type_name), variable, negated=negated, kleene=kleene))
    if all(component.negated for component in components):
        components[0] = PatternComponent(
            components[0].event_type, components[0].variable)
    pattern = SeqPattern(tuple(components))
    where = draw(st.none() | _exprs(variables))
    within = draw(st.none() | st.builds(
        Duration,
        st.integers(min_value=1, max_value=100).map(float),
        st.sampled_from(list(TimeUnit))))
    positive_vars = [component.variable for component in components
                     if not component.negated]
    return_clause = draw(st.none() | st.builds(
        ReturnClause,
        st.lists(st.builds(ReturnItem, _attr_refs(positive_vars),
                           st.none() | _ident),
                 min_size=1, max_size=3).map(tuple),
        st.none(),
        st.none() | _ident))
    return Query(pattern=pattern, where=where, within=within,
                 return_clause=return_clause)


class TestRoundTrip:
    @given(_queries())
    def test_parse_format_roundtrip(self, query: Query):
        text = format_query(query)
        reparsed = parse_query(text)
        assert reparsed.pattern == query.pattern
        assert reparsed.where == query.where
        assert reparsed.return_clause == query.return_clause
        if query.within is None:
            assert reparsed.within is None
        else:
            assert reparsed.within is not None
            assert reparsed.within.seconds == query.within.seconds

    def test_q1_roundtrip(self):
        text = """
            EVENT SEQ(SHELF_READING x, !(COUNTER_READING y),
                      EXIT_READING z)
            WHERE x.TagId = y.TagId AND x.TagId = z.TagId
            WITHIN 12 hours
            RETURN x.TagId, x.ProductName, z.AreaId,
                   _retrieveLocation(z.AreaId)
        """
        query = parse_query(text)
        assert parse_query(format_query(query)) == query

    def test_string_escaping(self):
        query = parse_query("EVENT A x WHERE x.name = 'it''s'")
        assert parse_query(format_query(query)).where == query.where

    def test_left_associativity_preserved(self):
        query = parse_query("EVENT A x WHERE x.a - 1 - 2 = 0")
        assert parse_query(format_query(query)).where == query.where

    def test_format_expr_minimal_parens(self):
        query = parse_query("EVENT A x WHERE x.a = 1 AND x.b = 2")
        assert query.where is not None
        assert "(" not in format_expr(query.where)
