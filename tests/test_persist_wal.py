"""Tests for the segmented write-ahead log and record framing."""

from __future__ import annotations

import os

import pytest

from repro.errors import PersistenceError
from repro.persist import FsyncPolicy, WriteAheadLog
from repro.persist.records import HEADER_BYTES, RecordWriter, frame, \
    scan_records


def payloads(n: int) -> list[bytes]:
    return [f"record-{index}".encode() for index in range(n)]


class TestFraming:
    def test_scan_missing_file(self, tmp_path):
        records, valid_end, size = scan_records(str(tmp_path / "nope"))
        assert (records, valid_end, size) == ([], 0, 0)

    def test_scan_roundtrip(self, tmp_path):
        path = str(tmp_path / "log")
        with open(path, "wb") as handle:
            for payload in payloads(5):
                handle.write(frame(payload))
        records, valid_end, size = scan_records(path)
        assert records == payloads(5)
        assert valid_end == size

    def test_scan_stops_at_torn_tail(self, tmp_path):
        path = str(tmp_path / "log")
        with open(path, "wb") as handle:
            for payload in payloads(3):
                handle.write(frame(payload))
            handle.write(frame(b"torn")[:-2])  # crash mid-append
        records, valid_end, size = scan_records(path)
        assert records == payloads(3)
        assert valid_end < size

    def test_scan_stops_at_corrupt_crc(self, tmp_path):
        path = str(tmp_path / "log")
        framed = [frame(payload) for payload in payloads(3)]
        data = bytearray(b"".join(framed))
        data[len(framed[0]) + HEADER_BYTES] ^= 0xFF  # flip a payload bit
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        records, valid_end, size = scan_records(path)
        assert records == payloads(1)
        assert valid_end == len(framed[0]) < size


class TestFsyncPolicy:
    def test_parse(self):
        assert FsyncPolicy.parse("always").mode == "always"
        assert FsyncPolicy.parse("never").mode == "never"
        policy = FsyncPolicy.parse("every_n:7")
        assert (policy.mode, policy.interval) == ("every_n", 7)
        assert FsyncPolicy.parse("every_n").interval == 64

    def test_parse_rejects_garbage(self):
        with pytest.raises(PersistenceError):
            FsyncPolicy.parse("sometimes")
        with pytest.raises(PersistenceError):
            FsyncPolicy.parse("every_n:0")

    def test_writer_fsync_counts(self, tmp_path):
        def count(policy: FsyncPolicy) -> int:
            path = str(tmp_path / f"{policy.mode}{policy.interval}")
            writer = RecordWriter(path, policy)
            for payload in payloads(10):
                writer.append(payload)
            fsyncs = writer.fsyncs
            writer.close()
            return fsyncs

        assert count(FsyncPolicy("always")) == 10
        assert count(FsyncPolicy("never")) == 0
        assert count(FsyncPolicy("every_n", 4)) == 2  # at 4 and 8

    def test_buffered_records_readable_after_close(self, tmp_path):
        path = str(tmp_path / "buffered")
        writer = RecordWriter(path, FsyncPolicy("every_n", 100))
        for payload in payloads(5):
            writer.append(payload)
        writer.close()
        records, valid_end, size = scan_records(path)
        assert records == payloads(5)
        assert valid_end == size


class TestWriteAheadLog:
    def make(self, tmp_path, segment_max_bytes: int = 4 * 1024 * 1024,
             policy: FsyncPolicy | None = None,
             group_items: int = 4) -> WriteAheadLog:
        # A small group so a handful of appends spans several sealed
        # frames (and, with a small byte budget, several segments).
        return WriteAheadLog(str(tmp_path), policy or FsyncPolicy("never"),
                             segment_max_bytes, group_items=group_items)

    def test_append_replay_roundtrip(self, tmp_path):
        wal = self.make(tmp_path)
        lsns = [wal.append(payload) for payload in payloads(10)]
        assert lsns == list(range(10))
        assert wal.next_lsn == 10
        assert list(wal.replay()) == list(enumerate(payloads(10)))
        assert list(wal.replay(from_lsn=7)) == \
            [(7, b"record-7"), (8, b"record-8"), (9, b"record-9")]
        wal.close()

    def test_reopen_continues_lsns(self, tmp_path):
        wal = self.make(tmp_path)
        for payload in payloads(6):
            wal.append(payload)
        wal.close()
        reopened = self.make(tmp_path)
        assert reopened.next_lsn == 6
        assert reopened.append(b"more") == 6
        assert [lsn for lsn, _ in reopened.replay()] == list(range(7))
        reopened.close()

    def test_rotation_and_cross_segment_replay(self, tmp_path):
        wal = self.make(tmp_path, segment_max_bytes=64)
        for payload in payloads(20):
            wal.append(payload)
        assert wal.segment_count > 1
        assert list(wal.replay()) == list(enumerate(payloads(20)))
        # from_lsn inside a later segment skips whole earlier segments
        assert [lsn for lsn, _ in wal.replay(from_lsn=13)] == \
            list(range(13, 20))
        wal.close()

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        wal = self.make(tmp_path)
        for payload in payloads(4):
            wal.append(payload)
        wal.close()
        path = os.path.join(str(tmp_path), "00000000.wal")
        with open(path, "ab") as handle:
            handle.write(frame(b"torn")[:-3])
        reopened = self.make(tmp_path)
        assert reopened.truncated_bytes > 0
        assert reopened.next_lsn == 4
        reopened.append(b"after-crash")
        assert list(reopened.replay()) == \
            list(enumerate(payloads(4))) + [(4, b"after-crash")]
        reopened.close()

    def test_corrupt_non_final_segment_rejected(self, tmp_path):
        wal = self.make(tmp_path, segment_max_bytes=64)
        for payload in payloads(20):
            wal.append(payload)
        assert wal.segment_count >= 3
        wal.close()
        segments = sorted(entry for entry in os.listdir(str(tmp_path))
                          if entry.endswith(".wal"))
        with open(os.path.join(str(tmp_path), segments[0]), "r+b") \
                as handle:
            handle.truncate(os.path.getsize(
                os.path.join(str(tmp_path), segments[0])) - 1)
        with pytest.raises(PersistenceError, match="non-final"):
            self.make(tmp_path)

    def test_missing_middle_segment_rejected(self, tmp_path):
        wal = self.make(tmp_path, segment_max_bytes=64)
        for payload in payloads(20):
            wal.append(payload)
        assert wal.segment_count >= 3
        wal.close()
        segments = sorted(entry for entry in os.listdir(str(tmp_path))
                          if entry.endswith(".wal"))
        os.remove(os.path.join(str(tmp_path), segments[1]))
        with pytest.raises(PersistenceError, match="contiguous"):
            self.make(tmp_path)

    def test_gc_drops_covered_segments_only(self, tmp_path):
        wal = self.make(tmp_path, segment_max_bytes=64)
        for payload in payloads(20):
            wal.append(payload)
        before = wal.segment_count
        assert wal.gc(below_lsn=0) == 0
        removed = wal.gc(below_lsn=13)
        assert removed > 0
        assert wal.segment_count == before - removed
        assert wal.oldest_lsn > 0
        # Records at and above the horizon all survive.
        assert [lsn for lsn, _ in wal.replay(from_lsn=13)] == \
            list(range(13, 20))
        # The active segment is never removed, whatever the horizon.
        wal.gc(below_lsn=10_000)
        assert wal.segment_count >= 1
        assert wal.append(b"still-writable") == 20
        wal.close()

    def test_fsyncs_accumulate_across_rotation(self, tmp_path):
        wal = self.make(tmp_path, segment_max_bytes=64,
                        policy=FsyncPolicy("always"))
        for payload in payloads(12):
            wal.append(payload)
        assert wal.segment_count > 1
        assert wal.fsyncs >= 12
        wal.close()

    def test_group_buffering_defers_writes(self, tmp_path):
        wal = self.make(tmp_path, group_items=8)
        path = os.path.join(str(tmp_path), "00000000.wal")
        for payload in payloads(7):
            wal.append(payload)
        assert os.path.getsize(path) == 0   # group still open
        wal.append(b"record-7")             # eighth item seals the group
        assert os.path.getsize(path) > 0
        # replay() and close() both seal, so an open group is never lost
        # to an orderly shutdown — only to a crash.
        wal.append(b"tail")
        assert list(wal.replay(from_lsn=8)) == [(8, b"tail")]
        wal.close()
        reopened = self.make(tmp_path)
        assert reopened.next_lsn == 9
        reopened.close()

    def test_empty_directory(self, tmp_path):
        wal = self.make(tmp_path)
        assert wal.next_lsn == 0
        assert list(wal.replay()) == []
        assert wal.segment_count == 1
        wal.close()
