"""Tests for query composition through FROM/INTO named streams."""

from __future__ import annotations

import pytest

from repro.errors import SaseError
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.system import ComplexEventProcessor


@pytest.fixture
def registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("B", id=AttributeType.INT, v=AttributeType.INT)
    # composite event types published INTO streams must be declared so
    # downstream queries can compile against them
    registry.declare("Hot", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("Pair", id=AttributeType.INT)
    return registry


def a(ts: float, id_: int, v: int) -> Event:
    return Event("A", ts, {"id": id_, "v": v})


class TestComposition:
    def test_two_level_hierarchy(self, registry):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query(
            "detect_hot",
            "EVENT A x WHERE x.v > 5 "
            "RETURN Hot(x.id AS id, x.v AS v) INTO hots")
        processor.register_monitoring_query(
            "pair_hots",
            "FROM hots EVENT SEQ(Hot p, Hot q) WHERE p.id = q.id "
            "WITHIN 100 RETURN Pair(p.id AS id)")
        events = [a(1, 7, 9), a(2, 7, 1), a(3, 7, 8), a(4, 8, 9)]
        produced = processor.feed_many(events)
        by_query: dict[str, list] = {}
        for name, result in produced:
            by_query.setdefault(name, []).append(result)
        assert len(by_query["detect_hot"]) == 3
        assert len(by_query["pair_hots"]) == 1
        assert by_query["pair_hots"][0]["id"] == 7

    def test_derived_events_timestamped_by_match_end(self, registry):
        processor = ComplexEventProcessor(registry)
        seen = []
        processor.register_monitoring_query(
            "hot", "EVENT A x RETURN Hot(x.id AS id, x.v AS v) INTO hots")
        processor.register_monitoring_query(
            "watch", "FROM hots EVENT Hot h RETURN h.id, h.Timestamp",
            on_result=lambda name, result: seen.append(result))
        processor.feed(a(42.5, 1, 1))
        assert seen and seen[0]["h_Timestamp"] == 42.5

    def test_queries_only_see_their_stream(self, registry):
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query(
            "base", "EVENT A x RETURN Hot(x.id AS id, x.v AS v) INTO hots")
        processor.register_monitoring_query(
            "other", "FROM elsewhere EVENT Hot h RETURN h.id")
        produced = processor.feed(a(1, 1, 1))
        assert {name for name, _ in produced} == {"base"}

    def test_cycle_detected(self, registry):
        registry.declare("Echo", id=AttributeType.INT)
        processor = ComplexEventProcessor(registry)
        processor.register_monitoring_query(
            "loop",
            "FROM echoes EVENT Echo e RETURN Echo(e.id AS id) "
            "INTO echoes")
        processor.register_monitoring_query(
            "seed", "EVENT A x RETURN Echo(x.id AS id) INTO echoes")
        with pytest.raises(SaseError, match="cascade"):
            processor.feed(a(1, 1, 1))

    def test_flush_cascades_to_consumers(self, registry):
        processor = ComplexEventProcessor(registry)
        # upstream query only releases its match at flush time (trailing
        # negation, no later event advances the watermark)
        processor.register_monitoring_query(
            "no_b",
            "EVENT SEQ(A x, !(B y)) WHERE x.id = y.id WITHIN 50 "
            "RETURN Hot(x.id AS id, x.v AS v) INTO hots")
        processor.register_monitoring_query(
            "watch", "FROM hots EVENT Hot h RETURN h.id")
        assert processor.feed(a(1, 3, 1)) == []
        produced = processor.flush()
        names = [name for name, _ in produced]
        assert names == ["no_b", "watch"]

    def test_flush_order_producers_first(self, registry):
        processor = ComplexEventProcessor(registry)
        # register the consumer FIRST; flush order must still run the
        # producer's flush before the consumer's
        processor.register_monitoring_query(
            "watch", "FROM hots EVENT Hot h RETURN h.id")
        processor.register_monitoring_query(
            "no_b",
            "EVENT SEQ(A x, !(B y)) WHERE x.id = y.id WITHIN 50 "
            "RETURN Hot(x.id AS id, x.v AS v) INTO hots")
        processor.feed(a(1, 3, 1))
        produced = processor.flush()
        assert [name for name, _ in produced] == ["no_b", "watch"]

    def test_input_output_stream_properties(self, registry):
        processor = ComplexEventProcessor(registry)
        registered = processor.register_monitoring_query(
            "q", "FROM hots EVENT Hot h RETURN Pair(h.id AS id) INTO "
                 "pairs")
        assert registered.input_stream == "hots"
        assert registered.output_stream == "pairs"
        base = processor.register_monitoring_query(
            "base", "EVENT A x RETURN x.id")
        assert base.input_stream == ComplexEventProcessor.DEFAULT_STREAM
        assert base.output_stream is None
