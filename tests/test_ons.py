"""Tests for the simulated Object Name Service."""

from __future__ import annotations

import pytest

from repro.errors import CleaningError
from repro.ons import ObjectNameService, ProductRecord


class TestObjectNameService:
    def test_register_and_lookup(self):
        ons = ObjectNameService()
        record = ons.register_product(1, "soap", price=1.5)
        assert ons.lookup(1) is record
        assert 1 in ons and len(ons) == 1

    def test_missing_lookup(self):
        assert ObjectNameService().lookup(42) is None

    def test_duplicate_rejected(self):
        ons = ObjectNameService()
        ons.register_product(1, "soap")
        with pytest.raises(CleaningError, match="already registered"):
            ons.register(ProductRecord(1, "other"))

    def test_known_tags(self):
        ons = ObjectNameService()
        ons.register_product(1, "a")
        ons.register_product(2, "b")
        assert ons.known_tags() == {1, 2}

    def test_as_attributes_fragment(self):
        record = ProductRecord(1, "soap", category="household",
                               price=1.5, expiration_date="2027-01-01",
                               saleable=False, home_area_id=2)
        attrs = record.as_attributes()
        assert attrs == {
            "ProductName": "soap", "Category": "household", "Price": 1.5,
            "ExpirationDate": "2027-01-01", "Saleable": False,
            "HomeAreaId": 2}

    def test_iteration(self):
        ons = ObjectNameService()
        ons.register_product(1, "a")
        ons.register_product(2, "b")
        assert {record.product_name for record in ons} == {"a", "b"}
