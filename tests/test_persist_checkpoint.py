"""Tests for atomic checkpoint storage."""

from __future__ import annotations

import json
import os

from repro.persist import CheckpointStore
from repro.persist.checkpoint import CHECKPOINT_VERSION, checkpoint_name


def snapshot(wal_lsn: int, replay_lsn: int = 0,
             emitted: int = 0) -> dict:
    return {"version": CHECKPOINT_VERSION, "wal_lsn": wal_lsn,
            "emitted": emitted, "replay_lsn": replay_lsn,
            "db": {"version": 1, "tables": {}}}


class TestCheckpointStore:
    def test_write_latest_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.latest() is None
        store.write(snapshot(10, emitted=3))
        store.write(snapshot(20, emitted=7))
        latest = store.latest()
        assert latest["wal_lsn"] == 20
        assert latest["emitted"] == 7

    def test_no_temp_file_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(snapshot(10))
        assert [entry for entry in os.listdir(str(tmp_path))
                if entry.endswith(".tmp")] == []

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(snapshot(10, emitted=3))
        store.write(snapshot(20, emitted=7))
        path = os.path.join(str(tmp_path), checkpoint_name(20))
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        latest = store.latest()
        assert latest["wal_lsn"] == 10

    def test_invalid_json_and_wrong_version_skipped(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(snapshot(10))
        with open(os.path.join(str(tmp_path), checkpoint_name(30)),
                  "w") as handle:
            handle.write("{not json")
        with open(os.path.join(str(tmp_path), checkpoint_name(40)),
                  "w") as handle:
            json.dump({"version": 99, "wal_lsn": 40}, handle)
        assert store.latest()["wal_lsn"] == 10

    def test_gc_keeps_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        for wal_lsn in (10, 20, 30, 40):
            store.write(snapshot(wal_lsn))
        assert store.gc(keep=2) == 2
        remaining = sorted(entry for entry in os.listdir(str(tmp_path)))
        assert remaining == [checkpoint_name(30), checkpoint_name(40)]
        assert store.gc(keep=2) == 0

    def test_horizons_lists_valid_checkpoints(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.write(snapshot(10, replay_lsn=4))
        store.write(snapshot(20, replay_lsn=15))
        with open(os.path.join(str(tmp_path), checkpoint_name(30)),
                  "w") as handle:
            handle.write("garbage")
        assert store.horizons() == [(10, 4), (20, 15)]
