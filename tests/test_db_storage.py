"""Tests for the storage layer: types, tables, indexes."""

from __future__ import annotations

import pytest

from repro.db.storage import Column, HashIndex, SqlType, Table
from repro.errors import TableError


class TestSqlType:
    def test_parse_aliases(self):
        assert SqlType.parse("INTEGER") is SqlType.INT
        assert SqlType.parse("varchar") is SqlType.TEXT
        assert SqlType.parse("DOUBLE") is SqlType.FLOAT
        assert SqlType.parse("boolean") is SqlType.BOOL

    def test_parse_unknown(self):
        with pytest.raises(TableError):
            SqlType.parse("BLOB")

    def test_coerce_null_passes(self):
        assert SqlType.INT.coerce(None) is None

    def test_coerce_int(self):
        assert SqlType.INT.coerce(3.0) == 3
        with pytest.raises(TableError):
            SqlType.INT.coerce(3.5)
        with pytest.raises(TableError):
            SqlType.INT.coerce(True)

    def test_coerce_float_widen(self):
        assert SqlType.FLOAT.coerce(2) == 2.0

    def test_coerce_text_strict(self):
        with pytest.raises(TableError):
            SqlType.TEXT.coerce(5)

    def test_coerce_bool(self):
        assert SqlType.BOOL.coerce(True) is True
        with pytest.raises(TableError):
            SqlType.BOOL.coerce(1)


def make_table() -> Table:
    return Table("t", [Column("a", SqlType.INT, primary_key=True),
                       Column("b", SqlType.TEXT),
                       Column("c", SqlType.FLOAT)])


class TestTable:
    def test_insert_list_and_dict(self):
        table = make_table()
        table.insert([1, "x", 1.5])
        table.insert({"a": 2, "b": "y", "c": 2.5})
        assert len(table) == 2

    def test_insert_wrong_arity(self):
        with pytest.raises(TableError, match="expects 3 values"):
            make_table().insert([1, "x"])

    def test_missing_columns_default_null(self):
        table = make_table()
        rowid = table.insert({"a": 1})
        assert table.row(rowid) == [1, None, None]

    def test_type_enforced(self):
        with pytest.raises(TableError):
            make_table().insert({"a": 1, "b": 5})

    def test_primary_key_uniqueness(self):
        table = make_table()
        table.insert({"a": 1})
        with pytest.raises(TableError, match="duplicate PRIMARY KEY"):
            table.insert({"a": 1})

    def test_primary_key_not_null(self):
        with pytest.raises(TableError, match="NULL"):
            make_table().insert({"b": "x"})

    def test_update_and_index_maintenance(self):
        table = make_table()
        table.create_index("b")
        rowid = table.insert({"a": 1, "b": "x"})
        table.update(rowid, {"b": "y"})
        assert table.lookup("b", "x") == []
        assert table.lookup("b", "y")[0][0] == rowid

    def test_update_primary_key_conflict(self):
        table = make_table()
        table.insert({"a": 1})
        rowid = table.insert({"a": 2})
        with pytest.raises(TableError, match="duplicate PRIMARY KEY"):
            table.update(rowid, {"a": 1})

    def test_update_primary_key_to_same_value_ok(self):
        table = make_table()
        rowid = table.insert({"a": 1})
        table.update(rowid, {"a": 1})

    def test_delete_removes_from_indexes(self):
        table = make_table()
        rowid = table.insert({"a": 1, "b": "x"})
        table.delete(rowid)
        assert len(table) == 0
        assert table.lookup("a", 1) == []
        with pytest.raises(TableError):
            table.row(rowid)

    def test_lookup_without_index_scans(self):
        table = make_table()
        table.insert({"a": 1, "b": "x"})
        table.insert({"a": 2, "b": "x"})
        assert len(table.lookup("b", "x")) == 2

    def test_create_index_backfills(self):
        table = make_table()
        table.insert({"a": 1, "b": "x"})
        table.create_index("b")
        index = table.index_for("b")
        assert index is not None and len(index) == 1

    def test_column_names_case_insensitive(self):
        table = make_table()
        assert table.column_position("A") == 0
        assert table.has_column("B")

    def test_unknown_column(self):
        with pytest.raises(TableError, match="no column"):
            make_table().column_position("zzz")

    def test_duplicate_column_rejected(self):
        with pytest.raises(TableError, match="duplicate column"):
            Table("t", [Column("a", SqlType.INT),
                        Column("A", SqlType.INT)])

    def test_two_primary_keys_rejected(self):
        with pytest.raises(TableError, match="at most one"):
            Table("t", [Column("a", SqlType.INT, primary_key=True),
                        Column("b", SqlType.INT, primary_key=True)])


class TestHashIndex:
    def test_add_remove(self):
        index = HashIndex("c")
        index.add(5, 1)
        index.add(5, 2)
        assert index.lookup(5) == {1, 2}
        index.remove(5, 1)
        assert index.lookup(5) == {2}
        index.remove(5, 2)
        assert index.lookup(5) == set()
        assert len(index) == 0
