"""Property-based engine tests: random queries over random streams.

Hypothesis generates a query from a small grammar (sequence length,
optional negation position, optional window, partitioned or not) plus a
random stream, and checks two properties:

1. **soundness** — every emitted match satisfies the language semantics
   (type order, strict timestamps, window, predicates, non-occurrence),
   verified directly against the raw stream;
2. **completeness** — the match set equals the brute-force oracle's.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze

from tests.helpers import binding_keys, composite_binding_keys, \
    oracle_matches

TYPES = ["A", "B", "C"]


def _registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    for name in TYPES:
        registry.declare(name, id=AttributeType.INT, v=AttributeType.INT)
    return registry


@st.composite
def query_specs(draw) -> str:
    length = draw(st.integers(min_value=1, max_value=3))
    variables = [f"e{index}" for index in range(length)]
    components = []
    for variable in variables:
        if draw(st.booleans()):
            name = draw(st.sampled_from(TYPES))
        else:  # an ANY component over two distinct types
            pair = draw(st.permutations(TYPES))[:2]
            name = f"ANY({pair[0]}, {pair[1]})"
        components.append(f"{name} {variable}")
    predicates: list[str] = []

    if length > 1 and draw(st.booleans()):  # negation somewhere
        position = draw(st.integers(min_value=0, max_value=length))
        neg_type = draw(st.sampled_from(TYPES))
        components.insert(position, f"!({neg_type} n)")
        if draw(st.booleans()):
            predicates.append(f"n.id = {variables[0]}.id")

    if length > 1 and draw(st.booleans()):  # partition equalities
        predicates.extend(f"{variables[0]}.id = {variable}.id"
                          for variable in variables[1:])
    if draw(st.booleans()):  # a selectivity filter
        threshold = draw(st.integers(min_value=0, max_value=9))
        predicates.append(f"{variables[0]}.v < {threshold}")
    if draw(st.booleans()):  # a cross-component comparison
        if length > 1:
            predicates.append(f"{variables[0]}.v <= {variables[-1]}.v")

    where = f" WHERE {' AND '.join(predicates)}" if predicates else ""
    window = ""
    if draw(st.booleans()):
        window = f" WITHIN {draw(st.integers(min_value=1, max_value=30))}"
    returns = " RETURN " + ", ".join(f"{variable}.id"
                                     for variable in variables)
    return f"EVENT SEQ({', '.join(components)}){where}{window}{returns}"


def _stream(seed: int, size: int) -> list[Event]:
    rng = random.Random(seed)
    events = []
    ts = 0.0
    for index in range(size):
        if rng.random() > 0.25:
            ts += rng.choice([0.5, 1.0, 3.0])
        events.append(Event(rng.choice(TYPES), ts,
                            {"id": rng.randrange(3),
                             "v": rng.randrange(10)}).with_seq(index))
    return events


@settings(max_examples=60, deadline=None)
@given(query_text=query_specs(),
       seed=st.integers(min_value=0, max_value=99_999),
       size=st.integers(min_value=0, max_value=30))
def test_random_query_matches_oracle(query_text, seed, size):
    registry = _registry()
    events = _stream(seed, size)
    analyzed = analyze(parse_query(query_text), registry)
    expected = binding_keys(oracle_matches(analyzed, events))
    engine = Engine(registry)
    got = composite_binding_keys(engine.run(query_text, events))
    assert got == expected, query_text


@settings(max_examples=30, deadline=None)
@given(query_text=query_specs(),
       seed=st.integers(min_value=0, max_value=99_999),
       size=st.integers(min_value=0, max_value=30))
def test_random_query_plan_equivalence(query_text, seed, size):
    registry = _registry()
    events = _stream(seed, size)
    engine = Engine(registry)
    reference = composite_binding_keys(engine.run(query_text, events))
    for config in (PlanConfig.naive(),
                   PlanConfig().without("window_pushdown"),
                   PlanConfig().without("partition_pushdown")):
        got = composite_binding_keys(
            engine.run(query_text, events, config=config))
        assert got == reference, (query_text, config)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=99_999),
       size=st.integers(min_value=0, max_value=40),
       window=st.integers(min_value=1, max_value=20))
def test_emitted_matches_are_sound(seed, size, window):
    """Direct soundness check against the raw stream, independent of the
    oracle's code paths."""
    registry = _registry()
    events = _stream(seed, size)
    query_text = (f"EVENT SEQ(A x, !(B n), C z) "
                  f"WHERE x.id = z.id AND n.id = x.id WITHIN {window} "
                  f"RETURN x.id")
    engine = Engine(registry)
    for composite in engine.run(query_text, events):
        x = composite.bindings["x"]
        z = composite.bindings["z"]
        assert isinstance(x, Event) and isinstance(z, Event)
        assert x.type == "A" and z.type == "C"
        assert x.timestamp < z.timestamp
        assert z.timestamp - x.timestamp <= window
        assert x["id"] == z["id"]
        blockers = [event for event in events
                    if event.type == "B" and event["id"] == x["id"]
                    and x.timestamp < event.timestamp < z.timestamp]
        assert not blockers
