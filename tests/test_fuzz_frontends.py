"""Fuzz tests: the language and SQL front ends never crash unexpectedly.

Whatever bytes arrive, the parsers must either succeed or raise their own
documented error types — never IndexError, RecursionError (for reasonable
inputs), or similar.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.sql_parser import parse_sql
from repro.errors import LanguageError, SqlError
from repro.lang.parser import parse_query

_token_soup = st.lists(
    st.sampled_from([
        "EVENT", "SEQ", "WHERE", "WITHIN", "RETURN", "FROM", "INTO",
        "AND", "OR", "NOT", "(", ")", ",", ".", "!", "+", "-", "*", "/",
        "=", "!=", "<", "<=", ">", ">=", "x", "y", "A", "B", "42", "3.5",
        "'txt'", "hours", "COUNT", "SUM", "_f", "TRUE", "∧",
    ]),
    max_size=25).map(" ".join)

_sql_soup = st.lists(
    st.sampled_from([
        "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
        "SET", "DELETE", "CREATE", "TABLE", "INDEX", "DROP", "GROUP",
        "ORDER", "BY", "LIMIT", "AND", "OR", "NOT", "NULL", "IS",
        "BETWEEN", "IN", "LIKE", "(", ")", ",", ".", "*", "=", "<", ";",
        "t", "a", "b", "7", "1.5", "'s'", "INT", "TEXT",
    ]),
    max_size=25).map(" ".join)


class TestQueryParserFuzz:
    @given(_token_soup)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_raises_only_language_errors(self, text):
        try:
            parse_query(text)
        except LanguageError:
            pass

    @given(st.text(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_raises_only_language_errors(self, text):
        try:
            parse_query(text)
        except LanguageError:
            pass

    @given(st.binary(max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_decoded_binary_never_crashes(self, blob):
        try:
            parse_query(blob.decode("utf-8", errors="replace"))
        except LanguageError:
            pass


class TestSqlParserFuzz:
    @given(_sql_soup)
    @settings(max_examples=300, deadline=None)
    def test_token_soup_raises_only_sql_errors(self, text):
        try:
            parse_sql(text)
        except SqlError:
            pass

    @given(st.text(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_raises_only_sql_errors(self, text):
        try:
            parse_sql(text)
        except SqlError:
            pass
