"""Tests combining Kleene closure with negation in one pattern."""

from __future__ import annotations

from repro.core.engine import run_query

from tests.helpers import make_events


class TestKleeneWithNegation:
    QUERY = ("EVENT SEQ(A a, !(D d), B+ b, C c) "
             "WHERE a.id = b.id AND a.id = c.id AND d.id = a.id "
             "WITHIN 100 RETURN COUNT(b) AS n")

    def _events(self, with_blocker: bool):
        spec = [("A", 1, {"id": 1, "v": 0})]
        if with_blocker:
            spec.append(("D", 2, {"id": 1, "v": 0}))
        spec.extend([
            ("B", 3, {"id": 1, "v": 0}),
            ("B", 4, {"id": 1, "v": 0}),
            ("C", 5, {"id": 1, "v": 0}),
        ])
        return make_events(spec)

    def test_negation_between_single_and_kleene(self, abc_registry):
        results = run_query(self.QUERY, abc_registry,
                            self._events(with_blocker=False))
        assert sorted(r["n"] for r in results) == [1, 2]

    def test_blocker_between_anchor_and_kleene_drops(self, abc_registry):
        # D at t=2 sits in the (a, first-b) interval: the negation
        # interval ends at the *first* event of the Kleene binding
        results = run_query(self.QUERY, abc_registry,
                            self._events(with_blocker=True))
        assert results == []

    def test_blocker_inside_kleene_run_is_allowed(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}),
            ("D", 3.5, {"id": 1, "v": 0}),   # after the first B
            ("B", 4, {"id": 1, "v": 0}),
            ("C", 5, {"id": 1, "v": 0}),
        ])
        results = run_query(self.QUERY, abc_registry, events)
        # bindings anchored at the first B are fine; the negation interval
        # (a.ts, first_b.ts) does not contain the D
        assert sorted(r["n"] for r in results) == [2]
        # the binding anchored at the second B is blocked: its interval
        # (1, 4) contains the D at 3.5


class TestNegationAfterKleene:
    QUERY = ("EVENT SEQ(A a, B+ b, !(D d), C c) "
             "WHERE a.id = b.id AND a.id = c.id AND d.id = a.id "
             "WITHIN 100 RETURN COUNT(b) AS n")

    def test_interval_starts_at_last_kleene_event(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 0}),
            ("D", 2.5, {"id": 1, "v": 0}),  # between the two Bs
            ("B", 3, {"id": 1, "v": 0}),
            ("C", 5, {"id": 1, "v": 0}),
        ])
        results = run_query(self.QUERY, abc_registry, events)
        # binding (b2,b3): interval (3, 5) has no D -> passes, n=2
        # binding (b3,): same interval -> passes, n=1
        # binding (b2,) alone: interval (2, 5) contains D -> blocked
        assert sorted(r["n"] for r in results) == [1, 2]

    def test_blocker_after_kleene_drops_all(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 0}),
            ("D", 4, {"id": 1, "v": 0}),
            ("C", 5, {"id": 1, "v": 0}),
        ])
        assert run_query(self.QUERY, abc_registry, events) == []


class TestTrailingNegationWithKleene:
    QUERY = ("EVENT SEQ(A a, B+ b, !(D d)) "
             "WHERE a.id = b.id AND d.id = a.id "
             "WITHIN 10 RETURN COUNT(b) AS n")

    def test_released_at_flush(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 0}),
            ("B", 3, {"id": 1, "v": 0}),
        ])
        results = run_query(self.QUERY, abc_registry, events)
        assert sorted(r["n"] for r in results) == [1, 1, 2]

    def test_blocker_after_last_kleene_event(self, abc_registry):
        events = make_events([
            ("A", 1, {"id": 1, "v": 0}),
            ("B", 2, {"id": 1, "v": 0}),
            ("D", 4, {"id": 1, "v": 0}),
        ])
        assert run_query(self.QUERY, abc_registry, events) == []
