"""Watermark advancement across streams and shards.

Trailing negation holds a match back until stream time passes the end of
its window.  In the classic runtime that time only moves when the query's
own stream sees an event (or ``advance_time`` is called); in the sharded
runtime the router broadcasts watermark ticks to shards that did not
receive an event.  These tests pin both down: explicit ``advance_time``
semantics, and differential sharded-vs-classic runs over INTO/FROM
topologies that mix derived streams with trailing negation.
"""

from __future__ import annotations

import pytest

from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor

BACKENDS_UNDER_TEST = ("inline", "thread", "process")

NEG_DEFAULT = ("EVENT SEQ(A x, !(B y)) WHERE x.id = y.id WITHIN 6 "
               "RETURN x.id")
HOT_PRODUCER = ("EVENT A x WHERE x.v > 5 "
                "RETURN Hot(x.id AS id, x.v AS v) INTO hots")
PAIR_CONSUMER = ("FROM hots EVENT SEQ(Hot p, Hot q) WHERE p.id = q.id "
                 "WITHIN 100 RETURN Pair(p.id AS id)")
NEG_CONSUMER = ("FROM hots EVENT SEQ(Hot p, !(Hot q)) "
                "WHERE p.id = q.id WITHIN 6 RETURN p.id")


def make_registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.declare("A", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("B", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("Hot", id=AttributeType.INT, v=AttributeType.INT)
    registry.declare("Pair", id=AttributeType.INT)
    return registry


def a(ts: float, id_: int, v: int = 9) -> Event:
    return Event("A", ts, {"id": id_, "v": v})


def b(ts: float, id_: int, v: int = 0) -> Event:
    return Event("B", ts, {"id": id_, "v": v})


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


def workload() -> list[Event]:
    """A/B events whose negation windows expire at staggered times.

    ids 0..3 get an A each round; only some get the matching B, so the
    rest mature as the stream (or a watermark) moves past ts+6.  The
    Hot stream sees every A with v > 5, which is every other one.
    """
    events: list[Event] = []
    ts = 0.0
    for round_no in range(12):
        for id_ in range(4):
            ts += 0.5
            events.append(a(ts, id_, v=9 if (id_ + round_no) % 2 else 3))
        if round_no % 3 != 2:          # some rounds leave ids unguarded
            ts += 0.25
            events.append(b(ts, round_no % 4))
    events.append(a(ts + 20.0, 99, v=9))   # long gap: everything matures
    return events


def run(sharding: ShardingConfig | None, queries) -> list:
    processor = ComplexEventProcessor(make_registry(), sharding=sharding)
    for name, text in queries:
        processor.register_monitoring_query(name, text)
    produced = []
    for event in workload():
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    return fingerprint(produced)


TOPOLOGIES = {
    "neg_plus_chain": (("neg", NEG_DEFAULT), ("hot", HOT_PRODUCER),
                       ("pairs", PAIR_CONSUMER)),
    "neg_on_derived": (("hot", HOT_PRODUCER), ("negd", NEG_CONSUMER)),
    "neg_both_streams": (("neg", NEG_DEFAULT), ("hot", HOT_PRODUCER),
                         ("negd", NEG_CONSUMER)),
}


class TestShardedWatermarksAcrossStreams:
    @pytest.fixture(scope="class")
    def baselines(self):
        return {key: run(None, queries)
                for key, queries in TOPOLOGIES.items()}

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_inline_matches_classic(self, baselines, topology, shards):
        sharded = run(ShardingConfig(shards=shards, backend="inline",
                                     batch_size=8),
                      TOPOLOGIES[topology])
        assert sharded == baselines[topology]

    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST[1:])
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_async_backends_match_classic(self, baselines, topology,
                                          backend):
        sharded = run(ShardingConfig(shards=2, backend=backend,
                                     batch_size=8, queue_capacity=4),
                      TOPOLOGIES[topology])
        assert sharded == baselines[topology]

    def test_results_maintain_negation_release_points(self, baselines):
        # Sanity on the workload itself: the negation queries actually
        # release matches mid-stream (not only at flush), so the
        # differential runs above exercise watermark paths for real.
        names = [name for name, *_ in baselines["neg_both_streams"]]
        assert "neg" in names and "negd" in names and "pairs" not in names
        assert names.count("neg") >= 4
        assert names.count("negd") >= 2


class TestAdvanceTime:
    def test_releases_matured_matches_once(self):
        processor = ComplexEventProcessor(make_registry())
        processor.register_monitoring_query("neg", NEG_DEFAULT)
        processor.feed(a(1.0, 7))
        assert processor.advance_time(5.0) == []   # window still open
        released = processor.advance_time(7.5)     # 1.0 + 6 < 7.5
        assert [(name, result["x_id"]) for name, result in released] \
            == [("neg", 7)]
        assert processor.advance_time(9.0) == []   # not released twice

    def test_negated_event_suppresses_release(self):
        processor = ComplexEventProcessor(make_registry())
        processor.register_monitoring_query("neg", NEG_DEFAULT)
        processor.feed(a(1.0, 7))
        processor.feed(b(2.0, 7))
        assert processor.advance_time(50.0) == []

    def test_only_filter_restricts_queries(self):
        processor = ComplexEventProcessor(make_registry())
        processor.register_monitoring_query("neg", NEG_DEFAULT)
        processor.register_monitoring_query("hot", HOT_PRODUCER)
        processor.register_monitoring_query("negd", NEG_CONSUMER)
        processor.feed(a(1.0, 7, v=9))   # arms both negation queries
        released = processor.advance_time(10.0, only={"negd"})
        assert [name for name, _ in released] == ["negd"]
        # The default-stream query still holds its match.
        released = processor.advance_time(10.0)
        assert [name for name, _ in released] == ["neg"]

    def test_advances_queries_on_every_stream(self):
        # advance_time is a global watermark: derived-stream queries see
        # it too, exactly like the sharded router's broadcast ticks.
        processor = ComplexEventProcessor(make_registry())
        processor.register_monitoring_query("hot", HOT_PRODUCER)
        processor.register_monitoring_query("negd", NEG_CONSUMER)
        processor.feed(a(1.0, 7, v=9))
        released = processor.advance_time(8.0)
        assert [(name, result["p_id"]) for name, result in released] \
            == [("negd", 7)]
