"""Seeded stress: random interleavings of register/withdraw/feed across
many tenants.  The invariant under test is isolation — every
registration episode's result stream is bit-identical to a solo run of
that query over exactly the events fed during its registration window —
with shared plans on and off."""

from __future__ import annotations

import random

import pytest

from repro.core.shared import SharedPlanConfig
from repro.events.event import Event
from repro.service import QueryService
from repro.service.core import result_to_wire
from repro.system.processor import ComplexEventProcessor

TEMPLATES = [
    # Three shared-compatible variants of one template.
    "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 10\n"
    "RETURN x.id, y.v",
    "EVENT SEQ(A p, B q)\nWHERE p.id = q.id\nWITHIN 10\n"
    "RETURN p.v, q.v",
    "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 10\n"
    "RETURN x.v + y.v",
    # Distinct plans: wider window, single type, negation, Kleene.
    "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 25\nRETURN y.v",
    "EVENT A x\nWITHIN 10\nRETURN x.id, x.v",
    "EVENT SEQ(A x, !(C z), B y)\nWHERE x.id = y.id AND z.id = x.id\n"
    "WITHIN 10\nRETURN x.id, y.v",
    "EVENT SEQ(A x, B+ ys, C z)\nWHERE x.id = z.id\nWITHIN 15\n"
    "RETURN x.id, z.v",
]


def _make_script(seed: int, n_events: int = 250, n_tenants: int = 6):
    """A deterministic interleaving plus the full event list."""
    rng = random.Random(seed)
    events = []
    ts = 0.0
    for _ in range(n_events):
        ts += rng.uniform(0.2, 1.2)
        events.append(Event(rng.choice("ABC"), ts,
                            {"id": rng.randrange(4),
                             "v": rng.randrange(50)}))
    script = []
    tenants = [f"t{index}" for index in range(n_tenants)]
    active: list[tuple[str, str, str]] = []
    counter = 0
    event_iter = iter(events)
    fed = 0
    while fed < n_events:
        roll = rng.random()
        if roll < 0.08 and len(active) < 12:
            tenant = rng.choice(tenants)
            counter += 1
            name = f"q{counter}"
            text = rng.choice(TEMPLATES)
            script.append(("register", tenant, name, text))
            active.append((tenant, name, text))
        elif roll < 0.12 and active:
            victim = active.pop(rng.randrange(len(active)))
            script.append(("withdraw", victim[0], victim[1]))
        else:
            script.append(("feed", next(event_iter)))
            fed += 1
    return script, events


def _run_service(abc_registry, script, shared: bool):
    """Run the interleaving; returns {(tenant, query): [wire results]}
    and the episode windows {(tenant, query): (text, start, end)}."""
    service = QueryService(
        abc_registry,
        shared_plans=SharedPlanConfig(enabled=shared))
    episodes: dict[tuple[str, str], tuple[str, int, int]] = {}
    fed = 0
    for step in script:
        if step[0] == "register":
            _, tenant, name, text = step
            service.register(tenant, name, text)
            episodes[(tenant, name)] = (text, fed, -1)
        elif step[0] == "withdraw":
            _, tenant, name = step
            service.withdraw(tenant, name)
            text, start, _ = episodes[(tenant, name)]
            episodes[(tenant, name)] = (text, start, fed)
        else:
            service.feed(step[1])
            fed += 1
    for key, (text, start, end) in episodes.items():
        if end < 0:
            episodes[key] = (text, start, fed)
    collected: dict[tuple[str, str], list[dict]] = {
        key: [] for key in episodes}
    for tenant in service.tenants():
        for result in service.drain(tenant):
            collected[(tenant, result["query"])].append(result)
    return collected, episodes


def _solo_run(abc_registry, tenant, name, text, events) -> list[dict]:
    """The oracle: the same query alone over the same event slice."""
    processor = ComplexEventProcessor(abc_registry)
    produced: list[dict] = []
    processor.register(
        f"{tenant}/{name}", text,
        on_result=lambda _q, result: produced.append(
            result_to_wire(tenant, name, result)))
    for event in events:
        processor.feed(event)
    return produced


@pytest.mark.parametrize("seed", [3, 17, 42])
@pytest.mark.parametrize("shared", [True, False],
                         ids=["shared", "independent"])
def test_interleavings_match_solo_runs(abc_registry, seed, shared):
    script, events = _make_script(seed)
    collected, episodes = _run_service(abc_registry, script, shared)
    assert episodes, "script registered no queries"
    checked_nonempty = 0
    for (tenant, name), (text, start, end) in episodes.items():
        expected = _solo_run(abc_registry, tenant, name, text,
                             events[start:end])
        assert collected[(tenant, name)] == expected, \
            f"{tenant}/{name} diverged from its solo run (seed {seed})"
        if expected:
            checked_nonempty += 1
    assert checked_nonempty >= 3, \
        "stress script too weak: almost no episodes produced results"


@pytest.mark.parametrize("seed", [5, 23])
def test_shared_and_independent_agree(abc_registry, seed):
    script, _ = _make_script(seed)
    with_shared, _ = _run_service(abc_registry, script, True)
    without, _ = _run_service(abc_registry, script, False)
    assert with_shared == without
