"""Tests for the SASE language lexer."""

from __future__ import annotations

import pytest

from repro.errors import LexerError
from repro.lang.lexer import Lexer, TokenType


def kinds(text: str) -> list[TokenType]:
    return [token.type for token in Lexer(text).tokenize()]


def texts(text: str) -> list[str]:
    return [token.text for token in Lexer(text).tokenize()
            if token.type is not TokenType.EOF]


class TestLexer:
    def test_keywords_case_insensitive(self):
        assert kinds("event EVENT Event")[:3] == [TokenType.EVENT] * 3

    def test_identifiers_preserved(self):
        tokens = Lexer("SHELF_READING x").tokenize()
        assert tokens[0].text == "SHELF_READING"
        assert tokens[1].text == "x"

    def test_integer_and_float(self):
        tokens = Lexer("42 3.14").tokenize()
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.14

    def test_string_literals(self):
        tokens = Lexer("'hello' \"world\"").tokenize()
        assert tokens[0].value == "hello"
        assert tokens[1].value == "world"

    def test_string_escape_by_doubling(self):
        tokens = Lexer("'it''s'").tokenize()
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError, match="unterminated"):
            Lexer("'oops").tokenize()

    def test_comparison_operators(self):
        assert kinds("= != <> < <= > >=")[:7] == [
            TokenType.EQ, TokenType.NEQ, TokenType.NEQ, TokenType.LT,
            TokenType.LTE, TokenType.GT, TokenType.GTE]

    def test_unicode_logical_operators(self):
        # the paper prints WHERE clauses with the mathematical wedge
        assert kinds("∧ ∨ && ||")[:4] == [
            TokenType.AND, TokenType.OR, TokenType.AND, TokenType.OR]

    def test_punctuation(self):
        assert kinds("( ) , . ! +")[:6] == [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.COMMA,
            TokenType.DOT, TokenType.BANG, TokenType.PLUS]

    def test_comments_skipped(self):
        assert texts("EVENT -- a comment\n A x") == ["EVENT", "A", "x"]

    def test_booleans(self):
        tokens = Lexer("TRUE false").tokenize()
        assert tokens[0].value is True
        assert tokens[1].value is False

    def test_unexpected_character(self):
        with pytest.raises(LexerError, match="unexpected character"):
            Lexer("EVENT @").tokenize()

    def test_error_carries_location(self):
        with pytest.raises(LexerError, match="line 2"):
            Lexer("EVENT\n  #").tokenize()

    def test_eof_always_last(self):
        assert kinds("")[-1] is TokenType.EOF
        assert kinds("EVENT")[-1] is TokenType.EOF

    def test_number_attached_dot(self):
        tokens = Lexer("x.y 1.5").tokenize()
        assert [t.type for t in tokens[:3]] == [
            TokenType.IDENT, TokenType.DOT, TokenType.IDENT]
        assert tokens[3].value == 1.5
