"""Tests for the console UI panels."""

from __future__ import annotations

from repro.ons import ObjectNameService
from repro.rfid import default_retail_layout
from repro.rfid.simulator import RawReading
from repro.rfid.tags import encode_epc
from repro.system import SaseSystem
from repro.ui import Panel, SaseConsole, render_panel


def make_system() -> SaseSystem:
    ons = ObjectNameService()
    ons.register_product(100, "soap", home_area_id=1)
    system = SaseSystem(default_retail_layout(), ons)
    system.register_monitoring_query(
        "shelf", "EVENT SHELF_READING x RETURN x.TagId")
    system.process_tick([RawReading(encode_epc(100), "R1", 1.0)], now=1.0)
    return system


class TestRenderPanel:
    def test_box_shape(self):
        text = render_panel(Panel("Title", ["line one"]), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("┌─ Title")
        assert lines[-1].startswith("└")
        assert all(len(line) == 40 for line in lines)

    def test_empty_panel(self):
        assert "(empty)" in render_panel(Panel("T", []))

    def test_long_lines_clipped(self):
        text = render_panel(Panel("T", ["x" * 500]), width=30)
        assert all(len(line) == 30 for line in text.splitlines())
        assert "…" in text

    def test_max_lines_keeps_most_recent(self):
        panel = Panel("T", [f"line{i}" for i in range(20)])
        text = render_panel(panel, max_lines=3)
        assert "line19" in text and "line0" not in text


class TestSaseConsole:
    def test_five_panels_rendered(self):
        console = SaseConsole(make_system())
        text = console.render()
        for title in ("Present Queries", "Message Results",
                      "Cleaning and Association Layer Output",
                      "Database Report", "Stream Processor Output"):
            assert title in text

    def test_present_queries_lists_registrations(self):
        console = SaseConsole(make_system())
        panel = console.present_queries()
        assert any("shelf [monitoring]" in line for line in panel.lines)

    def test_stream_output_shows_attributes(self):
        console = SaseConsole(make_system())
        panel = console.stream_processor_output()
        assert any("x_TagId=100" in line for line in panel.lines)

    def test_cleaning_output_shows_events(self):
        console = SaseConsole(make_system())
        panel = console.cleaning_output()
        assert any("SHELF_READING" in line for line in panel.lines)
