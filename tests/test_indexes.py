"""Tests for the temporal and partitioned indexes."""

from __future__ import annotations


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.events.event import Event
from repro.indexes import Interval, PartitionedTimeIndex, TimeIndex


class TestInterval:
    def test_inclusive_bounds(self):
        interval = Interval(1.0, 2.0)
        assert interval.contains(1.0) and interval.contains(2.0)

    def test_exclusive_bounds(self):
        interval = Interval(1.0, 2.0, low_inclusive=False,
                            high_inclusive=False)
        assert not interval.contains(1.0)
        assert not interval.contains(2.0)
        assert interval.contains(1.5)

    def test_unbounded_default(self):
        assert Interval().contains(1e18)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)


class TestTimeIndex:
    def _index(self, *timestamps: float) -> TimeIndex:
        index = TimeIndex()
        for ts in timestamps:
            index.append(Event("N", ts))
        return index

    def test_append_out_of_order_rejected(self):
        index = self._index(1.0, 2.0)
        with pytest.raises(StreamError):
            index.append(Event("N", 1.5))

    def test_ties_allowed(self):
        assert len(self._index(1.0, 1.0, 1.0)) == 3

    def test_range_inclusive_exclusive(self):
        index = self._index(1.0, 2.0, 3.0, 4.0)
        closed = index.range(Interval(2.0, 3.0))
        assert [event.timestamp for event in closed] == [2.0, 3.0]
        open_interval = Interval(2.0, 3.0, low_inclusive=False,
                                 high_inclusive=False)
        assert index.range(open_interval) == []

    def test_exists_and_count(self):
        index = self._index(1.0, 2.0, 3.0)
        assert index.exists(Interval(1.5, 2.5))
        assert not index.exists(Interval(3.5, 9.0))
        assert index.count(Interval(0.0, 10.0)) == 3

    def test_prune(self):
        index = self._index(1.0, 2.0, 3.0)
        assert index.prune_before(2.0) == 1
        assert index.earliest == 2.0 and index.latest == 3.0

    def test_empty_index(self):
        index = TimeIndex()
        assert index.earliest is None and index.latest is None
        assert not index.exists(Interval())

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), max_size=40),
           st.floats(min_value=-10, max_value=110, allow_nan=False),
           st.floats(min_value=-10, max_value=110, allow_nan=False),
           st.booleans(), st.booleans())
    def test_range_matches_bruteforce(self, timestamps, bound_a, bound_b,
                                      low_inclusive, high_inclusive):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        interval = Interval(low, high, low_inclusive=low_inclusive,
                            high_inclusive=high_inclusive)
        ordered = sorted(timestamps)
        index = TimeIndex()
        for ts in ordered:
            index.append(Event("N", ts))
        got = [event.timestamp for event in index.range(interval)]
        expected = [ts for ts in ordered if interval.contains(ts)]
        assert got == expected
        assert index.exists(interval) == bool(expected)
        assert index.count(interval) == len(expected)


class TestPartitionedTimeIndex:
    def _index(self) -> PartitionedTimeIndex:
        index = PartitionedTimeIndex("id")
        for ts, key in [(1.0, 1), (2.0, 2), (3.0, 1), (4.0, 3)]:
            index.append(Event("N", ts, {"id": key}))
        return index

    def test_partition_isolation(self):
        index = self._index()
        assert index.exists(1, Interval(0.5, 1.5))
        assert not index.exists(2, Interval(0.5, 1.5))
        assert index.range(1, Interval()) and len(index) == 4
        assert index.partition_count == 3

    def test_missing_key_partition(self):
        index = self._index()
        assert index.range(99, Interval()) == []
        assert index.partition(99) is None

    def test_event_without_attribute_goes_to_none(self):
        index = PartitionedTimeIndex("id")
        index.append(Event("N", 1.0))
        assert index.exists(None, Interval())

    def test_prune_removes_empty_partitions(self):
        index = self._index()
        dropped = index.prune_before(3.5)
        assert dropped == 3
        assert index.partition_count == 1
        assert set(index.keys()) == {3}
