"""Tests for the extended SQL predicates: BETWEEN, IN, LIKE."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.errors import SqlError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE p (id INT PRIMARY KEY, name TEXT, price FLOAT)")
    database.execute(
        "INSERT INTO p VALUES (1, 'soap bar', 1.5), "
        "(2, 'soap dish', 4.0), (3, 'shampoo', 6.5), "
        "(4, 'towel', 9.0), (5, NULL, NULL)")
    return database


class TestBetween:
    def test_inclusive_bounds(self, db):
        rows = db.query("SELECT id FROM p WHERE price BETWEEN 1.5 AND 6.5")
        assert [row["id"] for row in rows] == [1, 2, 3]

    def test_not_between(self, db):
        rows = db.query(
            "SELECT id FROM p WHERE price NOT BETWEEN 1.5 AND 6.5")
        assert [row["id"] for row in rows] == [4]

    def test_null_never_between(self, db):
        rows = db.query(
            "SELECT id FROM p WHERE price BETWEEN -100 AND 100")
        assert 5 not in [row["id"] for row in rows]

    def test_between_with_expressions(self, db):
        rows = db.query(
            "SELECT id FROM p WHERE price BETWEEN 2 + 2 AND 3 * 3")
        assert [row["id"] for row in rows] == [2, 3, 4]


class TestIn:
    def test_in_list(self, db):
        rows = db.query("SELECT name FROM p WHERE id IN (1, 3, 99)")
        assert [row["name"] for row in rows] == ["soap bar", "shampoo"]

    def test_not_in(self, db):
        rows = db.query("SELECT id FROM p WHERE id NOT IN (1, 2, 3)")
        assert [row["id"] for row in rows] == [4, 5]

    def test_in_strings(self, db):
        rows = db.query(
            "SELECT id FROM p WHERE name IN ('towel', 'shampoo')")
        assert [row["id"] for row in rows] == [3, 4]

    def test_null_operand_never_in(self, db):
        rows = db.query("SELECT id FROM p WHERE name IN ('x')")
        assert rows == []


class TestLike:
    def test_prefix_pattern(self, db):
        rows = db.query("SELECT id FROM p WHERE name LIKE 'soap%'")
        assert [row["id"] for row in rows] == [1, 2]

    def test_underscore_single_character(self, db):
        rows = db.query("SELECT id FROM p WHERE name LIKE 'soap _ish'")
        assert [row["id"] for row in rows] == [2]

    def test_contains_pattern(self, db):
        rows = db.query("SELECT id FROM p WHERE name LIKE '%am%'")
        assert [row["id"] for row in rows] == [3]

    def test_not_like(self, db):
        rows = db.query("SELECT id FROM p WHERE name NOT LIKE 'soap%'")
        assert [row["id"] for row in rows] == [3, 4]

    def test_regex_metacharacters_are_literal(self, db):
        db.execute("INSERT INTO p VALUES (6, 'a.c', 0.0)")
        rows = db.query("SELECT id FROM p WHERE name LIKE 'a.c'")
        assert [row["id"] for row in rows] == [6]
        assert db.query("SELECT id FROM p WHERE name LIKE 'abc'") == []

    def test_like_on_null_is_false(self, db):
        rows = db.query("SELECT id FROM p WHERE name LIKE '%'")
        assert 5 not in [row["id"] for row in rows]

    def test_like_requires_string_pattern(self, db):
        with pytest.raises(SqlError, match="string pattern"):
            db.query("SELECT id FROM p WHERE name LIKE 5")

    def test_like_on_number_rejected(self, db):
        with pytest.raises(SqlError, match="applies to text"):
            db.query("SELECT id FROM p WHERE price LIKE '1%'")


class TestCombinations:
    def test_mixed_with_and_or(self, db):
        rows = db.query(
            "SELECT id FROM p WHERE name LIKE 'soap%' AND "
            "price BETWEEN 2 AND 5 OR id IN (4)")
        assert [row["id"] for row in rows] == [2, 4]

    def test_dangling_not_rejected(self, db):
        with pytest.raises(SqlError):
            db.query("SELECT id FROM p WHERE id NOT 5")

    def test_in_update_where(self, db):
        affected = db.execute(
            "UPDATE p SET price = 0 WHERE name LIKE 'soap%'").affected
        assert affected == 2
