"""Shared-plan evaluation: signatures, grouping, and the differential
guarantee that shared results are identical to independent evaluation."""

from __future__ import annotations

import random

import pytest

from repro.core.plan import PlanConfig
from repro.core.shared import SharedPlanConfig, plan_signature
from repro.events.event import Event
from repro.system.processor import ComplexEventProcessor

from tests.helpers import make_events


def _random_events(seed: int, count: int, types=("A", "B", "C"),
                   id_domain: int = 4) -> list[Event]:
    rng = random.Random(seed)
    spec = []
    ts = 0.0
    for _ in range(count):
        ts += rng.uniform(0.1, 1.5)
        spec.append((rng.choice(types), ts,
                     {"id": rng.randrange(id_domain),
                      "v": rng.randrange(100)}))
    return make_events(spec)


def _run(registry, queries, events, shared: bool, flush: bool = True):
    """Feed *events* to all *queries*; returns {name: [result keys]}."""
    processor = ComplexEventProcessor(
        registry,
        shared_plans=SharedPlanConfig() if shared else None)
    collected: dict[str, list] = {name: [] for name, _ in queries}
    for name, text in queries:
        processor.register(name, text)
    for event in events:
        for name, result in processor.feed(event):
            collected[name].append(_key(result))
    if flush:
        for name, result in processor.flush():
            collected[name].append(_key(result))
    return processor, collected


def _key(result):
    return (result.type, tuple(sorted(result.attributes.items())),
            result.start, result.end)


QUERY_CORPUS = [
    # Same template, different variable names and RETURNs: one group.
    ("pairs_xy", "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\n"
                 "WITHIN 10\nRETURN x.id, y.v"),
    ("pairs_pq", "EVENT SEQ(A p, B q)\nWHERE p.id = q.id\n"
                 "WITHIN 10\nRETURN q.v, p.v"),
    ("pairs_sum", "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\n"
                  "WITHIN 10\nRETURN x.id, x.v + y.v"),
    # Different window: must not share with the group above.
    ("pairs_wide", "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\n"
                   "WITHIN 20\nRETURN x.id, y.v"),
    # Negation.
    ("no_c", "EVENT SEQ(A x, !(C z), B y)\nWHERE x.id = y.id "
             "AND z.id = x.id\nWITHIN 10\nRETURN x.id, y.v"),
    ("no_c_2", "EVENT SEQ(A a, !(C n), B b)\nWHERE a.id = b.id "
               "AND n.id = a.id\nWITHIN 10\nRETURN b.v"),
    # Kleene closure.
    ("kleene", "EVENT SEQ(A x, B+ ys, C z)\nWHERE x.id = z.id\n"
               "WITHIN 15\nRETURN x.id, z.v"),
]


class TestDifferential:
    def test_corpus_shared_equals_independent(self, abc_registry):
        events = _random_events(seed=7, count=400)
        _, with_shared = _run(abc_registry, QUERY_CORPUS, events, True)
        _, without = _run(abc_registry, QUERY_CORPUS, events, False)
        assert with_shared == without
        assert any(with_shared[name] for name, _ in QUERY_CORPUS)

    def test_groups_formed_as_expected(self, abc_registry):
        processor, _ = _run(abc_registry, QUERY_CORPUS, [], True,
                            flush=False)
        report = processor.shared_plan_report()
        assert report["enabled"]
        # pairs_{xy,pq,sum} share; no_c{,_2} share; pairs_wide and
        # kleene stand alone (kleene forms its own 1-member group).
        assert report["max_fanout"] == 3
        by_group: dict[int, int] = {}
        for registered in processor.queries():
            if registered.shared_group is not None:
                group_id = id(registered.shared_group)
                by_group[group_id] = by_group.get(group_id, 0) + 1
        assert sorted(by_group.values()) == [1, 1, 2, 3]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_partitioned_queries_share(self, abc_registry, seed):
        queries = [
            ("p1", "EVENT SEQ(A x, B y, C z)\nWHERE x.id = y.id AND "
                   "y.id = z.id\nWITHIN 10\nRETURN x.id, z.v"),
            ("p2", "EVENT SEQ(A m, B n, C o)\nWHERE m.id = n.id AND "
                   "n.id = o.id\nWITHIN 10\nRETURN m.v"),
        ]
        events = _random_events(seed=seed, count=300)
        processor, with_shared = _run(abc_registry, queries, events,
                                      True)
        _, without = _run(abc_registry, queries, events, False)
        assert with_shared == without
        assert processor.shared_plan_report()["max_fanout"] == 2


class TestSignatures:
    def _signature(self, registry, text, shared=None):
        processor = ComplexEventProcessor(registry)
        compiled = processor.compile(text)
        return plan_signature(compiled.analyzed, compiled.plan.config,
                              shared or SharedPlanConfig())

    def test_variable_renaming_is_positional(self, abc_registry):
        first = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\n"
                          "WITHIN 10\nRETURN x.id")
        second = self._signature(
            abc_registry, "EVENT SEQ(A p, B q)\nWHERE p.id = q.id\n"
                          "WITHIN 10\nRETURN q.v, p.v")
        assert first == second

    def test_return_clause_excluded(self, abc_registry):
        first = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWITHIN 10\n"
                          "RETURN x.id")
        second = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWITHIN 10\n"
                          "RETURN y.v, x.v + y.v")
        assert first == second

    def test_window_distinguishes(self, abc_registry):
        first = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWITHIN 10\nRETURN x.id")
        second = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWITHIN 11\nRETURN x.id")
        assert first != second

    def test_predicates_distinguish(self, abc_registry):
        first = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWHERE x.v > 5\n"
                          "WITHIN 10\nRETURN x.id")
        second = self._signature(
            abc_registry, "EVENT SEQ(A x, B y)\nWHERE x.v > 6\n"
                          "WITHIN 10\nRETURN x.id")
        assert first != second

    def test_function_calls_block_sharing_by_default(self, retail_schemas):
        text = ("EVENT SHELF_READING x\n"
                "WHERE _odd(x.TagId)\nWITHIN 10\nRETURN x.TagId")
        assert self._signature(retail_schemas, text) is None
        opted_in = self._signature(
            retail_schemas, text,
            SharedPlanConfig(share_function_queries=True))
        assert opted_in is not None

    def test_plan_config_distinguishes(self, abc_registry):
        processor = ComplexEventProcessor(abc_registry)
        text = "EVENT SEQ(A x, B y)\nWITHIN 10\nRETURN x.id"
        default = processor.compile(text)
        naive = processor.compile(text, PlanConfig.naive())
        shared = SharedPlanConfig()
        assert plan_signature(default.analyzed, default.plan.config,
                              shared) \
            != plan_signature(naive.analyzed, naive.plan.config, shared)


class TestLifecycleInteraction:
    TEXT = "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 10\n" \
           "RETURN x.id, y.v"

    def test_warm_group_is_never_joined(self, abc_registry):
        processor = ComplexEventProcessor(
            abc_registry, shared_plans=SharedPlanConfig())
        early = processor.register("early", self.TEXT)
        # Start a partial match before the second query arrives.
        processor.feed(Event("A", 1.0, {"id": 1, "v": 1}))
        late = processor.register("late", self.TEXT)
        assert late.shared_group is not early.shared_group
        results = processor.feed(Event("B", 2.0, {"id": 1, "v": 2}))
        # Only the early query saw the A; the late one must not match.
        assert [name for name, _ in results] == ["early"]

    def test_mid_stream_registration_differential(self, abc_registry):
        """A query registered mid-stream produces exactly what an
        independent runtime registered at the same point produces."""
        events = _random_events(seed=11, count=200, types=("A", "B"))
        for shared in (True, False):
            processor = ComplexEventProcessor(
                abc_registry,
                shared_plans=SharedPlanConfig() if shared else None)
            processor.register("fixture", self.TEXT)
            collected: dict[str, list] = {"fixture": [], "late": []}
            for index, event in enumerate(events):
                if index == 100:
                    processor.register("late", self.TEXT)
                for name, result in processor.feed(event):
                    collected[name].append(_key(result))
            if shared:
                shared_run = collected
            else:
                independent_run = collected
        assert shared_run == independent_run
        assert shared_run["late"]  # it does match after joining

    def test_deregistration_drops_empty_groups(self, abc_registry):
        processor = ComplexEventProcessor(
            abc_registry, shared_plans=SharedPlanConfig())
        processor.register("one", self.TEXT)
        processor.register("two", self.TEXT)
        assert processor.shared_plan_report()["groups"] == 1
        processor.deregister("one")
        assert processor.shared_plan_report()["max_fanout"] == 1
        processor.deregister("two")
        report = processor.shared_plan_report()
        assert report["groups"] == 0
        assert not processor._shared_groups

    def test_survivor_keeps_matching_after_partner_leaves(
            self, abc_registry):
        processor = ComplexEventProcessor(
            abc_registry, shared_plans=SharedPlanConfig())
        processor.register("stays", self.TEXT)
        processor.register("leaves", self.TEXT)
        processor.feed(Event("A", 1.0, {"id": 1, "v": 1}))
        processor.deregister("leaves")
        results = processor.feed(Event("B", 2.0, {"id": 1, "v": 2}))
        assert [name for name, _ in results] == ["stays"]

    def test_sharding_disables_sharing(self, abc_registry):
        from repro.sharding import ShardingConfig
        processor = ComplexEventProcessor(
            abc_registry, shared_plans=SharedPlanConfig(),
            sharding=ShardingConfig(shards=2, backend="inline"))
        registered = processor.register("q", self.TEXT)
        assert registered.shared_group is None
