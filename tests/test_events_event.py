"""Tests for Event and CompositeEvent."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.events.event import CompositeEvent, Event
from repro.events.model import AttributeType, EventSchema


class TestEvent:
    def test_basic_fields(self):
        event = Event("A", 3.5, {"x": 1})
        assert event.type == "A"
        assert event.timestamp == 3.5
        assert event["x"] == 1
        assert event.seq == -1

    def test_immutable(self):
        event = Event("A", 1.0)
        with pytest.raises(AttributeError):
            event.timestamp = 2.0

    def test_with_seq_copies(self):
        event = Event("A", 1.0, {"x": 1})
        sequenced = event.with_seq(5)
        assert sequenced.seq == 5 and event.seq == -1
        assert sequenced.attributes == event.attributes

    def test_getitem_missing_raises(self):
        event = Event("A", 1.0, {"x": 1})
        with pytest.raises(SchemaError, match="no attribute 'y'"):
            event["y"]

    def test_get_with_default(self):
        event = Event("A", 1.0, {"x": 1})
        assert event.get("y", 7) == 7

    def test_contains(self):
        event = Event("A", 1.0, {"x": 1})
        assert "x" in event and "y" not in event

    def test_matches_schema(self):
        schema = EventSchema("A", [("x", AttributeType.INT)])
        assert Event("A", 1.0, {"x": 1}).matches_schema(schema)
        assert not Event("B", 1.0, {"x": 1}).matches_schema(schema)
        assert not Event("A", 1.0, {"x": "bad"}).matches_schema(schema)
        assert not Event("A", 1.0, {}).matches_schema(schema)

    def test_attributes_are_copied(self):
        payload = {"x": 1}
        event = Event("A", 1.0, payload)
        payload["x"] = 99
        assert event["x"] == 1

    def test_equality(self):
        assert Event("A", 1.0, {"x": 1}) == Event("A", 1.0, {"x": 1})
        assert Event("A", 1.0, {"x": 1}) != Event("A", 1.0, {"x": 2})
        assert Event("A", 1.0).with_seq(1) != Event("A", 1.0).with_seq(2)

    def test_hashable(self):
        assert len({Event("A", 1.0, {"x": 1}),
                    Event("A", 1.0, {"x": 1})}) == 1


class TestCompositeEvent:
    def _make(self) -> CompositeEvent:
        first = Event("A", 1.0, {"x": 1})
        last = Event("B", 4.0, {"y": 2})
        return CompositeEvent("Alert", {"value": 3},
                              {"a": first, "b": last}, 1.0, 4.0,
                              stream="alerts")

    def test_timestamp_is_end(self):
        assert self._make().timestamp == 4.0

    def test_attribute_access(self):
        composite = self._make()
        assert composite["value"] == 3
        assert composite.get("missing") is None
        assert "value" in composite
        with pytest.raises(SchemaError):
            composite["missing"]

    def test_bindings_preserved(self):
        composite = self._make()
        assert composite.bindings["a"].type == "A"

    def test_to_event_projects_scalars(self):
        composite = CompositeEvent(
            "Alert", {"n": 1, "obj": object()}, {}, 1.0, 4.0)
        event = composite.to_event()
        assert event.type == "Alert"
        assert event.timestamp == 4.0
        assert event.attributes == {"n": 1}

    def test_equality(self):
        assert self._make() == self._make()
