"""Long-run properties: determinism and bounded state under windows."""

from __future__ import annotations

import random

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.events.event import Event

from tests.helpers import result_keys

QUERY = ("EVENT SEQ(A x, !(B n), C z) WHERE x.id = z.id AND "
         "n.id = x.id WITHIN 25 RETURN x.id")


def long_stream(n: int, seed: int = 3) -> list[Event]:
    rng = random.Random(seed)
    events = []
    ts = 0.0
    for index in range(n):
        ts += rng.random() * 2
        events.append(Event(
            rng.choice(["A", "B", "C"]), round(ts, 3),
            {"id": rng.randrange(20), "v": rng.randrange(10)},
        ).with_seq(index))
    return events


class TestDeterminism:
    def test_two_runs_identical(self, abc_registry):
        events = long_stream(2000)
        engine = Engine(abc_registry)
        first = result_keys(engine.run(QUERY, events))
        second = result_keys(engine.run(QUERY, events))
        assert first == second and first  # non-empty and stable

    def test_output_order_is_deterministic(self, abc_registry):
        events = long_stream(1000)
        engine = Engine(abc_registry)
        first = [composite.attributes
                 for composite in engine.run(QUERY, events)]
        second = [composite.attributes
                  for composite in engine.run(QUERY, events)]
        assert first == second


class TestBoundedState:
    def test_stacks_bounded_by_window(self, abc_registry):
        """With window pushdown, live instances track the window's
        population, not the stream length."""
        engine = Engine(abc_registry)
        runtime = engine.runtime(QUERY,
                                 config=PlanConfig(prune_interval=64))
        events = long_stream(6000)
        for event in events:
            runtime.feed(event)
        # mean gap ~1s, window 25s: ~25 live events; generous ceiling
        assert runtime.stack_instances < 400
        assert runtime.pending_negations == 0  # middle negation only

    def test_unbounded_without_pushdown(self, abc_registry):
        engine = Engine(abc_registry)
        runtime = engine.runtime(
            QUERY, config=PlanConfig().without("window_pushdown"))
        events = long_stream(3000)
        for event in events:
            runtime.feed(event)
        # no pruning: roughly every A and C event is still resident
        assert runtime.stack_instances > 1000

    def test_trailing_negation_pending_bounded(self, abc_registry):
        query = ("EVENT SEQ(A x, !(B n)) WHERE x.id = n.id WITHIN 25 "
                 "RETURN x.id")
        engine = Engine(abc_registry)
        runtime = engine.runtime(query)
        peak_pending = 0
        for event in long_stream(4000):
            runtime.feed(event)
            peak_pending = max(peak_pending, runtime.pending_negations)
        # pending matches live at most one window; ~25 events per window
        # of which ~a third are As
        assert peak_pending < 200
        runtime.flush()
        assert runtime.pending_negations == 0


class TestRunAllHarness:
    def test_run_all_subset(self, capsys):
        import importlib
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path("benchmarks").resolve()))
        try:
            module = importlib.import_module("run_all_experiments")
            assert module.main(["--only", "E7"]) == 0
        finally:
            sys.path.pop(0)
        captured = capsys.readouterr().out
        assert "E7" in captured and "negation position" in captured
