"""Tests for the pattern NFA model and compiler."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.events.event import Event
from repro.lang.parser import parse_query
from repro.nfa import compile_pattern
from repro.nfa.model import TransitionKind


def nfa_for(pattern_text: str):
    return compile_pattern(parse_query(f"EVENT {pattern_text}").pattern)


class TestCompiler:
    def test_state_count(self):
        nfa = nfa_for("SEQ(A a, B b, C c)")
        assert nfa.size == 4
        assert nfa.start.index == 0
        assert nfa.accepting.is_accepting

    def test_negated_components_excluded(self):
        nfa = nfa_for("SEQ(A a, !(B b), C c)")
        assert nfa.component_types == ("A", "C")
        assert nfa.size == 3

    def test_take_and_ignore_edges(self):
        nfa = nfa_for("SEQ(A a, B b)")
        kinds = {transition.kind for transition in
                 nfa.states[0].transitions}
        assert kinds == {TransitionKind.TAKE, TransitionKind.IGNORE}

    def test_kleene_self_loop(self):
        nfa = nfa_for("SEQ(A a, B+ b)")
        loop = [transition for transition in nfa.states[2].transitions
                if transition.kind is TransitionKind.KLEENE_TAKE]
        assert len(loop) == 1 and loop[0].event_type == "B"
        assert nfa.kleene_components == frozenset({1})

    def test_repeated_type(self):
        nfa = nfa_for("SEQ(A a, A b)")
        assert nfa.component_for_type("A") == [0, 1]

    def test_no_positive_components_rejected(self):
        from repro.lang.ast import PatternComponent, SeqPattern
        # SeqPattern itself refuses all-negated patterns; bypass its
        # validation to exercise the compiler's own guard.
        pattern = object.__new__(SeqPattern)
        object.__setattr__(pattern, "components",
                           (PatternComponent("A", "a", negated=True),))
        with pytest.raises(PlanError):
            compile_pattern(pattern)


class TestAcceptance:
    def _events(self, *types_ts):
        return [Event(name, ts) for name, ts in types_ts]

    def test_accepts_exact_sequence(self):
        nfa = nfa_for("SEQ(A a, B b)")
        assert nfa.accepts(self._events(("A", 1), ("B", 2)))

    def test_rejects_wrong_order(self):
        nfa = nfa_for("SEQ(A a, B b)")
        assert not nfa.accepts(self._events(("B", 1), ("A", 2)))

    def test_rejects_equal_timestamps(self):
        nfa = nfa_for("SEQ(A a, B b)")
        assert not nfa.accepts(self._events(("A", 1), ("B", 1)))

    def test_rejects_extra_selected_event(self):
        nfa = nfa_for("SEQ(A a, B b)")
        assert not nfa.accepts(
            self._events(("A", 1), ("A", 2), ("B", 3)))

    def test_kleene_absorbs_repeats(self):
        nfa = nfa_for("SEQ(A a, B+ b)")
        assert nfa.accepts(self._events(("A", 1), ("B", 2)))
        assert nfa.accepts(
            self._events(("A", 1), ("B", 2), ("B", 3), ("B", 4)))
        assert not nfa.accepts(self._events(("A", 1)))

    def test_kleene_middle(self):
        nfa = nfa_for("SEQ(A a, B+ b, C c)")
        assert nfa.accepts(
            self._events(("A", 1), ("B", 2), ("B", 3), ("C", 4)))
        assert not nfa.accepts(self._events(("A", 1), ("C", 4)))

    def test_step_set_simulation(self):
        nfa = nfa_for("SEQ(A a, B b)")
        active = {0}
        active = nfa.step(active, Event("A", 1))
        assert active == {0, 1}  # ignore-loop keeps 0, take reaches 1
        active = nfa.step(active, Event("B", 2))
        assert nfa.size - 1 in active

    def test_repr(self):
        assert "SEQ(A, B+)" in repr(nfa_for("SEQ(A a, B+ b)"))
