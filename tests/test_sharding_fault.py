"""Fault handling and backpressure in the sharded runtime.

A process-backend worker killed mid-run must not lose a single result:
the router detects the dead worker, restarts the shard, replays its
batch journal into the fresh worker, and suppresses duplicate responses.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time

import pytest

from repro.errors import SaseError
from repro.events.event import Event
from repro.events.model import AttributeType, SchemaRegistry
from repro.sharding import ShardingConfig
from repro.sharding.transport import MIN_RING_BYTES
from repro.system import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query


@pytest.fixture(scope="module")
def stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=800, n_types=4, id_domain=8, seed=7))


def build(registry, sharding):
    processor = ComplexEventProcessor(registry, sharding=sharding)
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.register("negpair",
                       seq_query(2, window=5.0, partitioned=True,
                                 negation_at=2))
    return processor


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


def run(registry, events, sharding, kill_at=None, kill_shard=0):
    processor = build(registry, sharding)
    produced = []
    for index, event in enumerate(events):
        produced.extend(processor.feed(event))
        if kill_at is not None and index == kill_at:
            pids = processor._router.worker_pids()
            os.kill(pids[kill_shard], signal.SIGKILL)
    produced.extend(processor.flush())
    return fingerprint(produced), processor.metrics


class TestProcessWorkerCrash:
    @pytest.mark.parametrize("transport", ["ring", "pipe"])
    def test_killed_worker_loses_nothing(self, stream, transport):
        baseline, _ = run(stream.registry, stream.events, None)
        sharding = ShardingConfig(shards=2, backend="process",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0,
                                  transport=transport)
        recovered, metrics = run(stream.registry, stream.events,
                                 sharding, kill_at=400)
        assert recovered == baseline
        restarts = sum(shard.worker_restarts
                       for shard in metrics.shards.values())
        replayed = sum(shard.batches_replayed
                       for shard in metrics.shards.values())
        assert restarts >= 1
        assert replayed >= 1

    @pytest.mark.parametrize("transport", ["ring", "pipe"])
    def test_kill_just_before_flush(self, stream, transport):
        baseline, _ = run(stream.registry, stream.events[:200], None)
        sharding = ShardingConfig(shards=2, backend="process",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0,
                                  transport=transport)
        recovered, metrics = run(stream.registry, stream.events[:200],
                                 sharding, kill_at=199, kill_shard=1)
        assert recovered == baseline
        assert metrics.shard(1).worker_restarts >= 1

    def test_ring_kills_at_randomized_offsets(self, stream):
        """SIGKILL a ring-transport worker at seeded pseudo-random
        stream offsets: whatever frame the worker was mid-way through
        writing becomes ring debris, and every run must still match the
        single-process baseline exactly (journal replay + fresh rings).
        The pipe transport at one of the same offsets pins the two
        transports to identical output."""
        import random
        events = stream.events[:400]
        baseline, _ = run(stream.registry, events, None)
        offsets = random.Random(2007).sample(range(20, 380), 3)
        for offset in offsets:
            sharding = ShardingConfig(shards=2, backend="process",
                                      batch_size=8, queue_capacity=4,
                                      response_timeout=30.0,
                                      transport="ring")
            recovered, metrics = run(stream.registry, events, sharding,
                                     kill_at=offset,
                                     kill_shard=offset % 2)
            assert recovered == baseline, f"diverged at kill_at={offset}"
            assert metrics.shard(offset % 2).worker_restarts >= 1
        pipe_sharding = ShardingConfig(shards=2, backend="process",
                                       batch_size=8, queue_capacity=4,
                                       response_timeout=30.0,
                                       transport="pipe")
        pipe_result, _ = run(stream.registry, events, pipe_sharding,
                             kill_at=offsets[0], kill_shard=offsets[0] % 2)
        assert pipe_result == baseline

    def test_ring_transport_counters_populate(self, stream):
        sharding = ShardingConfig(shards=2, backend="process",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0,
                                  transport="ring")
        result, metrics = run(stream.registry, stream.events[:200],
                              sharding)
        baseline, _ = run(stream.registry, stream.events[:200], None)
        assert result == baseline
        sent = sum(shard.ring_frames_sent
                   for shard in metrics.shards.values())
        received = sum(shard.ring_frames_received
                       for shard in metrics.shards.values())
        sent_bytes = sum(shard.ring_bytes_sent
                         for shard in metrics.shards.values())
        assert sent > 0 and received > 0 and sent_bytes > 0

    def test_worker_pids_exposed_for_process_backend_only(self, stream):
        processor = build(stream.registry,
                          ShardingConfig(shards=2, backend="inline"))
        processor.feed(stream.events[0])
        assert processor._router.worker_pids() == {}
        processor.flush()


class TestRingFallbackLaneCrash:
    """The ring's Queue fallback lane under crash interleaving: batches
    too big for the ring travel marker-then-queue, and a worker
    SIGKILLed while that lane is active must still converge to the
    single-process output byte-for-byte (journal replay re-sends the
    fallback batches through the same two-lane path)."""

    @staticmethod
    def blob_stream(n_events=240, blob_every=7, blob_bytes=80_000):
        """A stream whose periodic huge string attribute makes any
        batch containing it overflow a minimum-size ring."""
        import random as random_module
        registry = SchemaRegistry()
        for name in ("A", "B"):
            registry.declare(name, id=AttributeType.INT,
                             blob=AttributeType.STRING)
        rng = random_module.Random(13)
        events = []
        for index in range(n_events):
            blob = "x" * (blob_bytes if index % blob_every == 0 else 4)
            events.append(Event("A" if index % 2 == 0 else "B",
                                float(index),
                                {"id": rng.randrange(6), "blob": blob}))
        return registry, events

    def build_pair(self, registry, sharding):
        processor = ComplexEventProcessor(registry, sharding=sharding)
        processor.register("pair",
                           seq_query(2, window=5.0, partitioned=True))
        return processor

    def run_pair(self, registry, events, sharding, kill_at=None):
        processor = self.build_pair(registry, sharding)
        produced = []
        for index, event in enumerate(events):
            produced.extend(processor.feed(event))
            if kill_at is not None and index == kill_at:
                pids = processor._router.worker_pids()
                os.kill(pids[0], signal.SIGKILL)
        produced.extend(processor.flush())
        return fingerprint(produced), processor.metrics

    def ring_config(self):
        return ShardingConfig(shards=2, backend="process",
                              batch_size=4, queue_capacity=4,
                              response_timeout=30.0, transport="ring",
                              ring_bytes=MIN_RING_BYTES)

    def test_oversized_batches_use_fallback_lane(self):
        registry, events = self.blob_stream()
        baseline, _ = self.run_pair(registry, events, None)
        result, metrics = self.run_pair(registry, events,
                                        self.ring_config())
        assert result == baseline
        fallbacks = sum(shard.pipe_fallbacks
                        for shard in metrics.shards.values())
        assert fallbacks > 0

    @pytest.mark.parametrize("kill_at", [29, 113])
    def test_crash_while_fallback_lane_active(self, kill_at):
        # kill_at lands just after a blob event (index % 7 == 0), so
        # the dying worker can be mid-way through a marker/queue pair;
        # replay must re-deliver through both lanes without skew.
        registry, events = self.blob_stream()
        baseline, _ = self.run_pair(registry, events, None)
        result, metrics = self.run_pair(registry, events,
                                        self.ring_config(),
                                        kill_at=kill_at)
        assert result == baseline
        fallbacks = sum(shard.pipe_fallbacks
                        for shard in metrics.shards.values())
        restarts = sum(shard.worker_restarts
                       for shard in metrics.shards.values())
        assert fallbacks > 0
        assert restarts >= 1


class TestBackpressure:
    def test_full_queue_blocks_and_counts_stalls(self, stream):
        # Capacity-1 queues with single-entry batches force the router
        # to wait for the workers; nothing may be dropped or reordered.
        sharding = ShardingConfig(shards=2, backend="thread",
                                  batch_size=1, queue_capacity=1,
                                  response_timeout=30.0)
        baseline, _ = run(stream.registry, stream.events[:300], None)
        throttled, metrics = run(stream.registry, stream.events[:300],
                                 sharding)
        assert throttled == baseline
        assert sum(shard.batches_sent
                   for shard in metrics.shards.values()) > 0

    def test_put_with_backpressure_counts_and_recovers(self):
        from repro.sharding.backends import ThreadBackend
        from repro.system.metrics import MetricsCollector

        metrics = MetricsCollector()
        backend = ThreadBackend.__new__(ThreadBackend)
        backend.metrics = metrics
        backend.response_timeout = 5.0
        backend.supervisor = None
        backend._lost = set()
        backend._in_queues = [queue.Queue(maxsize=1)]
        backend._in_queues[0].put(("occupied",))

        def drain_later():
            time.sleep(0.2)
            backend._in_queues[0].get()

        drainer = threading.Thread(target=drain_later, daemon=True)
        drainer.start()
        backend._put_with_backpressure(
            0, ("payload",), alive=lambda: True,
            on_dead=lambda: None)
        drainer.join()
        assert metrics.shard(0).queue_full_stalls == 1
        assert backend._in_queues[0].get_nowait() == ("payload",)

    def test_wedged_shard_raises_instead_of_hanging(self):
        from repro.sharding.backends import ThreadBackend
        from repro.system.metrics import MetricsCollector

        backend = ThreadBackend.__new__(ThreadBackend)
        backend.metrics = MetricsCollector()
        backend.response_timeout = 0.3
        backend.supervisor = None
        backend._lost = set()
        backend._in_queues = [queue.Queue(maxsize=1)]
        backend._in_queues[0].put(("occupied",))
        with pytest.raises(SaseError, match="full"):
            backend._put_with_backpressure(
                0, ("payload",), alive=lambda: True,
                on_dead=lambda: None)


def _bare_backend(queue_capacity=2):
    from repro.sharding.backends import ThreadBackend
    from repro.system.metrics import MetricsCollector

    backend = ThreadBackend.__new__(ThreadBackend)
    backend.metrics = MetricsCollector()
    backend.queue_capacity = queue_capacity
    backend.supervisor = None
    backend._outstanding = set()
    backend._lost = set()
    backend._shard_load = [0]
    return backend


class TestErrorResponseBookkeeping:
    """Regression: a worker ``("error", ...)`` response must retire the
    failed request's bookkeeping *before* the SaseError is raised.  It
    used to leave the batch outstanding forever — a caller catching the
    error saw the shard permanently overloaded() and every drain barrier
    waited on a response that had already arrived."""

    def test_error_response_releases_batch_bookkeeping(self):
        backend = _bare_backend(queue_capacity=2)
        backend._note_submitted(0, 7)
        backend._note_submitted(0, 8)
        assert backend.overloaded(0)
        with pytest.raises(SaseError, match="boom"):
            backend._accept(("error", 0, ("batch", 7), "boom"))
        assert ("batch", 0, 7) not in backend._outstanding
        assert backend._shard_load[0] == 1
        assert not backend.overloaded(0)
        # The untouched batch is still awaited.
        assert backend.outstanding() == 1

    def test_error_response_releases_flush_bookkeeping(self):
        backend = _bare_backend()
        backend._note_flush_sent(0, 3)
        with pytest.raises(SaseError, match="boom"):
            backend._accept(("error", 0, ("flush", 3), "boom"))
        assert backend.outstanding() == 0
        assert backend._shard_load[0] == 0

    def test_error_without_context_only_raises(self):
        # A failure outside any request (worker startup) has nothing to
        # retire; load must not go negative.
        backend = _bare_backend()
        backend._note_submitted(0, 7)
        with pytest.raises(SaseError, match="boom"):
            backend._accept(("error", 0, None, "boom"))
        assert backend._shard_load[0] == 1
        assert backend.outstanding() == 1

    def test_duplicate_error_context_does_not_double_release(self):
        backend = _bare_backend()
        backend._note_submitted(0, 7)
        with pytest.raises(SaseError):
            backend._accept(("error", 0, ("batch", 7), "boom"))
        with pytest.raises(SaseError):
            backend._accept(("error", 0, ("batch", 7), "boom again"))
        assert backend._shard_load[0] == 0


class TestDrainExceptionNarrowing:
    """Regression: ``ProcessBackend._drain_responses`` used to swallow
    *every* exception as a corrupt pipe.  Only crash debris — OSError,
    EOFError, UnpicklingError — may be treated that way; a decode or
    logic error must propagate instead of silently dropping results."""

    @staticmethod
    def _process_backend(out_queue):
        from repro.sharding.backends import ProcessBackend
        from repro.system.metrics import MetricsCollector

        backend = ProcessBackend.__new__(ProcessBackend)
        backend.metrics = MetricsCollector()
        backend.shards = 1
        backend.supervisor = None
        backend._outstanding = set()
        backend._lost = set()
        backend._shard_load = [0]
        backend._out_queues = [out_queue]
        return backend

    class _RaisingQueue:
        def __init__(self, error):
            self._error = error

        def get_nowait(self):
            raise self._error

    def test_crash_debris_is_swallowed(self):
        for debris in (OSError("pipe"), EOFError()):
            backend = self._process_backend(self._RaisingQueue(debris))
            assert backend._drain_responses() == []

    def test_unpickling_error_is_swallowed(self):
        from pickle import UnpicklingError

        backend = self._process_backend(
            self._RaisingQueue(UnpicklingError("truncated")))
        assert backend._drain_responses() == []

    def test_logic_errors_propagate(self):
        backend = self._process_backend(
            self._RaisingQueue(ValueError("codec bug")))
        with pytest.raises(ValueError, match="codec bug"):
            backend._drain_responses()