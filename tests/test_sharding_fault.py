"""Fault handling and backpressure in the sharded runtime.

A process-backend worker killed mid-run must not lose a single result:
the router detects the dead worker, restarts the shard, replays its
batch journal into the fresh worker, and suppresses duplicate responses.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time

import pytest

from repro.errors import SaseError
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query


@pytest.fixture(scope="module")
def stream() -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=800, n_types=4, id_domain=8, seed=7))


def build(registry, sharding):
    processor = ComplexEventProcessor(registry, sharding=sharding)
    processor.register("pair",
                       seq_query(2, window=5.0, partitioned=True))
    processor.register("negpair",
                       seq_query(2, window=5.0, partitioned=True,
                                 negation_at=2))
    return processor


def fingerprint(results):
    return [(name, result.start, result.end,
             tuple(sorted(result.attributes.items())))
            for name, result in results]


def run(registry, events, sharding, kill_at=None, kill_shard=0):
    processor = build(registry, sharding)
    produced = []
    for index, event in enumerate(events):
        produced.extend(processor.feed(event))
        if kill_at is not None and index == kill_at:
            pids = processor._router.worker_pids()
            os.kill(pids[kill_shard], signal.SIGKILL)
    produced.extend(processor.flush())
    return fingerprint(produced), processor.metrics


class TestProcessWorkerCrash:
    def test_killed_worker_loses_nothing(self, stream):
        baseline, _ = run(stream.registry, stream.events, None)
        sharding = ShardingConfig(shards=2, backend="process",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0)
        recovered, metrics = run(stream.registry, stream.events,
                                 sharding, kill_at=400)
        assert recovered == baseline
        restarts = sum(shard.worker_restarts
                       for shard in metrics.shards.values())
        replayed = sum(shard.batches_replayed
                       for shard in metrics.shards.values())
        assert restarts >= 1
        assert replayed >= 1

    def test_kill_just_before_flush(self, stream):
        baseline, _ = run(stream.registry, stream.events[:200], None)
        sharding = ShardingConfig(shards=2, backend="process",
                                  batch_size=16, queue_capacity=4,
                                  response_timeout=30.0)
        recovered, metrics = run(stream.registry, stream.events[:200],
                                 sharding, kill_at=199, kill_shard=1)
        assert recovered == baseline
        assert metrics.shard(1).worker_restarts >= 1

    def test_worker_pids_exposed_for_process_backend_only(self, stream):
        processor = build(stream.registry,
                          ShardingConfig(shards=2, backend="inline"))
        processor.feed(stream.events[0])
        assert processor._router.worker_pids() == {}
        processor.flush()


class TestBackpressure:
    def test_full_queue_blocks_and_counts_stalls(self, stream):
        # Capacity-1 queues with single-entry batches force the router
        # to wait for the workers; nothing may be dropped or reordered.
        sharding = ShardingConfig(shards=2, backend="thread",
                                  batch_size=1, queue_capacity=1,
                                  response_timeout=30.0)
        baseline, _ = run(stream.registry, stream.events[:300], None)
        throttled, metrics = run(stream.registry, stream.events[:300],
                                 sharding)
        assert throttled == baseline
        assert sum(shard.batches_sent
                   for shard in metrics.shards.values()) > 0

    def test_put_with_backpressure_counts_and_recovers(self):
        from repro.sharding.backends import ThreadBackend
        from repro.system.metrics import MetricsCollector

        metrics = MetricsCollector()
        backend = ThreadBackend.__new__(ThreadBackend)
        backend.metrics = metrics
        backend.response_timeout = 5.0
        backend.supervisor = None
        backend._lost = set()
        backend._in_queues = [queue.Queue(maxsize=1)]
        backend._in_queues[0].put(("occupied",))

        def drain_later():
            time.sleep(0.2)
            backend._in_queues[0].get()

        drainer = threading.Thread(target=drain_later, daemon=True)
        drainer.start()
        backend._put_with_backpressure(
            0, ("payload",), alive=lambda: True,
            on_dead=lambda: None)
        drainer.join()
        assert metrics.shard(0).queue_full_stalls == 1
        assert backend._in_queues[0].get_nowait() == ("payload",)

    def test_wedged_shard_raises_instead_of_hanging(self):
        from repro.sharding.backends import ThreadBackend
        from repro.system.metrics import MetricsCollector

        backend = ThreadBackend.__new__(ThreadBackend)
        backend.metrics = MetricsCollector()
        backend.response_timeout = 0.3
        backend.supervisor = None
        backend._lost = set()
        backend._in_queues = [queue.Queue(maxsize=1)]
        backend._in_queues[0].put(("occupied",))
        with pytest.raises(SaseError, match="full"):
            backend._put_with_backpressure(
                0, ("payload",), alive=lambda: True,
                on_dead=lambda: None)