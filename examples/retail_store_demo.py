#!/usr/bin/env python3
"""The paper's demonstration scenario (Section 4), end to end.

Builds the Figure 2 store (two shelves, counter, exit; one reader each),
registers the demonstration queries with the complex event processor,
simulates a day of shoppers / shoplifters / misplacements through noisy
RFID readers, and renders the Figure 3 UI panels at the end.
"""

from repro.rfid import NoiseModel
from repro.system import SaseSystem
from repro.ui import SaseConsole
from repro.workloads import (
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)


def main() -> None:
    scenario = RetailScenario.generate(RetailConfig(
        n_products=30, n_shoppers=6, n_shoplifters=2, n_misplacements=2,
        seed=2007))
    print(f"store: {len(scenario.layout.areas)} areas, "
          f"{len(scenario.layout.readers)} readers, "
          f"{len(scenario.ons)} tagged products")
    print(f"scripted: {len(scenario.truth.purchased)} purchases, "
          f"{len(scenario.truth.shoplifted)} shoplifting incidents, "
          f"{len(scenario.truth.misplaced)} misplacements\n")

    system = SaseSystem(scenario.layout, scenario.ons)

    # monitoring queries (notifications to the user)
    system.register_monitoring_query(
        "shoplifting", SHOPLIFTING_QUERY,
        message=lambda r: (f"SHOPLIFTING: {r['x_ProductName']} "
                           f"(tag {r['x_TagId']}) left via "
                           f"{r['retrieveLocation']}"))
    system.register_monitoring_query(
        "misplaced", MISPLACED_INVENTORY_QUERY,
        message=lambda r: (f"MISPLACED: {r['x_ProductName']} seen on "
                           f"area {r['x_AreaId']}; history: "
                           f"{r['movementHistory']}"))

    # archiving rules (location tracking into the event database)
    for event_type in ("SHELF_READING", "COUNTER_READING",
                       "EXIT_READING"):
        system.register_archiving_rule(
            f"loc_{event_type}", LOCATION_UPDATE_RULE(event_type))

    # run the simulated day through noisy readers
    noise = NoiseModel(miss_rate=0.1, duplicate_rate=0.1,
                       truncate_rate=0.02, ghost_rate=0.01)
    results = system.run_simulation(scenario.ticks(noise))

    detected_shoplift = {r["x_TagId"] for name, r in results
                         if name == "shoplifting"}
    detected_misplaced = {r["x_TagId"] for name, r in results
                          if name == "misplaced"}
    print("== detection vs ground truth ==")
    print(f"shoplifted  truth={sorted(scenario.truth.shoplifted_tags())} "
          f"detected={sorted(detected_shoplift)}")
    print(f"misplaced   truth={sorted(scenario.truth.misplaced_tags())} "
          f"detected={sorted(detected_misplaced)}")

    print("\n== track-and-trace over the event database ==")
    for incident in scenario.truth.shoplifted:
        history = system.event_db.movement_history(incident.tag_id)
        path = " -> ".join(str(entry["area_id"]) for entry in history)
        print(f"tag {incident.tag_id}: {path}")

    print("\n== cleaning layer statistics ==")
    for name, (inp, out, dropped, created) in \
            system.cleaning.stats.snapshot().items():
        print(f"  {name:>20}: in={inp:5d} out={out:5d} "
              f"dropped={dropped:4d} created={created:4d}")

    print("\n== the SASE UI (Figure 3) ==")
    print(SaseConsole(system, max_lines=6).render())


if __name__ == "__main__":
    main()
