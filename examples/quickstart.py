#!/usr/bin/env python3
"""Quickstart: compile and run SASE queries over an event stream.

Covers the core public API in ~60 lines: declare schemas, build events,
compile a query (including the paper's Q1 pattern shape), inspect its plan,
and run it both in batch and streaming modes.
"""

from repro import AttributeType, Engine, Event, PlanConfig, SchemaRegistry


def main() -> None:
    # 1. Declare the event types the queries will match against.
    registry = SchemaRegistry()
    registry.declare("SHELF_READING", TagId=AttributeType.INT,
                     AreaId=AttributeType.INT)
    registry.declare("COUNTER_READING", TagId=AttributeType.INT,
                     AreaId=AttributeType.INT)
    registry.declare("EXIT_READING", TagId=AttributeType.INT,
                     AreaId=AttributeType.INT)

    engine = Engine(registry)

    # 2. Q1 of the paper: shoplifting = shelf, then NO counter, then exit,
    #    all for the same tag, within 12 hours.
    query = engine.compile("""
        EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
        WHERE x.TagId = y.TagId AND x.TagId = z.TagId
        WITHIN 12 hours
        RETURN x.TagId, z.AreaId
    """)
    print("== plan ==")
    print(query.explain())

    # 3. A small stream: tag 1 skips the counter, tag 2 pays.
    stream = [
        Event("SHELF_READING", 10, {"TagId": 1, "AreaId": 1}),
        Event("SHELF_READING", 12, {"TagId": 2, "AreaId": 1}),
        Event("COUNTER_READING", 40, {"TagId": 2, "AreaId": 3}),
        Event("EXIT_READING", 60, {"TagId": 1, "AreaId": 4}),
        Event("EXIT_READING", 65, {"TagId": 2, "AreaId": 4}),
    ]

    print("\n== batch run ==")
    for alert in engine.run(query, stream):
        print(f"ALERT tag={alert['x_TagId']} exited via area "
              f"{alert['z_AreaId']} (matched interval "
              f"[{alert.start:g}, {alert.end:g}])")

    # 4. The same query as a continuous (streaming) runtime.
    print("\n== streaming run ==")
    runtime = engine.runtime(query)
    for event in stream:
        for alert in runtime.feed(event):
            print(f"live alert at t={event.timestamp:g}: "
                  f"tag={alert['x_TagId']}")
    runtime.flush()
    print(f"dataflow: {runtime.stats.snapshot()}")

    # 5. Plans are configurable; the naive plan gives the same answers.
    print("\n== naive plan (no pushdown, no partitioning) ==")
    naive = engine.compile(query.text, config=PlanConfig.naive())
    print(naive.explain())
    assert ([a.attributes for a in engine.run(naive, stream)]
            == [{"x_TagId": 1, "z_AreaId": 4}])
    print("same single alert - optimizations never change answers")


if __name__ == "__main__":
    main()
