#!/usr/bin/env python3
"""Track-and-trace over a pre-populated event database (Section 4).

Generates a simulated supply-chain history (loading docks, containment
changes, shelf stocking), drives it through the processor's archival rules
— Location Update and Containment Update — and then answers the paper's
track-and-trace queries: current location and movement history, plus ad-hoc
SQL over the event database.
"""

from repro.system import SaseSystem
from repro.workloads import (
    CONTAINMENT_RULE,
    LOCATION_UPDATE_RULE,
    UNPACK_RULE,
    WarehouseConfig,
    WarehouseHistory,
)


def main() -> None:
    history = WarehouseHistory.generate(WarehouseConfig(
        n_boxes=3, items_per_box=4, n_box_changes=2, seed=17))
    print(f"supply chain: {len(history.box_tags)} boxes, "
          f"{len(history.item_tags)} items, {len(history.ops)} "
          f"history operations\n")

    system = SaseSystem(history.layout, history.ons)
    system.register_archiving_rule("containment", CONTAINMENT_RULE)
    system.register_archiving_rule("unpack", UNPACK_RULE)
    for event_type in ("LOADING_READING", "UNLOADING_READING",
                       "BACKROOM_READING", "SHELF_READING"):
        system.register_archiving_rule(
            f"loc_{event_type}", LOCATION_UPDATE_RULE(event_type))

    # stream the history's reading events through the rules
    for event in history.events():
        system.processor.feed(event)
    system.processor.flush()

    print("== current location (track-and-trace query 1) ==")
    for tag in history.item_tags[:4]:
        location = system.event_db.current_location(tag)
        assert location is not None
        print(f"item {tag}: area {location['area_id']} "
              f"({location['description']}) since "
              f"t={location['time_in']:g}")

    print("\n== movement history (track-and-trace query 2) ==")
    tag = history.item_tags[0]
    for entry in system.event_db.movement_history(tag):
        out = "now" if entry["time_out"] is None \
            else f"{entry['time_out']:g}"
        print(f"item {tag}: {entry['description']:<20} "
              f"[{entry['time_in']:g} .. {out}]")

    print("\n== containment history ==")
    for entry in system.event_db.containment_history(tag):
        out = "now" if entry["time_out"] is None \
            else f"{entry['time_out']:g}"
        print(f"item {tag} in box {entry['parent_tag']} "
              f"[{entry['time_in']:g} .. {out}]")

    print("\n== ad-hoc SQL over the event database ==")
    rows = system.query_database(
        "SELECT area_id, COUNT(*) AS items FROM locations "
        "WHERE time_out IS NULL GROUP BY area_id ORDER BY area_id")
    for row in rows:
        description = system.event_db.area_description(row["area_id"])
        print(f"area {row['area_id']} ({description}): "
              f"{row['items']} item(s)")

    print("\n== full trace bundle ==")
    trace = system.event_db.trace(tag)
    print(f"item {tag} = {trace['product']['product_name']}, "
          f"{len(trace['movement_history'])} moves, "
          f"{len(trace['containment_history'])} containment stays")


if __name__ == "__main__":
    main()
