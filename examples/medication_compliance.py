#!/usr/bin/env python3
"""Medication compliance monitoring — the paper's healthcare motivation.

"Real-time monitoring of patients taking medications can help enforce
medical compliance and alert care providers when anomalies occur"
(Section 1).  The SASE language is general purpose; this example uses it
on RFID-tagged medication bottles:

* a *missed dose* is a dispense with no intake within 30 minutes
  (trailing negation with delayed emission);
* a *double dose* is two intakes by the same patient within 2 hours;
* a *dose summary* aggregates a run of intakes with a Kleene closure.
"""

from repro import AttributeType, Engine, Event, SchemaRegistry


def build_registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.declare("DISPENSED", PatientId=AttributeType.INT,
                     Drug=AttributeType.STRING, Dose=AttributeType.FLOAT)
    registry.declare("INTAKE", PatientId=AttributeType.INT,
                     Drug=AttributeType.STRING, Dose=AttributeType.FLOAT)
    registry.declare("ROUND_END", WardId=AttributeType.INT)
    return registry


def build_stream() -> list[Event]:
    minute = 60.0
    return [
        Event("DISPENSED", 0 * minute,
              {"PatientId": 1, "Drug": "aspirin", "Dose": 100.0}),
        Event("DISPENSED", 1 * minute,
              {"PatientId": 2, "Drug": "insulin", "Dose": 10.0}),
        Event("INTAKE", 5 * minute,
              {"PatientId": 1, "Drug": "aspirin", "Dose": 100.0}),
        # patient 2 never takes the insulin -> missed dose
        Event("INTAKE", 40 * minute,
              {"PatientId": 1, "Drug": "aspirin", "Dose": 100.0}),
        # patient 1 took aspirin twice within 2 hours -> double dose
        Event("ROUND_END", 120 * minute, {"WardId": 3}),
    ]


def main() -> None:
    engine = Engine(build_registry())
    stream = build_stream()

    missed_dose = engine.compile("""
        EVENT SEQ(DISPENSED d, !(INTAKE i))
        WHERE d.PatientId = i.PatientId AND d.Drug = i.Drug
        WITHIN 30 minutes
        RETURN MissedDose(d.PatientId, d.Drug)
    """)
    print("== missed-dose plan (trailing negation) ==")
    print(missed_dose.explain())
    print()
    for alert in engine.run(missed_dose, stream):
        print(f"MISSED DOSE: patient {alert['d_PatientId']} never took "
              f"{alert['d_Drug']} (dispensed at t={alert.start:g}s)")

    double_dose = engine.compile("""
        EVENT SEQ(INTAKE a, INTAKE b)
        WHERE a.PatientId = b.PatientId AND a.Drug = b.Drug
        WITHIN 2 hours
        RETURN DoubleDose(a.PatientId, a.Drug,
                          b.Timestamp - a.Timestamp AS gap_seconds)
    """)
    print()
    for alert in engine.run(double_dose, stream):
        print(f"DOUBLE DOSE: patient {alert['a_PatientId']} took "
              f"{alert['a_Drug']} twice, {alert['gap_seconds']:g}s apart")

    dose_summary = engine.compile("""
        EVENT SEQ(DISPENSED d, INTAKE+ i)
        WHERE d.PatientId = i.PatientId
        WITHIN 2 hours
        RETURN d.PatientId, COUNT(i) AS doses, SUM(i.Dose) AS total_mg
    """)
    print()
    summaries = list(engine.run(dose_summary, stream))
    best = max(summaries, key=lambda s: s["doses"])
    print(f"DOSE SUMMARY: patient {best['d_PatientId']} took "
          f"{best['doses']} dose(s), {best['total_mg']:g} mg total")


if __name__ == "__main__":
    main()
