#!/usr/bin/env python3
"""A tour of query plans: how the published optimizations change cost.

Runs one query over one synthetic stream under the plan configurations the
engine supports and prints, for each, the EXPLAIN output, the operator
dataflow counters, and the peak stack population — making the paper's
"large sliding windows" and "large intermediate result sets" issues
visible.

The fully naive plan (no window pushdown AND no partitioning) constructs
every type-ordered combination in the stream — cubic for a three-step
sequence — so it runs on a short prefix only, which is itself the point.
"""

import time

from repro import Engine, PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query


def run_plan(engine: Engine, query_text: str, events, config: PlanConfig,
             label: str) -> None:
    compiled = engine.compile(query_text, config=config)
    runtime = engine.runtime(compiled)
    started = time.perf_counter()
    results = 0
    for event in events:
        results += len(runtime.feed(event))
    results += len(runtime.flush())
    elapsed = time.perf_counter() - started
    throughput = len(events) / elapsed

    print(f"--- {label} ({len(events)} events) ---")
    print(compiled.explain())
    chain = " -> ".join(f"{name}[{consumed}/{produced}]"
                        for name, (consumed, produced)
                        in runtime.stats.snapshot().items())
    print(f"dataflow: {chain}")
    print(f"results: {results}, peak stack instances: "
          f"{runtime.stats.stack_high_water}, partitions: "
          f"{runtime.stats.partitions_high_water}")
    print(f"throughput: {throughput:,.0f} events/s "
          f"({elapsed * 1000:.1f} ms)\n")


def main() -> None:
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=3000, n_types=3, id_domain=40, mean_gap=1.0, seed=42))
    query_text = seq_query(3, window=30, partitioned=True)
    print(f"stream: {len(stream)} events over {stream.duration:,.0f}s; "
          f"query:\n{query_text}\n")

    engine = Engine(stream.registry)
    run_plan(engine, query_text, stream.events, PlanConfig(),
             "optimized: window pushdown + PAIS")
    run_plan(engine, query_text, stream.events,
             PlanConfig().without("partition_pushdown"),
             "window pushdown only")
    run_plan(engine, query_text, stream.events,
             PlanConfig().without("window_pushdown"),
             "PAIS only (stacks never pruned)")
    # the naive plan enumerates every A x B x C combination before any
    # filtering; feasible only on a short prefix
    run_plan(engine, query_text, stream.events[:600], PlanConfig.naive(),
             "naive: no pushdown, no partitioning")


if __name__ == "__main__":
    main()
