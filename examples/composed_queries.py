#!/usr/bin/env python3
"""Query composition: detection hierarchies over named streams.

The RETURN clause "can also name the output stream and the type of events
in the output" (Section 2.1.1).  This example builds a two-level hierarchy
over warehouse dock readings:

* level 1 turns raw readings into semantic `DWELL` events — an item seen
  at the dock and still there 30 seconds later — published `INTO dwells`;
* level 2 consumes `FROM dwells` and raises a congestion alert when three
  distinct dwell events pile up within two minutes.

Composite events flow between queries inside one complex event processor;
each level is an ordinary SASE query.
"""

from repro.events.event import Event
from repro.events.model import AttributeType
from repro.schemas import retail_registry
from repro.system import ComplexEventProcessor

LEVEL_1 = """
EVENT SEQ(LOADING_READING a, LOADING_READING b)
WHERE a.TagId = b.TagId AND b.Timestamp - a.Timestamp >= 30
WITHIN 60 seconds
RETURN DWELL(a.TagId AS TagId, a.Timestamp AS SinceTs) INTO dwells
"""

LEVEL_2 = """
FROM dwells
EVENT SEQ(DWELL d1, DWELL d2, DWELL d3)
WHERE d1.TagId != d2.TagId AND d2.TagId != d3.TagId
      AND d1.TagId != d3.TagId
WITHIN 2 minutes
RETURN CONGESTION(d1.TagId AS First, d3.TagId AS Third)
"""


def loading(ts: float, tag: int) -> Event:
    return Event("LOADING_READING", ts, {
        "TagId": tag, "AreaId": 10, "ReaderId": "W1",
        "ProductName": f"pallet {tag}", "Category": "general",
        "Price": 0.0, "ExpirationDate": "", "Saleable": False,
        "HomeAreaId": 0})


def main() -> None:
    registry = retail_registry()
    # composite event types must be declared so downstream queries compile
    registry.declare("DWELL", TagId=AttributeType.INT,
                     SinceTs=AttributeType.FLOAT)
    registry.declare("CONGESTION", First=AttributeType.INT,
                     Third=AttributeType.INT)

    processor = ComplexEventProcessor(registry)
    processor.register_monitoring_query("dwell_detect", LEVEL_1)
    processor.register_monitoring_query("congestion", LEVEL_2)

    # three pallets stuck at the dock, plus one that moves through quickly
    stream = []
    for index, tag in enumerate((501, 502, 503)):
        arrive = 10.0 + 20 * index
        stream.append(loading(arrive, tag))
        stream.append(loading(arrive + 35, tag))   # still there: a dwell
    stream.append(loading(12.0, 504))              # in and gone
    stream.sort(key=lambda event: event.timestamp)

    for name, result in processor.feed_many(stream):
        if name == "dwell_detect":
            print(f"DWELL: pallet {result['TagId']} stuck at the dock "
                  f"since t={result['SinceTs']:g}")
        else:
            print(f"CONGESTION: three pallets dwelling "
                  f"(first={result['First']}, third={result['Third']}, "
                  f"interval [{result.start:g}, {result.end:g}])")
    processor.flush()

    dwell = processor.query("dwell_detect")
    congestion = processor.query("congestion")
    print(f"\nlevel 1 produced {dwell.results_produced} dwell event(s) "
          f"INTO '{dwell.output_stream}'")
    print(f"level 2 consumed FROM '{congestion.input_stream}' and "
          f"produced {congestion.results_produced} alert(s)")


if __name__ == "__main__":
    main()
