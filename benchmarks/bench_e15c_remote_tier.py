"""E15c — distributed shard tier: remote TCP workers vs local backends.

The remote backend ships shard batches to worker daemons over TCP in
the same CRC-framed wire format the shared-memory ring uses
(``repro.sharding.wire``), with credit-based backpressure and
journal-backed replay.  This experiment measures what that transport
costs relative to the in-process alternatives: the single-process
baseline, the process backend over the shared-memory ring, and the
remote backend at 2 and 4 localhost workers (spawned and supervised by
the coordinator).

Expected shape: on localhost the remote tier pays the TCP stack plus
the marshal codec on both sides, so it should land below process/ring
at equal worker counts — the point of the tier is scale-out across
hosts, not single-host speedups.  Output equality with the baseline is
asserted on every run, so this benchmark doubles as a large
differential test of the distributed path.
"""

from __future__ import annotations

import argparse
import os
import socket
import time

from repro.sharding import ShardingConfig
from repro.system.processor import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table

FULL_EVENTS = 12_000
SMOKE_EVENTS = 1_500

QUERIES = {
    "pair": seq_query(2, window=30.0, partitioned=True),
    "triple": seq_query(3, window=30.0, partitioned=True),
}


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=15))


def free_ports(count: int) -> list[int]:
    sockets, ports = [], []
    for _ in range(count):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        sockets.append(listener)
        ports.append(listener.getsockname()[1])
    for listener in sockets:
        listener.close()
    return ports


def remote_config(shards: int) -> ShardingConfig:
    workers = tuple(f"127.0.0.1:{port}" for port in free_ports(shards))
    return ShardingConfig(shards=shards, backend="remote",
                          batch_size=64, queue_capacity=8,
                          workers=workers, secret="bench-secret")


def run_once(stream: SyntheticStream,
             sharding: ShardingConfig | None) -> tuple[float, list]:
    processor = ComplexEventProcessor(stream.registry, sharding=sharding)
    for name, text in QUERIES.items():
        processor.register(name, text)
    produced = []
    started = time.perf_counter()
    for event in stream.events:
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    elapsed = time.perf_counter() - started
    fingerprint = [(name, result.start, result.end)
                   for name, result in produced]
    return elapsed, fingerprint


def sweep(n_events: int, remote_counts: list[int]) -> list[list]:
    stream = build_stream(n_events)
    base_elapsed, base_fingerprint = run_once(stream, None)
    base_throughput = n_events / base_elapsed
    rows = [["single-process", "-", base_throughput, 1.0,
             len(base_fingerprint)]]
    configs = [("process/ring x2",
                ShardingConfig(shards=2, backend="process",
                               batch_size=64, queue_capacity=8,
                               transport="ring"))]
    configs += [(f"remote x{shards}", remote_config(shards))
                for shards in remote_counts]
    for label, config in configs:
        elapsed, fingerprint = run_once(stream, config)
        assert fingerprint == base_fingerprint, \
            f"{label} diverged from the baseline"
        throughput = n_events / elapsed
        rows.append([label, config.shards, throughput,
                     throughput / base_throughput, len(fingerprint)])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="distributed shard tier throughput experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds, "
                             "remote at 2 workers only)")
    parser.add_argument(
        "--assert-multicore-speedup", type=float, metavar="X",
        help="fail unless the best remote row reaches X times the "
             "single-process baseline; skipped (with a notice) on "
             "single-core hosts, where no parallel speedup exists to "
             "measure")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    rows = sweep(n_events, [2] if args.smoke else [2, 4])
    cores = os.cpu_count() or 1
    print_table(
        f"E15c — distributed shard tier ({n_events} events, 2 keyed "
        f"SEQ queries, localhost workers, host has {cores} core(s))",
        ["configuration", "shards", "events/s", "vs single-process",
         "results"],
        rows)
    if cores == 1:
        print("note: single-core host; neither the process nor the "
              "remote backend can exceed 1.0x here (transport "
              "overhead, no parallelism).")
    if args.assert_multicore_speedup is not None:
        if cores < 2:
            print("multicore speedup gate skipped: single-core host")
        else:
            best = max(row[2] / rows[0][2] for row in rows[1:]
                       if str(row[0]).startswith("remote"))
            assert best >= args.assert_multicore_speedup, (
                f"remote peaks at {best:.2f}x single-process on "
                f"{cores} cores; the gate requires "
                f">= {args.assert_multicore_speedup:g}x")
            print(f"multicore speedup gate ok: remote reaches "
                  f"{best:.2f}x single-process")


def test_benchmark_remote_two_workers(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(
        lambda: run_once(stream, remote_config(2)),
        rounds=3, iterations=1)
    assert result[1]


if __name__ == "__main__":
    main()
