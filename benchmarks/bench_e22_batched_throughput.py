"""E22 — batched ingest throughput: ``feed_batch`` vs per-event ``feed``.

The batched ingest path carries N cleaned events per call through the
processor: one dispatch round, one metrics record, and one generated
batch-loop scan body per query instead of N of each.  This experiment
feeds the same synthetic stream to a single-query
:class:`~repro.system.processor.ComplexEventProcessor` once per batch
size and reports throughput relative to the per-event path (batch 1).

Results are asserted bit-identical across every batch size — batching
changes only call granularity, never matches or their order — so this
experiment doubles as a coarse batch-parity test at the system layer.
"""

from __future__ import annotations

import argparse
import time

from repro.core.plan import PlanConfig
from repro.system.processor import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table

FULL_EVENTS = 30_000
SMOKE_EVENTS = 2_000
BATCH_SIZES = [1, 16, 64, 256]

# Stateful shapes only: stateless filters already win big per event
# (E16); the batched path's job is amortizing dispatch overhead on the
# shapes whose scans carry stacks.
QUERIES = [
    ("pair", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
     "RETURN x.id"),
    ("kleene", "EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 10 "
     "RETURN a.id, COUNT(b)"),
]


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, v_domain=10,
        mean_gap=1.0, seed=22))


def run_once(stream: SyntheticStream, query_text: str,
             batch: int) -> tuple[float, list]:
    processor = ComplexEventProcessor(stream.registry,
                                      config=PlanConfig())
    processor.register("q", query_text)
    events = stream.events
    produced = []
    started = time.perf_counter()
    if batch > 1:
        for start in range(0, len(events), batch):
            produced.extend(
                processor.feed_batch(events[start:start + batch]))
    else:
        for event in events:
            produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    elapsed = time.perf_counter() - started
    fingerprint = [(name, result.start, result.end,
                    tuple(result.attributes.items()))
                   for name, result in produced]
    return elapsed, fingerprint


def run_best(stream: SyntheticStream, query_text: str, batch: int,
             repeats: int) -> tuple[float, list]:
    best: tuple[float, list] | None = None
    for _ in range(max(1, repeats)):
        result = run_once(stream, query_text, batch)
        if best is None or result[0] < best[0]:
            best = result
    return best


def sweep(n_events: int, repeats: int = 1) -> list[list]:
    stream = build_stream(n_events)
    rows = []
    for label, query_text in QUERIES:
        base_elapsed, base_fp = run_best(stream, query_text, 1, repeats)
        row = [label, n_events / base_elapsed]
        for batch in BATCH_SIZES[1:]:
            elapsed, fingerprint = run_best(stream, query_text, batch,
                                            repeats)
            assert fingerprint == base_fp, \
                f"{label}: batch {batch} diverged from per-event feed"
            row.append(base_elapsed / elapsed)
        row.append(len(base_fp))
        rows.append(row)
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="batched vs per-event processor ingest")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    parser.add_argument("--repeats", type=int, default=1, metavar="R",
                        help="take the best wall time of R runs per cell")
    parser.add_argument("--assert-speedup", type=float, metavar="X",
                        help="fail unless some shape reaches an X-fold "
                             "speedup at batch 64")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    rows = sweep(n_events, repeats=args.repeats)
    print_table(
        f"E22 — batched ingest vs per-event feed ({n_events} events)",
        ["shape", "batch-1 ev/s"]
        + [f"x{batch} speedup" for batch in BATCH_SIZES[1:]]
        + ["results"],
        rows)
    at64 = BATCH_SIZES.index(64) + 1
    best = max(row[at64] for row in rows)
    print(f"best batch-64 speedup: {best:.2f}x")
    if args.assert_speedup is not None and best < args.assert_speedup:
        raise SystemExit(
            f"batch-64 speedup gate {args.assert_speedup:.2f}x failed "
            f"(best {best:.2f}x)")


def test_batched_matches_per_event():
    stream = build_stream(SMOKE_EVENTS)
    for label, query_text in QUERIES:
        _, base_fp = run_once(stream, query_text, 1)
        for batch in (16, 64):
            _, fingerprint = run_once(stream, query_text, batch)
            assert fingerprint == base_fp, (label, batch)


if __name__ == "__main__":
    main()
