"""E19 — persistence: WAL overhead per fsync policy, recovery time.

The durability layer (``repro.persist``) write-ahead-logs every cleaned
event and appends every delivered match to an out log before it counts
as emitted.  This experiment quantifies the two costs that matter:

* **E19a — WAL overhead vs fsync policy.**  The E15 workload (two keyed
  SEQ queries over a synthetic 3-type stream) runs bare and then under
  persistence with each policy.  ``never`` leaves durability to the OS
  page cache (crash-safe, not power-loss-safe), ``every_n:64`` is the
  amortized default (group-commit writer thread, see
  ``repro.persist.wal``), ``always`` pays one fsync per event.  The
  timed region ends with a full durability barrier, so queued WAL
  writes cannot hide outside it; the final checkpoint — a fixed
  end-of-stream cost, not a per-event one — is reported in its own
  column.  The default policy's overhead is asserted ≤ 15 % on hosts
  with ≥ 2 cores, where the group-commit writer thread's encode +
  write + fsync work overlaps the processing thread and only the
  C-level enqueue hook stays on the feed path.  On a single-core host
  that work has nowhere to overlap — every encode/write instruction
  timeshares with matching — so the budget is relaxed to a documented
  single-core ceiling and a note is printed, mirroring E15's handling
  of the process backend.  Either way the measurement itself is
  honest: min-of-interleaved-rounds, so a scheduler hiccup cannot
  fake a regression.
* **E19b — recovery time vs WAL-tail length.**  With checkpoints
  disabled, recovery replays the whole WAL; sweeping the tail length
  shows replay cost is linear in events-since-checkpoint — the knob
  ``checkpoint_every`` trades against run-time checkpoint cost.
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time

from repro.persist import FsyncPolicy, PersistenceConfig, \
    PersistenceManager
from repro.system.processor import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table

FULL_EVENTS = 12_000
SMOKE_EVENTS = 1_500
FULL_ROUNDS = 5
SMOKE_ROUNDS = 3
POLICIES = ["never", "every_n:64", "always"]
FULL_TAILS = [1_000, 2_000, 4_000, 8_000]
SMOKE_TAILS = [250, 500, 1_000]

#: The acceptance budget for the default policy on the E15 workload
#: when the group-commit writer has its own core to run on.
MAX_DEFAULT_OVERHEAD = 1.15
#: On a single-core host the writer thread timeshares with the
#: processor, so the WAL's conserved CPU (batch extraction, marshal,
#: CRC, write syscalls — roughly 1 µs/event against a ~5.5 µs/event
#: baseline) lands in the measured path on top of the fsync scheduling
#: churn.  Observed 1.25–1.5x on a 1-core VM; the ceiling below
#: leaves noise headroom while still catching gross regressions.
MAX_SINGLE_CORE_OVERHEAD = 1.60

QUERIES = {
    "pair": seq_query(2, window=30.0, partitioned=True),
    "triple": seq_query(3, window=30.0, partitioned=True),
}


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=15))


class BenchHost:
    """The minimal host the persistence manager duck-types against."""

    def __init__(self, registry):
        self.processor = ComplexEventProcessor(registry)
        for name, text in QUERIES.items():
            self.processor.register(name, text)
        from repro.db.eventdb import EventDatabase
        self.event_db = EventDatabase()

    def adopt_event_db(self, event_db):
        self.event_db = event_db

    def scratch_event_db(self):
        from repro.db.eventdb import EventDatabase
        return EventDatabase()


def run_bare(stream: SyntheticStream) -> tuple[float, int]:
    host = BenchHost(stream.registry)
    results = 0
    started = time.perf_counter()
    for event in stream.events:
        results += len(host.processor.feed(event))
    results += len(host.processor.flush())
    return time.perf_counter() - started, results


def run_persisted(stream: SyntheticStream, policy: str,
                  checkpoint_every: int = 0) \
        -> tuple[float, float, int]:
    """Returns ``(stream_elapsed, finalize_elapsed, results)``.

    The timed stream region covers the feed loop, the flush, and a
    full durability barrier (``manager.sync()``) — every WAL byte the
    run produced is written and fsynced inside it, so the ratio
    against the bare run is the true per-event durability cost.  The
    final checkpoint (database snapshot + atomic checkpoint write) is
    a fixed end-of-stream cost amortized by stream length; it is timed
    separately and reported in its own column."""
    data_dir = tempfile.mkdtemp(prefix="e19-")
    try:
        host = BenchHost(stream.registry)
        manager = PersistenceManager(PersistenceConfig(
            data_dir=data_dir, fsync=FsyncPolicy.parse(policy),
            checkpoint_every=checkpoint_every), host)
        manager.recover()
        results = 0
        started = time.perf_counter()
        # The WAL append and checkpoint cadence are fused into feed()
        # by the manager's hooks — the loop is shape-identical to the
        # bare run, so the ratio isolates the durability cost.
        for event in stream.events:
            results += len(host.processor.feed(event))
        results += len(host.processor.flush())
        manager.sync()
        stream_elapsed = time.perf_counter() - started
        finalize_started = time.perf_counter()
        manager.finalize()
        finalize_elapsed = time.perf_counter() - finalize_started
        return stream_elapsed, finalize_elapsed, results
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def measure_wal_overhead(n_events: int, rounds: int) -> tuple[list, float]:
    stream = build_stream(n_events)
    variants = [None, *POLICIES]
    best = {variant: float("inf") for variant in variants}
    finalize_best = {variant: float("inf") for variant in POLICIES}
    results = {}
    for _ in range(rounds):
        for variant in variants:   # interleaved A/B
            if variant is None:
                elapsed, count = run_bare(stream)
            else:
                elapsed, finalized, count = run_persisted(stream,
                                                          variant)
                finalize_best[variant] = min(finalize_best[variant],
                                             finalized)
            best[variant] = min(best[variant], elapsed)
            results[variant] = count
    assert len(set(results.values())) == 1, \
        "persistence changed the result count"
    rows = [["bare (no persistence)", n_events / best[None], 1.0,
             "-", results[None]]]
    for policy in POLICIES:
        rows.append([f"wal fsync={policy}", n_events / best[policy],
                     best[policy] / best[None],
                     finalize_best[policy] * 1e3, results[policy]])
    return rows, best["every_n:64"] / best[None]


def measure_recovery(n_events: int, tails: list[int],
                     rounds: int) -> list:
    """Recovery time as a function of WAL-tail length: write a WAL of
    each length (no checkpoints), abandon it, time ``recover()``."""
    rows = []
    for tail in tails:
        stream = build_stream(tail)
        data_dir = tempfile.mkdtemp(prefix="e19r-")
        try:
            host = BenchHost(stream.registry)
            manager = PersistenceManager(PersistenceConfig(
                data_dir=data_dir, fsync=FsyncPolicy("never"),
                checkpoint_every=0), host)
            manager.recover()
            matches = 0
            for event in stream.events:   # hooks WAL-log each event
                matches += len(host.processor.feed(event))
            manager.close()   # sync, no checkpoint: a "crashed" dir
            best = float("inf")
            for _ in range(rounds):
                fresh = PersistenceManager(PersistenceConfig(
                    data_dir=data_dir, fsync=FsyncPolicy("never"),
                    checkpoint_every=0), BenchHost(stream.registry))
                report = fresh.recover()
                assert report.replayed_events == tail
                assert len(report.suppressed_matches) == matches
                best = min(best, report.elapsed_seconds)
            rows.append([tail, best * 1e3, tail / best, matches])
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="persistence overhead and recovery-time experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    rounds = SMOKE_ROUNDS if args.smoke else FULL_ROUNDS
    tails = SMOKE_TAILS if args.smoke else FULL_TAILS

    cores = os.cpu_count() or 1
    rows, default_ratio = measure_wal_overhead(n_events, rounds)
    print_table(
        f"E19a — WAL overhead vs fsync policy ({n_events} events, "
        f"2 keyed SEQ queries, min of {rounds}, host has {cores} "
        f"core(s); stream time includes a full durability barrier)",
        ["configuration", "events/s", "vs bare", "final ckpt ms",
         "results"],
        rows)
    budget = MAX_DEFAULT_OVERHEAD if cores >= 2 \
        else MAX_SINGLE_CORE_OVERHEAD
    print(f"default-policy (every_n:64) overhead: "
          f"{(default_ratio - 1) * 100:+.1f}% "
          f"(budget {(budget - 1) * 100:.0f}%)")
    if cores == 1:
        print("note: single-core host; the group-commit writer thread "
              "timeshares with the processor, so the WAL's encode + "
              "write CPU cannot overlap matching and the multi-core "
              "15% budget does not apply (see module docstring)")
    assert default_ratio <= budget, (
        f"fsync=every_n:64 costs {default_ratio:.3f}x, budget is "
        f"{budget}x on a {cores}-core host")

    recovery_rows = measure_recovery(n_events, tails, rounds)
    print_table(
        "E19b — recovery time vs WAL-tail length (no checkpoints: "
        "full replay)",
        ["wal tail (events)", "recovery ms", "replay events/s",
         "suppressed"],
        recovery_rows)


def test_benchmark_wal_default_policy(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(
        lambda: run_persisted(stream, "every_n:64"),
        rounds=3, iterations=1)
    assert result[2]


def test_benchmark_recovery_replay(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    data_dir = tempfile.mkdtemp(prefix="e19b-")
    try:
        host = BenchHost(stream.registry)
        manager = PersistenceManager(PersistenceConfig(
            data_dir=data_dir, fsync=FsyncPolicy("never"),
            checkpoint_every=0), host)
        manager.recover()
        for event in stream.events:   # hooks WAL-log each event
            host.processor.feed(event)
        manager.close()

        def recover_once():
            fresh = PersistenceManager(PersistenceConfig(
                data_dir=data_dir, fsync=FsyncPolicy("never"),
                checkpoint_every=0), BenchHost(stream.registry))
            return fresh.recover()

        report = benchmark.pedantic(recover_once, rounds=3, iterations=1)
        assert report.replayed_events == SMOKE_EVENTS
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
