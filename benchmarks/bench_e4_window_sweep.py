"""E4 — engine evaluation: throughput vs sliding-window size.

"Large sliding windows spanning hours or days are commonly used ...
sequence generation from events widely dispersed in such windows can be an
expensive operation.  To address this issue, we develop optimizations that
employ novel sequence indexes" (Section 2.1.2).

Sweep WITHIN over a partitioned three-step sequence; compare the
window-pushdown plan (pruned stacks, bounded construction) against the
plan that applies the window only as a post-construction filter.
Expected shape: pushdown degrades slowly with W; no-pushdown collapses as
stacks and intermediate sequences grow with W (and with stream length).
"""

from __future__ import annotations

from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=4000, n_types=3, id_domain=80,
                                mean_gap=1.0, seed=4)
WINDOWS = [10.0, 50.0, 200.0, 1000.0, 4000.0]

PUSHDOWN = PlanConfig()                          # window into the scan
NO_PUSHDOWN = PlanConfig().without("window_pushdown")


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for window in WINDOWS:
        query = seq_query(3, window=window, partitioned=True)
        with_pd = run_plan(stream.registry, query, stream.events,
                           PUSHDOWN)
        without_pd = run_plan(stream.registry, query, stream.events,
                              NO_PUSHDOWN)
        assert with_pd.results == without_pd.results
        rows.append([window, with_pd.throughput, without_pd.throughput,
                     with_pd.throughput / without_pd.throughput,
                     with_pd.peak_stack, without_pd.peak_stack,
                     with_pd.results])
    return rows


def main() -> None:
    print_table(
        "E4 — throughput vs window size "
        f"({STREAM_CONFIG.n_events} events, SEQ(A,B,C) partitioned)",
        ["window (s)", "pushdown ev/s", "no-pushdown ev/s", "speedup",
         "peak stacks (pd)", "peak stacks (no pd)", "matches"],
        sweep())


def test_benchmark_window_pushdown_large_window(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=1000.0, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, PUSHDOWN),
        rounds=3, iterations=1)
    assert result.results > 0


def test_benchmark_no_pushdown_large_window(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=1000.0, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         NO_PUSHDOWN),
        rounds=3, iterations=1)
    assert result.results > 0


if __name__ == "__main__":
    main()
