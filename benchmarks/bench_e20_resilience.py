"""E20 — resilience: idle-feature overhead, shedding at 2x capacity.

The resilience layer (``repro.resilience``) is opt-in and must be close
to free when armed but idle: chaos is a None injector, quarantine is one
validation pass per reading, supervision is one breaker check per batch.
This experiment pins both halves of that bargain:

* **E20a — idle overhead.**  The retail demo scenario runs bare and
  then with ``ResilienceConfig()`` attached (quarantine on, chaos off,
  supervision armed but never triggered).  Interleaved min-of-rounds —
  a scheduler hiccup cannot fake a regression — and the overhead is
  asserted ≤ 5 %.  A second table reports the sharded thread backend
  with supervision idle, where the breaker check and hang-deadline
  bookkeeping ride the batch path (reported, not asserted: thread
  scheduling noise on small runs dwarfs the cost being measured).
* **E20c — coordinator idle-wait wakeups.**  With process workers
  slowed by chaos the coordinator spends the run blocked in
  ``wait()``.  The old implementation polled on a fixed 5 ms tick —
  200 wakeups/s of pure overhead; the adaptive spin-then-park waiter
  (semaphore park on the ring transport, geometric backoff on the
  pipe) is asserted to stay under 120 parks/s in the same regime.
* **E20b — shedding-policy throughput at 2x capacity.**  Workers are
  slowed with ``worker.slow`` chaos and the feed is paced at twice the
  resulting service rate.  ``block`` (the default) preserves every
  event and runs at service rate; the dropping policies shed the
  overload and track the arrival rate instead.  The run asserts the
  policy contract: ``block`` sheds nothing, every dropping policy
  sheds, and every run terminates with results.
"""

from __future__ import annotations

import argparse
import time

from repro.resilience import ResilienceConfig
from repro.rfid import NoiseModel
from repro.sharding import ShardingConfig
from repro.system import ComplexEventProcessor, SaseSystem
from repro.workloads import (
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table

# The asserted E20a ratio compares two ~equal runs whose true delta is
# well under the budget; min-of-many interleaved rounds is what makes
# the measurement reliable on a busy (or single-core) host.
FULL_ROUNDS = 10
SMOKE_ROUNDS = 8
FULL_RETAIL = RetailConfig(n_products=60, n_shoppers=20,
                           n_shoplifters=5, n_misplacements=5, seed=7)
SMOKE_RETAIL = RetailConfig(n_products=20, n_shoppers=6,
                            n_shoplifters=2, n_misplacements=2, seed=7)
FULL_SHARDED_EVENTS = 8_000
SMOKE_SHARDED_EVENTS = 1_500
FULL_SHED_EVENTS = 500
SMOKE_SHED_EVENTS = 150

#: Acceptance budget: resilience armed-but-idle may cost at most 5%.
MAX_DISABLED_OVERHEAD = 1.05

#: Per-batch worker slowdown for the shedding experiment (seconds).
SLOW_BATCH_SECONDS = 0.02
#: Batch size for the shedding experiment.  Must be > 1 so that shed
#: events coalesce into the open batch's trailing watermark — with
#: one-event batches every shed event would still cost the slowed
#: worker a full batch (as a watermark batch) and no throughput could
#: be reclaimed by shedding.
SHED_BATCH = 4
SHED_SHARDS = 2

SHED_POLICIES = ["block", "drop-newest", "drop-oldest", "sample:0.25"]

#: E20c: the pre-fix coordinator waited on a fixed 5 ms poll tick —
#: 200 wakeups per second of pure overhead whenever a worker was slow.
OLD_FIXED_TICK_RATE = 200.0
#: Acceptance budget for the adaptive spin-then-park waiter: the park
#: rate while blocked on slow workers must stay well under the old
#: tick.  (The ring backend parks on a response semaphore and wakes
#: roughly once per response; the pipe backend backs off geometrically
#: to 20 ms parks.)
MAX_PARK_RATE = 120.0


# -- E20a: idle overhead ------------------------------------------------------

def run_retail(ticks, scenario, resilience) -> tuple[float, int]:
    system = SaseSystem(scenario.layout, scenario.ons,
                        resilience=resilience)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    results = 0
    started = time.perf_counter()
    for now, readings in ticks:
        results += len(system.process_tick(readings, now))
    results += len(system.processor.flush())
    elapsed = time.perf_counter() - started
    system.close()
    return elapsed, results


def measure_idle_overhead(retail: RetailConfig, rounds: int) \
        -> tuple[list, float, int]:
    scenario = RetailScenario.generate(retail)
    ticks = list(scenario.ticks(NoiseModel.perfect()))
    n_readings = sum(len(readings) for _, readings in ticks)
    variants = {"bare": None, "idle resilience": ResilienceConfig()}
    best = {name: float("inf") for name in variants}
    counts = {}
    # Host noise only ever adds time, so min-of-interleaved-rounds is
    # the robust estimator of the true cost; when the first batch of
    # rounds still lands over budget (a noise burst hit one variant's
    # every round), escalate with more rounds before concluding.
    for attempt in range(3):
        for _ in range(rounds):
            for name, resilience in variants.items():   # interleaved
                elapsed, counts[name] = run_retail(ticks, scenario,
                                                   resilience)
                best[name] = min(best[name], elapsed)
        if best["idle resilience"] / best["bare"] <= \
                MAX_DISABLED_OVERHEAD:
            break
    assert len(set(counts.values())) == 1, \
        "idle resilience changed the result count"
    ratio = best["idle resilience"] / best["bare"]
    rows = [[name, n_readings / best[name],
             best[name] / best["bare"], counts[name]]
            for name in variants]
    return rows, ratio, n_readings


def run_sharded(stream, resilience) -> tuple[float, int]:
    processor = ComplexEventProcessor(
        stream.registry,
        sharding=ShardingConfig(shards=2, backend="thread",
                                batch_size=64),
        resilience=resilience)
    processor.register("pair",
                       seq_query(2, window=30.0, partitioned=True))
    processor.register("triple",
                       seq_query(3, window=30.0, partitioned=True))
    results = 0
    started = time.perf_counter()
    for event in stream.events:
        results += len(processor.feed(event))
    results += len(processor.flush())
    elapsed = time.perf_counter() - started
    processor.close()
    return elapsed, results


def measure_supervised_overhead(n_events: int, rounds: int) \
        -> tuple[list, float]:
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=15))
    variants = {"sharded bare": None,
                "sharded + idle supervision": ResilienceConfig()}
    best = {name: float("inf") for name in variants}
    counts = {}
    for _ in range(rounds):
        for name, resilience in variants.items():
            elapsed, results = run_sharded(stream, resilience)
            best[name] = min(best[name], elapsed)
            counts[name] = results
    assert len(set(counts.values())) == 1, \
        "idle supervision changed the result count"
    ratio = best["sharded + idle supervision"] / best["sharded bare"]
    rows = [[name, n_events / best[name],
             best[name] / best["sharded bare"], counts[name]]
            for name in variants]
    return rows, ratio


# -- E20c: coordinator idle-wait wakeups --------------------------------------

def run_idle_wait(stream, transport: str) \
        -> tuple[float, int, int, int]:
    """Process backend with slowed workers: the coordinator spends most
    of the run blocked in ``wait()``, which is exactly the regime the
    old fixed 5 ms tick burned 200 wakeups/s in.  Returns (elapsed,
    spin_waits, park_waits, results)."""
    processor = ComplexEventProcessor(
        stream.registry,
        sharding=ShardingConfig(shards=2, backend="process",
                                batch_size=SHED_BATCH,
                                queue_capacity=1, transport=transport,
                                response_timeout=120.0),
        resilience=ResilienceConfig(
            chaos=f"worker.slow:{SLOW_BATCH_SECONDS}", chaos_seed=7,
            hang_timeout=3600.0))
    processor.register("pair",
                       seq_query(2, window=30.0, partitioned=True))
    results = 0
    started = time.perf_counter()
    for event in stream.events:
        results += len(processor.feed(event))
    results += len(processor.flush())
    elapsed = time.perf_counter() - started
    backend = processor._router._backend
    spins, parks = backend.spin_waits, backend.park_waits
    processor.close()
    return elapsed, spins, parks, results


def measure_idle_wait(n_events: int) -> tuple[list, dict[str, float]]:
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=15))
    rows = []
    rates: dict[str, float] = {}
    counts = {}
    for transport in ["ring", "pipe"]:
        elapsed, spins, parks, results = run_idle_wait(stream,
                                                       transport)
        rates[transport] = parks / elapsed
        counts[transport] = results
        rows.append([transport, elapsed, spins, parks,
                     rates[transport], results])
    assert len(set(counts.values())) == 1, \
        "transports disagreed on the result count"
    return rows, rates


# -- E20b: shedding throughput at 2x capacity ---------------------------------

def run_shedding(stream, policy: str) -> tuple[float, int, int, int]:
    """Paced feed (arrivals at 2x the slowed service rate) under one
    shedding policy; returns (elapsed, results, shed, lost)."""
    processor = ComplexEventProcessor(
        stream.registry,
        sharding=ShardingConfig(shards=SHED_SHARDS, backend="thread",
                                batch_size=SHED_BATCH,
                                queue_capacity=1,
                                response_timeout=120.0),
        resilience=ResilienceConfig(
            chaos=f"worker.slow:{SLOW_BATCH_SECONDS}", chaos_seed=7,
            shedding=policy, hang_timeout=3600.0))
    processor.register("pair",
                       seq_query(2, window=30.0, partitioned=True))
    # Each shard serves one batch per SLOW_BATCH_SECONDS, so the
    # aggregate service rate is shards * batch / SLOW; pacing arrivals
    # at twice that is the "2x capacity" offered load.
    service_rate = SHED_SHARDS * SHED_BATCH / SLOW_BATCH_SECONDS
    gap = 1.0 / (2.0 * service_rate)
    results = 0
    started = time.perf_counter()
    for index, event in enumerate(stream.events):
        results += len(processor.feed(event))
        target = started + (index + 1) * gap
        remaining = target - time.perf_counter()
        if remaining > 0:
            time.sleep(remaining)
    results += len(processor.flush())
    elapsed = time.perf_counter() - started
    shards = processor.metrics.shards.values()
    shed = sum(shard.events_shed for shard in shards)
    lost = sum(shard.events_lost for shard in shards)
    processor.close()
    return elapsed, results, shed, lost


def measure_shedding(n_events: int) -> list:
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=15))
    rows = []
    for policy in SHED_POLICIES:
        elapsed, results, shed, lost = run_shedding(stream, policy)
        assert lost == 0, f"{policy}: shedding must not lose shards"
        if policy == "block":
            assert shed == 0, "the block policy must never shed"
        else:
            assert shed > 0, \
                f"{policy} shed nothing at 2x offered load"
        rows.append([policy, n_events / elapsed, shed,
                     f"{shed / n_events:.1%}", results])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="resilience overhead and shedding experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    args = parser.parse_args(argv)
    rounds = SMOKE_ROUNDS if args.smoke else FULL_ROUNDS
    retail = SMOKE_RETAIL if args.smoke else FULL_RETAIL
    sharded_events = SMOKE_SHARDED_EVENTS if args.smoke \
        else FULL_SHARDED_EVENTS
    shed_events = SMOKE_SHED_EVENTS if args.smoke else FULL_SHED_EVENTS

    rows, ratio, n_readings = measure_idle_overhead(retail, rounds)
    print_table(
        f"E20a — idle resilience overhead (retail demo, {n_readings} "
        f"readings, quarantine validation armed, chaos off, min of "
        f"{rounds})",
        ["configuration", "readings/s", "vs bare", "results"],
        rows)
    print(f"idle-resilience overhead: {(ratio - 1) * 100:+.1f}% "
          f"(budget {(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}%)")
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"idle resilience costs {ratio:.3f}x, budget is "
        f"{MAX_DISABLED_OVERHEAD}x")

    sup_rows, sup_ratio = measure_supervised_overhead(sharded_events,
                                                      rounds)
    print_table(
        f"E20a' — idle supervision on the thread backend "
        f"({sharded_events} events, 2 shards, min of {rounds}; "
        f"reported, not asserted — thread scheduling noise)",
        ["configuration", "events/s", "vs bare", "results"],
        sup_rows)
    print(f"idle-supervision overhead: {(sup_ratio - 1) * 100:+.1f}%")

    idle_rows, park_rates = measure_idle_wait(shed_events)
    print_table(
        f"E20c — coordinator idle-wait wakeups while workers are slow "
        f"({shed_events} events, process backend, 2 shards, workers "
        f"slowed {SLOW_BATCH_SECONDS * 1e3:g} ms/batch)",
        ["transport", "elapsed s", "spin waits", "park waits",
         "parks/s", "results"],
        idle_rows)
    print(f"old fixed 5 ms tick: {OLD_FIXED_TICK_RATE:g} wakeups/s "
          f"whenever waiting; budget {MAX_PARK_RATE:g}/s")
    for transport, rate in park_rates.items():
        assert rate <= MAX_PARK_RATE, (
            f"{transport} transport parked {rate:.0f}/s while waiting "
            f"on slow workers; budget is {MAX_PARK_RATE:g}/s (old "
            f"fixed tick: {OLD_FIXED_TICK_RATE:g}/s)")

    shed_rows = measure_shedding(shed_events)
    print_table(
        f"E20b — shedding policies at 2x capacity ({shed_events} "
        f"events, workers slowed {SLOW_BATCH_SECONDS * 1e3:g} ms/"
        f"batch, arrivals paced at twice the service rate)",
        ["policy", "events/s", "shed", "shed %", "results"],
        shed_rows)
    print("block preserved every event at service rate; dropping "
          "policies tracked the arrival rate by shedding the surplus "
          "(watermark-safely: shed events still advance stream time)")


def test_benchmark_idle_resilience(benchmark):
    scenario = RetailScenario.generate(SMOKE_RETAIL)
    ticks = list(scenario.ticks(NoiseModel.perfect()))
    result = benchmark.pedantic(
        lambda: run_retail(ticks, scenario, ResilienceConfig()),
        rounds=3, iterations=1)
    assert result[1] >= 0


if __name__ == "__main__":
    main()
