"""E1 — Figure 1: the system architecture as a measured dataflow.

Regenerates the architecture figure as numbers: how many items flow
through each layer (devices -> five cleaning stages -> complex event
processor -> event database) and each layer's standalone throughput.
"""

from __future__ import annotations

import time

from repro.cleaning import (
    AnomalyFilter,
    CleaningConfig,
    CleaningPipeline,
    Deduplication,
    EventGeneration,
    TemporalSmoothing,
    TimeConversion,
)
from repro.rfid import NoiseModel
from repro.system import SaseSystem
from repro.workloads import (
    LOCATION_UPDATE_RULE,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)

from common import print_table

SCENARIO_CONFIG = RetailConfig(n_products=40, n_shoppers=8,
                               n_shoplifters=2, n_misplacements=2, seed=1)
NOISE = NoiseModel(miss_rate=0.1, duplicate_rate=0.1, truncate_rate=0.02,
                   ghost_rate=0.01)


def collect_ticks(scenario: RetailScenario):
    return [(now, readings) for now, readings
            in scenario.ticks(NOISE)]


def measure_layers(scenario: RetailScenario, ticks) -> list[list[object]]:
    """Time each cleaning layer standalone on the same material."""
    rows: list[list[object]] = []
    total_raw = sum(len(readings) for _, readings in ticks)
    rows.append(["physical devices (simulated)", total_raw, total_raw,
                 float("nan"), ""])

    anomaly = AnomalyFilter(scenario.ons.known_tags())
    started = time.perf_counter()
    cleaned = [(now, anomaly.process(readings)) for now, readings in ticks]
    _record(rows, "1. anomaly filtering", anomaly.stats, started)

    smoothing = TemporalSmoothing(window=2.0)
    started = time.perf_counter()
    smoothed = [(now, smoothing.process(readings, now))
                for now, readings in cleaned]
    _record(rows, "2. temporal smoothing", smoothing.stats, started)

    conversion = TimeConversion(unit=1.0)
    started = time.perf_counter()
    logical = [(now, conversion.process(readings))
               for now, readings in smoothed]
    _record(rows, "3. time conversion", conversion.stats, started)

    dedup = Deduplication(scenario.layout)
    started = time.perf_counter()
    deduped = [(now, dedup.process(readings)) for now, readings in logical]
    _record(rows, "4. deduplication", dedup.stats, started)

    generation = EventGeneration(scenario.layout, scenario.ons)
    started = time.perf_counter()
    for _, readings in deduped:
        generation.process(readings)
    _record(rows, "5. event generation", generation.stats, started)
    return rows


def _record(rows, label, stats, started) -> None:
    elapsed = time.perf_counter() - started
    rate = stats.consumed / elapsed if elapsed > 0 else float("inf")
    rows.append([label, stats.consumed, stats.produced, rate,
                 f"dropped={stats.dropped} created={stats.created}"])


def build_system(scenario: RetailScenario) -> SaseSystem:
    system = SaseSystem(scenario.layout, scenario.ons)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    for event_type in ("SHELF_READING", "COUNTER_READING",
                       "EXIT_READING"):
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    return system


def measure_end_to_end(scenario: RetailScenario, ticks):
    system = build_system(scenario)
    total_raw = sum(len(readings) for _, readings in ticks)
    started = time.perf_counter()
    results = system.run_simulation(iter(ticks))
    elapsed = time.perf_counter() - started
    archived = len(system.event_db.db.execute(
        "SELECT * FROM locations"))
    return total_raw, len(results), archived, total_raw / elapsed


def main() -> None:
    scenario = RetailScenario.generate(SCENARIO_CONFIG)
    ticks = collect_ticks(scenario)
    rows = measure_layers(scenario, ticks)
    print_table(
        "E1 / Figure 1 — per-layer flow and standalone throughput",
        ["layer", "in", "out", "items/s", "notes"], rows)

    raw, results, archived, throughput = measure_end_to_end(scenario,
                                                            ticks)
    print_table(
        "E1 / Figure 1 — end-to-end (devices -> cleaning -> processor "
        "-> database)",
        ["raw readings", "query results", "location rows",
         "readings/s end-to-end"],
        [[raw, results, archived, throughput]])


# -- pytest-benchmark targets -------------------------------------------------

def test_benchmark_cleaning_pipeline(benchmark):
    scenario = RetailScenario.generate(SCENARIO_CONFIG)
    ticks = collect_ticks(scenario)

    def run():
        pipeline = CleaningPipeline(scenario.layout, scenario.ons,
                                    CleaningConfig())
        return sum(1 for _ in pipeline.run(iter(ticks)))

    events = benchmark(run)
    assert events > 0


def test_benchmark_end_to_end_system(benchmark):
    scenario = RetailScenario.generate(SCENARIO_CONFIG)
    ticks = collect_ticks(scenario)

    def run():
        system = build_system(scenario)
        return len(system.run_simulation(iter(ticks)))

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results > 0


if __name__ == "__main__":
    main()
