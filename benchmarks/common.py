"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` file regenerates one experiment from DESIGN.md's index:
run as a script it prints the full series (the table/figure data); under
``pytest benchmarks/ --benchmark-only`` it times one representative
configuration per series through pytest-benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.events.event import Event
from repro.events.model import SchemaRegistry


@dataclass(frozen=True)
class RunResult:
    """One measured engine run."""

    events: int
    results: int
    elapsed: float
    peak_stack: int = 0
    partitions: int = 0

    @property
    def throughput(self) -> float:
        """Events per second (the unit the engine evaluation reports)."""
        if self.elapsed <= 0:
            return float("inf")
        return self.events / self.elapsed


def run_plan(registry: SchemaRegistry, query_text: str,
             events: Sequence[Event],
             config: PlanConfig | None = None) -> RunResult:
    """Time one full engine run of *query_text* over *events*."""
    engine = Engine(registry)
    runtime = engine.runtime(query_text, config=config)
    results = 0
    started = time.perf_counter()
    for event in events:
        results += len(runtime.feed(event))
    results += len(runtime.flush())
    elapsed = time.perf_counter() - started
    return RunResult(events=len(events), results=results, elapsed=elapsed,
                     peak_stack=runtime.stats.stack_high_water,
                     partitions=runtime.stats.partitions_high_water)


def run_callable(events_count: int, fn) -> RunResult:
    """Time an arbitrary evaluator returning its result count."""
    started = time.perf_counter()
    results = fn()
    elapsed = time.perf_counter() - started
    return RunResult(events=events_count, results=results, elapsed=elapsed)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print one experiment table in the shape the paper reports."""
    materialized = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n## {title}")
    line = "  ".join(header.ljust(widths[index])
                     for index, header in enumerate(headers))
    print(line)
    print("  ".join("-" * width for width in widths))
    for row in materialized:
        print("  ".join(cell.ljust(widths[index])
                        for index, cell in enumerate(row)))


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3g}"
    return str(cell)
