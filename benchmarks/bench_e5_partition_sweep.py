"""E5 — engine evaluation: PAIS vs selection-after, sweeping partitions.

The partitioned active instance stack pushes the query's equality
equivalence class into the sequence scan: events hash into per-value
partitions and sequences never cross values.  Sweep the number of distinct
partition-attribute values; compare PAIS against the plan that constructs
across all values and filters the equalities afterwards.

Expected shape: PAIS throughput grows (per-partition stacks shrink) as the
domain grows; selection-after stays bound to the window's cross-product
and wastes more work the more partitions exist.
"""

from __future__ import annotations

from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table, run_plan

N_EVENTS = 5000
WINDOW = 30.0
DOMAINS = [1, 2, 5, 20, 100, 500]

PAIS = PlanConfig()
SELECTION_AFTER = PlanConfig().without("partition_pushdown")


def sweep():
    rows = []
    query = seq_query(3, window=WINDOW, partitioned=True)
    for domain in DOMAINS:
        stream = SyntheticStream.generate(SyntheticConfig(
            n_events=N_EVENTS, n_types=3, id_domain=domain,
            mean_gap=1.0, seed=5))
        pais = run_plan(stream.registry, query, stream.events, PAIS)
        after = run_plan(stream.registry, query, stream.events,
                         SELECTION_AFTER)
        assert pais.results == after.results
        rows.append([domain, pais.throughput, after.throughput,
                     pais.throughput / after.throughput,
                     pais.partitions, pais.results])
    return rows


def main() -> None:
    print_table(
        "E5 — PAIS vs selection-after vs #distinct partition values "
        f"({N_EVENTS} events, window {WINDOW:g}s)",
        ["id domain", "PAIS ev/s", "selection-after ev/s", "speedup",
         "partitions", "matches"],
        sweep())


def test_benchmark_pais_many_partitions(benchmark):
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=N_EVENTS, n_types=3, id_domain=100, mean_gap=1.0,
        seed=5))
    query = seq_query(3, window=WINDOW, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, PAIS),
        rounds=3, iterations=1)
    assert result.partitions > 50


def test_benchmark_selection_after_many_partitions(benchmark):
    stream = SyntheticStream.generate(SyntheticConfig(
        n_events=N_EVENTS, n_types=3, id_domain=100, mean_gap=1.0,
        seed=5))
    query = seq_query(3, window=WINDOW, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         SELECTION_AFTER),
        rounds=3, iterations=1)
    assert result.partitions <= 1


if __name__ == "__main__":
    main()
