"""E8 — engine evaluation: throughput vs sequence length.

Longer SEQ patterns mean more NFA states, more stacks, and deeper
construction recursion.  Sweep the number of positive components from 2 to
5 over one stream (the query's types are drawn from the stream's types).

Expected shape: throughput declines gently with length under the
optimized plan — per-partition stacks keep construction local — and the
match count drops as longer chains get rarer inside the window.
"""

from __future__ import annotations

from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=5000, n_types=5, id_domain=25,
                                mean_gap=1.0, seed=8)
WINDOW = 120.0
LENGTHS = [2, 3, 4, 5]


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for length in LENGTHS:
        query = seq_query(length, window=WINDOW, partitioned=True)
        optimized = run_plan(stream.registry, query, stream.events,
                             PlanConfig())
        rows.append([length, optimized.throughput, optimized.peak_stack,
                     optimized.results])
    return rows


def main() -> None:
    print_table(
        "E8 — sequence length vs throughput "
        f"({STREAM_CONFIG.n_events} events, window {WINDOW:g}s, "
        "partitioned)",
        ["SEQ length", "events/s", "peak stacks", "matches"],
        sweep())


def test_benchmark_seq_length_2(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(2, window=WINDOW, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         PlanConfig()),
        rounds=3, iterations=1)
    assert result.results > 0


def test_benchmark_seq_length_5(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(5, window=WINDOW, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         PlanConfig()),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


if __name__ == "__main__":
    main()
