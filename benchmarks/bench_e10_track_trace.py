"""E10 — track-and-trace over the pre-populated event database.

Section 4 runs "track-and-trace queries over an event database populated
with data collected in advance": current location and movement history.
This experiment populates the database from a generated supply-chain
history, verifies every answer against ground truth, and measures query
latency for both the programmatic API and ad-hoc SQL.
"""

from __future__ import annotations

import time

from repro.db import EventDatabase
from repro.workloads import WarehouseConfig, WarehouseHistory

from common import print_table

HISTORY_CONFIG = WarehouseConfig(n_boxes=20, items_per_box=10,
                                 n_box_changes=15, seed=10)


def build_database() -> tuple[WarehouseHistory, EventDatabase]:
    history = WarehouseHistory.generate(HISTORY_CONFIG)
    event_db = EventDatabase()
    history.populate(event_db)
    return history, event_db


def verify_and_measure(history: WarehouseHistory,
                       event_db: EventDatabase):
    rows = []

    started = time.perf_counter()
    for tag in history.item_tags:
        location = event_db.current_location(tag)
        assert location is not None
        assert location["area_id"] == history.truth.final_location[tag]
    elapsed = time.perf_counter() - started
    rows.append(["current location", len(history.item_tags),
                 len(history.item_tags) / elapsed, "all correct"])

    started = time.perf_counter()
    for tag in history.item_tags:
        moves = event_db.movement_history(tag)
        truth = history.truth.location_history[tag]
        assert [entry["area_id"] for entry in moves] == \
            [area for area, _ in truth]
    elapsed = time.perf_counter() - started
    rows.append(["movement history", len(history.item_tags),
                 len(history.item_tags) / elapsed, "all correct"])

    started = time.perf_counter()
    for tag in history.item_tags:
        stays = event_db.containment_history(tag)
        truth = history.truth.containment_history[tag]
        assert [entry["parent_tag"] for entry in stays] == \
            [parent for parent, _ in truth]
    elapsed = time.perf_counter() - started
    rows.append(["containment history", len(history.item_tags),
                 len(history.item_tags) / elapsed, "all correct"])

    started = time.perf_counter()
    per_area = event_db.db.query(
        "SELECT area_id, COUNT(*) AS n FROM locations "
        "WHERE time_out IS NULL GROUP BY area_id ORDER BY area_id")
    elapsed = time.perf_counter() - started
    total = sum(row["n"] for row in per_area)
    rows.append(["ad-hoc SQL inventory", 1, 1 / elapsed,
                 f"{total} open stays in {len(per_area)} areas"])
    return rows


def main() -> None:
    history, event_db = build_database()
    print(f"pre-populated: {len(history.item_tags)} items, "
          f"{len(history.box_tags)} boxes, {len(history.ops)} history "
          f"ops, {len(event_db.db.table('locations'))} location rows")
    print_table(
        "E10 — track-and-trace query latency and correctness",
        ["query", "lookups", "lookups/s", "verification"],
        verify_and_measure(history, event_db))


def test_benchmark_populate(benchmark):
    history = WarehouseHistory.generate(HISTORY_CONFIG)

    def run():
        event_db = EventDatabase()
        history.populate(event_db)
        return len(event_db.db.table("locations"))

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rows > 0


def test_benchmark_current_location_lookups(benchmark):
    history, event_db = build_database()

    def run():
        return [event_db.current_location(tag)
                for tag in history.item_tags]

    locations = benchmark(run)
    assert all(location is not None for location in locations)


def test_benchmark_movement_history_lookups(benchmark):
    history, event_db = build_database()

    def run():
        return [event_db.movement_history(tag)
                for tag in history.item_tags]

    histories = benchmark(run)
    assert all(histories)


if __name__ == "__main__":
    main()
