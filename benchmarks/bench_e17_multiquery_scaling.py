"""E17 — multi-query scaling: throughput vs registered-query count.

Without the dispatch index, ``ComplexEventProcessor`` offers every event
to every registered query, so per-event cost grows linearly with the
number of queries even when most can never match the event's type.  The
type-dispatch subscription index (stream -> event type -> subscribing
queries) feeds each event only to the queries whose pattern mentions its
type, so per-event cost tracks the *subscriber* count instead.

The workload models a multi-tenant processor: 90% of the traffic is one
hot type pair handled by the first query, and each additional query
watches a different pair drawn from the remaining 14-type alphabet.
Adding queries multiplies the naive loop's per-event cost but barely
moves the indexed cost — the hot events touch one query either way.
Result equality between the two modes is asserted at every k.
"""

from __future__ import annotations

import argparse
import time

from repro.system.processor import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    type_names

from common import print_table

FULL_EVENTS = 8_000
SMOKE_EVENTS = 1_200
QUERY_COUNTS = [1, 2, 4, 8, 16, 32]
N_TYPES = 16


def build_stream(n_events: int) -> SyntheticStream:
    # The first two types carry 90% of the traffic; the remaining 14
    # share the rest uniformly.
    weights = (45.0, 45.0) + (10.0 / (N_TYPES - 2),) * (N_TYPES - 2)
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=N_TYPES, id_domain=32, mean_gap=1.0,
        seed=17, type_weights=weights))


def build_queries(count: int) -> list[tuple[str, str]]:
    """The hot-pair query plus ``count - 1`` queries cycling over the
    cold type pairs."""
    names = type_names(N_TYPES)
    queries = []
    for index in range(count):
        if index == 0:
            first, second = names[0], names[1]
        else:
            offset = 2 + 2 * (index - 1) % (N_TYPES - 2)
            first, second = names[offset], names[offset + 1]
        queries.append((
            f"q{index}",
            f"EVENT SEQ({first} x, {second} y) WHERE x.id = y.id "
            f"WITHIN 30 RETURN x.id"))
    return queries


def run_once(stream: SyntheticStream, count: int,
             use_dispatch_index: bool) -> tuple[float, list]:
    processor = ComplexEventProcessor(
        stream.registry, use_dispatch_index=use_dispatch_index)
    for name, text in build_queries(count):
        processor.register(name, text)
    produced = []
    started = time.perf_counter()
    for event in stream.events:
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    elapsed = time.perf_counter() - started
    fingerprint = [(name, result.start, result.end)
                   for name, result in produced]
    return elapsed, fingerprint


def sweep(n_events: int, query_counts: list[int]) -> list[list]:
    stream = build_stream(n_events)
    rows = []
    base_indexed = base_naive = None
    for count in query_counts:
        naive_elapsed, naive_fp = run_once(stream, count, False)
        indexed_elapsed, indexed_fp = run_once(stream, count, True)
        assert indexed_fp == naive_fp, \
            f"dispatch index diverged at {count} queries"
        naive_us = naive_elapsed / n_events * 1e6
        indexed_us = indexed_elapsed / n_events * 1e6
        if base_indexed is None:
            base_indexed, base_naive = indexed_us, naive_us
        rows.append([count, naive_us, indexed_us,
                     naive_us / base_naive, indexed_us / base_indexed,
                     naive_elapsed / indexed_elapsed,
                     len(indexed_fp)])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="throughput vs registered-query count, "
                    "dispatch index on/off")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    counts = QUERY_COUNTS[:4] if args.smoke else QUERY_COUNTS
    rows = sweep(n_events, counts)
    print_table(
        f"E17 — multi-query scaling ({n_events} events, {N_TYPES} "
        f"types, keyed pair queries)",
        ["queries", "naive us/ev", "indexed us/ev", "naive growth",
         "indexed growth", "index speedup", "results"],
        rows)
    top = rows[-1]
    print(f"at {top[0]} queries the naive loop costs {top[3]:.1f}x its "
          f"1-query cost; the dispatch index costs {top[4]:.1f}x "
          f"(linear would be {top[0]:.0f}x).")


def test_benchmark_indexed_16_queries(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(lambda: run_once(stream, 16, True),
                                rounds=3, iterations=1)
    assert result[1]


def test_benchmark_naive_16_queries(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(lambda: run_once(stream, 16, False),
                                rounds=3, iterations=1)
    assert result[1]


if __name__ == "__main__":
    main()
