"""E9 — engine evaluation: SASE plans vs a relational window join.

The paper positions native sequence operators against evaluating sequence
queries with relational techniques alone.  The baseline
(:class:`repro.baselines.WindowJoinEngine`) buffers each component type
inside the window and nested-loop joins on every final-type arrival —
predicates and order applied as join conditions, negation as an anti-join.

Sweep the window; compare the optimized SASE plan, the naive SASE plan,
and the join baseline.  Expected shape: the optimized plan's lead over the
join widens with the window (the join's per-arrival work grows with the
buffered cross-product); the naive SASE plan tracks the join's growth.
"""

from __future__ import annotations

from repro.baselines import WindowJoinEngine
from repro.core.plan import PlanConfig
from repro.lang.parser import parse_query
from repro.lang.semantics import analyze
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table, run_callable, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=2500, n_types=3, id_domain=40,
                                mean_gap=1.0, seed=9)
WINDOWS = [10.0, 25.0, 50.0, 100.0]


def run_baseline(stream: SyntheticStream, query_text: str):
    analyzed = analyze(parse_query(query_text), stream.registry)
    engine = WindowJoinEngine(analyzed)

    def evaluate() -> int:
        count = 0
        for event in stream.events:
            count += len(engine.feed(event))
        return count + len(engine.flush())

    return run_callable(len(stream.events), evaluate)


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for window in WINDOWS:
        query = seq_query(3, window=window, partitioned=True)
        optimized = run_plan(stream.registry, query, stream.events,
                             PlanConfig())
        join = run_baseline(stream, query)
        assert optimized.results == join.results
        rows.append([window, optimized.throughput, join.throughput,
                     optimized.throughput / join.throughput,
                     optimized.results])
    return rows


def main() -> None:
    print_table(
        "E9 — SASE optimized plan vs relational window join "
        f"({STREAM_CONFIG.n_events} events, SEQ(A,B,C) + equality "
        "predicates)",
        ["window (s)", "SASE ev/s", "join baseline ev/s",
         "SASE speedup", "matches"],
        sweep())


def test_benchmark_sase_plan(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=25.0, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         PlanConfig()),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


def test_benchmark_join_baseline(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=25.0, partitioned=True)
    result = benchmark.pedantic(
        lambda: run_baseline(stream, query),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


if __name__ == "__main__":
    main()
