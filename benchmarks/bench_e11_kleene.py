"""E11 — extension ablation: Kleene closure cost by mode and window.

The demo's motivation lists "recursive pattern matching"; the engine
implements it as SASE+-style Kleene components with two binding modes:
MAXIMAL (one binding per anchor, absorbing every qualifying event) and
ANY_SUBSET (the strict skip-till-any-match enumeration, capped).

Sweep the window for ``SEQ(A a, B+ b, C c)``; expected shape: MAXIMAL
grows linearly with the events per window, ANY_SUBSET exponentially until
its cap bites.
"""

from __future__ import annotations

from repro.core.plan import KleeneMode, PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=3000, n_types=3, id_domain=60,
                                mean_gap=1.0, seed=11)
WINDOWS = [10.0, 30.0, 60.0, 120.0]

QUERY_TEMPLATE = """
EVENT SEQ(A a, B+ b, C c)
WHERE a.id = b.id AND a.id = c.id
WITHIN {window:g} seconds
RETURN a.id, COUNT(b) AS n, AVG(b.price) AS mean_price
"""

MAXIMAL = PlanConfig(kleene_mode=KleeneMode.MAXIMAL)
SUBSETS = PlanConfig(kleene_mode=KleeneMode.ANY_SUBSET,
                     max_kleene_events=8)


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for window in WINDOWS:
        query = QUERY_TEMPLATE.format(window=window)
        maximal = run_plan(stream.registry, query, stream.events, MAXIMAL)
        subsets = run_plan(stream.registry, query, stream.events, SUBSETS)
        rows.append([window, maximal.throughput, maximal.results,
                     subsets.throughput, subsets.results])
    return rows


def main() -> None:
    print_table(
        "E11 — Kleene closure: MAXIMAL vs ANY_SUBSET (cap 8) vs window "
        f"({STREAM_CONFIG.n_events} events, SEQ(A, B+, C) partitioned)",
        ["window (s)", "maximal ev/s", "maximal matches",
         "subsets ev/s", "subset matches"],
        sweep())


def test_benchmark_kleene_maximal(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = QUERY_TEMPLATE.format(window=60.0)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, MAXIMAL),
        rounds=3, iterations=1)
    assert result.results > 0


def test_benchmark_kleene_subsets(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = QUERY_TEMPLATE.format(window=60.0)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, SUBSETS),
        rounds=3, iterations=1)
    assert result.results > 0


if __name__ == "__main__":
    main()
