"""E15b — shard transport microbenchmark: ring vs pipe round trips.

Isolates the IPC layer the process backend stands on.  One echo worker
per transport acknowledges *preserialized* batch payloads — the exact framed
bytes the ring transport puts on the wire for batches of 16/64/256
routed events — and the coordinator measures request→ack round-trip
throughput with a window of in-flight batches matching the router's
``queue_capacity``, the pipelining shape of the real submit path.  Serialization is excluded **symmetrically**:
the pipe ships the very same ``bytes`` object (pickling a bytes object
is a header plus one memcpy), so the table compares pure transport —
shared-memory frames with semaphore parking against a
``multiprocessing.Queue``'s feeder thread, pickle framing, and pipe
syscalls.  The codec halves (marshal-frame encode/decode vs
``pickle.dumps``/``loads`` of the same batches) are timed separately
in a second table: they ride on top of either transport and dominate
end-to-end cost equally, which is why they must not blur the gate.

This is the locally-verifiable half of the E15 story: the end-to-end
speedup of the process backend needs multiple cores, but the transport
ratio does not.  CI gates on ring ≥ 3x pipe at batch 64
(``--assert-speedup 3``).
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import pickle
import struct
import time

from repro.events.event import Event
from repro.persist.records import HEADER_BYTES, frame, iter_frames
from repro.sharding.transport import Ring, decode_request, encode_request

from common import print_table

FULL_ROUND_TRIPS = 8000
SMOKE_ROUND_TRIPS = 2000
BATCH_SIZES = [16, 64, 256]
#: The batch size the CI speedup gate reads (the router's default).
GATE_BATCH = 64
#: In-flight request window.  Large enough that per-message transport
#: cost, not scheduler wake latency, dominates the measurement: on a
#: one-core host every park/wake costs a ~100us context switch that
#: BOTH transports pay identically, so a small window would just
#: measure the scheduler.  The real coordinator amortizes wakes the
#: same way — eight shards x ``queue_capacity`` requests can be in
#: flight before anything parks.
WINDOW = 64
RING_BYTES = 1 << 20
_STOP = frame(b"S")
#: Both echo workers drain everything pending and answer with one
#: credit-style acknowledgement carrying the number of requests
#: consumed — the flow-control shape of the real response path, where
#: one drain retires many in-flight batches.
_ACK_COUNT = struct.Struct("<I")


def ack_frame(count: int) -> bytes:
    return frame(b"A" + _ACK_COUNT.pack(count))

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods()
    else "spawn")


def make_batch(batch_id: int, size: int) -> tuple:
    entries = [("e", batch_id * size + index,
                Event("A", float(index), {"id": index % 32, "v": index},
                      batch_id * size + index), (0,))
               for index in range(size)]
    return ("batch", batch_id, entries)


def make_payload(size: int) -> bytes:
    """The framed wire bytes of one real routed batch of *size* events."""
    return frame(encode_request(make_batch(0, size)))


def ring_echo_worker(in_name, out_name, capacity, in_wake,
                     out_wake) -> None:
    in_ring = Ring.attach(in_name, capacity, in_wake)
    out_ring = Ring.attach(out_name, capacity, out_wake)
    try:
        while True:
            data = in_ring.snapshot()
            if not data:
                in_ring.park(0.05)
                continue
            consumed = 0
            count = 0
            stop = False
            for offset, payload in iter_frames(data):
                consumed = offset + HEADER_BYTES + len(payload)
                if payload == b"S":
                    stop = True
                    break
                count += 1
            in_ring.consume(consumed)
            if count:
                while not out_ring.try_write(ack_frame(count)):
                    time.sleep(0.0002)
            if stop:
                return
    finally:
        in_ring.close()
        out_ring.close()


def pipe_echo_worker(in_queue, out_queue) -> None:
    import queue as queue_module
    while True:
        payload = in_queue.get()
        if payload == b"S":
            return
        count = 1
        stop = False
        while True:  # drain eagerly: one counted ack per burst
            try:
                payload = in_queue.get_nowait()
            except queue_module.Empty:
                break
            if payload == b"S":
                stop = True
                break
            count += 1
        out_queue.put(count)
        if stop:
            return


def measure_ring(batch: int, round_trips: int) -> float:
    in_wake = _CTX.Semaphore(0)
    out_wake = _CTX.Semaphore(0)
    in_ring = Ring.create(RING_BYTES, in_wake)
    out_ring = Ring.create(RING_BYTES, out_wake)
    worker = _CTX.Process(
        target=ring_echo_worker,
        args=(in_ring.name, out_ring.name, RING_BYTES, in_wake,
              out_wake), daemon=True)
    worker.start()
    payload = make_payload(batch)
    try:
        sent = acked = inflight = 0
        started = time.perf_counter()
        while acked < round_trips:
            while (sent < round_trips and inflight < WINDOW
                    and in_ring.try_write(payload)):
                sent += 1
                inflight += 1
            data = out_ring.snapshot()
            if data:
                consumed = 0
                for offset, echoed in iter_frames(data):
                    consumed = offset + HEADER_BYTES + len(echoed)
                    acked += _ACK_COUNT.unpack(echoed[1:5])[0]
                out_ring.consume(consumed)
                inflight = sent - acked
            elif inflight:
                out_ring.park(0.05)
        elapsed = time.perf_counter() - started
        while not in_ring.try_write(_STOP):
            time.sleep(0.0002)
        worker.join(timeout=5.0)
    finally:
        if worker.is_alive():
            worker.terminate()
        in_ring.close()
        out_ring.close()
    return batch * round_trips / elapsed


def measure_pipe(batch: int, round_trips: int) -> float:
    in_queue = _CTX.Queue(maxsize=WINDOW)
    out_queue = _CTX.Queue()
    worker = _CTX.Process(target=pipe_echo_worker,
                          args=(in_queue, out_queue), daemon=True)
    worker.start()
    payload = make_payload(batch)
    try:
        sent = acked = 0
        started = time.perf_counter()
        while acked < round_trips:
            if sent < round_trips and sent - acked < WINDOW:
                in_queue.put(payload)
                sent += 1
                continue
            acked += out_queue.get(timeout=30.0)
        elapsed = time.perf_counter() - started
        in_queue.put(b"S")
        worker.join(timeout=5.0)
    finally:
        if worker.is_alive():
            worker.terminate()
        for a_queue in (in_queue, out_queue):
            a_queue.cancel_join_thread()
            a_queue.close()
    return batch * round_trips / elapsed


def measure_codecs(batch: int, repeats: int = 400) -> list:
    """Serialization cost per batch: the marshal-frame codec the ring
    uses vs the pickle the pipe transport applies implicitly."""
    message = make_batch(0, batch)
    framed = frame(encode_request(message))
    pickled = pickle.dumps(message)

    def best(function) -> float:
        times = []
        for _ in range(5):
            started = time.perf_counter()
            for _ in range(repeats):
                function()
            times.append((time.perf_counter() - started) / repeats)
        return min(times) * 1e6

    marshal_us = (best(lambda: frame(encode_request(message)))
                  + best(lambda: decode_request(
                      next(iter_frames(framed))[1])))
    pickle_us = (best(lambda: pickle.dumps(message))
                 + best(lambda: pickle.loads(pickled)))
    return [batch, marshal_us, pickle_us, len(framed), len(pickled)]


def sweep(round_trips: int) -> tuple[list[list], dict[int, float]]:
    rows = []
    ratios: dict[int, float] = {}
    for batch in BATCH_SIZES:
        # Pipe first: a warm ring cannot borrow its page faults.
        pipe = measure_pipe(batch, round_trips)
        ring = measure_ring(batch, round_trips)
        ratios[batch] = ring / pipe
        rows.append([batch, ring, pipe, ratios[batch]])
    return rows, ratios


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="shard transport round-trip microbenchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    parser.add_argument("--assert-speedup", type=float, metavar="X",
                        help="fail unless ring >= X times pipe "
                             f"throughput at batch {GATE_BATCH}")
    args = parser.parse_args(argv)
    round_trips = SMOKE_ROUND_TRIPS if args.smoke else FULL_ROUND_TRIPS
    rows, ratios = sweep(round_trips)
    cores = os.cpu_count() or 1
    print_table(
        f"E15b — transport round-trip throughput ({round_trips} "
        f"request->ack round trips per cell, preserialized batch "
        f"payloads, 1 echo worker, host has {cores} core(s))",
        ["batch", "ring ev/s", "pipe ev/s", "ring/pipe"],
        rows)
    print("ring = shared-memory frames + semaphore parking; pipe = "
          "multiprocessing.Queue (feeder thread + pipe syscalls); both "
          "carry the identical framed batch bytes")
    codec_rows = [measure_codecs(batch) for batch in BATCH_SIZES]
    print_table(
        "E15b — serialization cost per batch (rides on either "
        "transport)",
        ["batch", "marshal enc+dec us", "pickle dumps+loads us",
         "frame bytes", "pickle bytes"],
        codec_rows)
    if args.assert_speedup is not None:
        gate = ratios[GATE_BATCH]
        assert gate >= args.assert_speedup, (
            f"ring transport is only {gate:.2f}x pipe at batch "
            f"{GATE_BATCH}; the gate requires "
            f">= {args.assert_speedup:g}x")
        print(f"speedup gate ok: ring is {gate:.2f}x pipe at batch "
              f"{GATE_BATCH} (>= {args.assert_speedup:g}x)")


def test_benchmark_ring_round_trip(benchmark):
    result = benchmark.pedantic(
        lambda: measure_ring(GATE_BATCH, 100), rounds=3, iterations=1)
    assert result > 0


if __name__ == "__main__":
    main()
