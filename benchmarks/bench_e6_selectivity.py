"""E6 — engine evaluation: predicate selectivity and filter pushdown.

"To reduce intermediate results, we strategically push some of the
predicates ... down to the sequence operators" (Section 2.1.2).  Sweep the
selectivity of a single-variable predicate on the first sequence component
(``e0.v < k`` over a uniform 0..9 attribute) and compare evaluating it at
push time (events never enter the stack) against evaluating it after
construction.

Expected shape: at low selectivity pushdown wins by a wide margin (the
stacks stay nearly empty); the two plans converge as selectivity
approaches 1.
"""

from __future__ import annotations

from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=5000, n_types=3, id_domain=40,
                                v_domain=10, mean_gap=1.0, seed=6)
WINDOW = 60.0
FILTERS = [1, 3, 5, 8, 10]  # e0.v < k  ->  selectivity k/10

PUSHDOWN = PlanConfig()
NO_PUSHDOWN = PlanConfig().without("filter_pushdown")


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for k in FILTERS:
        query = seq_query(3, window=WINDOW, partitioned=True, v_filter=k)
        pushed = run_plan(stream.registry, query, stream.events, PUSHDOWN)
        late = run_plan(stream.registry, query, stream.events,
                        NO_PUSHDOWN)
        assert pushed.results == late.results
        rows.append([f"{k / 10:.0%}", pushed.throughput, late.throughput,
                     pushed.throughput / late.throughput,
                     pushed.peak_stack, late.peak_stack, pushed.results])
    return rows


def main() -> None:
    print_table(
        "E6 — filter pushdown vs predicate selectivity "
        f"({STREAM_CONFIG.n_events} events, window {WINDOW:g}s)",
        ["selectivity", "pushdown ev/s", "late filter ev/s", "speedup",
         "peak stacks (pd)", "peak stacks (late)", "matches"],
        sweep())


def test_benchmark_filter_pushdown_selective(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=WINDOW, partitioned=True, v_filter=2)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, PUSHDOWN),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


def test_benchmark_late_filter_selective(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=WINDOW, partitioned=True, v_filter=2)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         NO_PUSHDOWN),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


if __name__ == "__main__":
    main()
