"""E14 — ablation: construction-time predicate evaluation.

"To reduce intermediate results, we strategically push some of the
predicates ... down to the sequence operators" (Section 2.1.2).  PAIS
covers equality classes; this ablation covers the rest: evaluating
*cross-component* predicates (e.g. ``e0.v < e1.v``) inside the
construction DFS, pruning subtrees before candidate sequences
materialise, versus in the downstream Selection operator.

Sweep the predicate's selectivity; the queries here have no equality
class, so PAIS cannot help and construction pushdown is the only lever.
Expected shape: the win grows as the predicate gets more selective and as
the candidate space (window) grows.
"""

from __future__ import annotations

from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=3000, n_types=3, id_domain=40,
                                v_domain=10, mean_gap=1.0, seed=14)
WINDOW = 40.0
GAPS = [8, 6, 4, 2, 0]  # predicate: e1.v - e0.v > gap (smaller = laxer)

LATE = PlanConfig()
DURING = PlanConfig().with_construction_pushdown()


def query_for(gap: int) -> str:
    return (f"EVENT SEQ(A e0, B e1, C e2)\n"
            f"WHERE e1.v - e0.v > {gap} AND e2.v - e1.v > {gap}\n"
            f"WITHIN {WINDOW:g} seconds\nRETURN e0.id")


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for gap in GAPS:
        query = query_for(gap)
        late = run_plan(stream.registry, query, stream.events, LATE)
        during = run_plan(stream.registry, query, stream.events, DURING)
        assert late.results == during.results
        rows.append([f"v-gap > {gap}", during.throughput,
                     late.throughput,
                     during.throughput / late.throughput,
                     late.results])
    return rows


def main() -> None:
    print_table(
        "E14 — construction-time predicate evaluation vs Selection "
        f"({STREAM_CONFIG.n_events} events, SEQ(A,B,C), window "
        f"{WINDOW:g}s, no equality class)",
        ["predicate", "during-construction ev/s", "selection ev/s",
         "speedup", "matches"],
        sweep())


def test_benchmark_construction_pushdown_selective(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = query_for(6)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, DURING),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


def test_benchmark_selection_late_selective(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = query_for(6)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events, LATE),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


if __name__ == "__main__":
    main()
