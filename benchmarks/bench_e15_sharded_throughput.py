"""E15 — sharded runtime throughput: 1/2/4 shards vs single-process.

The sharded runtime hash-partitions the cleaned stream by each query's
partition attribute across worker shards (``repro.sharding``).  This
experiment measures what that buys on a partitioned, function-free
workload — the case the analyzer classifies as ``keyed`` — comparing the
classic synchronous processor against the sharded runtime at 1, 2, and 4
shards for the inline and process backends.

Expected shape: inline sharding only adds routing overhead (same
process, same core); the process backend amortises that overhead across
cores, so its relative throughput should exceed 1.0 on multi-core hosts
with enough per-event work.  On a single-core host the process backend
pays IPC costs with no parallelism to gain — the table reports the host
core count so the numbers can be read honestly.  Output equality with
the baseline is asserted on every run, so this benchmark doubles as a
large differential test.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.sharding import ShardingConfig
from repro.system.processor import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table

FULL_EVENTS = 12_000
SMOKE_EVENTS = 1_500
SHARD_COUNTS = [1, 2, 4]
#: (backend, transport) pairs; transport only matters for ``process``.
VARIANTS = [("inline", None), ("process", "ring"), ("process", "pipe")]


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=15))


QUERIES = {
    "pair": seq_query(2, window=30.0, partitioned=True),
    "triple": seq_query(3, window=30.0, partitioned=True),
}


def run_once(stream: SyntheticStream,
             sharding: ShardingConfig | None) -> tuple[float, list]:
    processor = ComplexEventProcessor(stream.registry, sharding=sharding)
    for name, text in QUERIES.items():
        processor.register(name, text)
    produced = []
    started = time.perf_counter()
    for event in stream.events:
        produced.extend(processor.feed(event))
    produced.extend(processor.flush())
    elapsed = time.perf_counter() - started
    fingerprint = [(name, result.start, result.end)
                   for name, result in produced]
    return elapsed, fingerprint


def sweep(n_events: int, variants: list[tuple[str, str | None]],
          shard_counts: list[int]) -> list[list]:
    stream = build_stream(n_events)
    base_elapsed, base_fingerprint = run_once(stream, None)
    base_throughput = n_events / base_elapsed
    rows = [["single-process", "-", base_throughput, 1.0,
             len(base_fingerprint)]]
    for backend, transport in variants:
        label = backend if transport is None else \
            f"{backend}/{transport}"
        for shards in shard_counts:
            config = ShardingConfig(
                shards=shards, backend=backend, batch_size=64,
                queue_capacity=8,
                transport=transport if transport else "ring")
            elapsed, fingerprint = run_once(stream, config)
            assert fingerprint == base_fingerprint, \
                f"{label}/{shards} diverged from the baseline"
            throughput = n_events / elapsed
            rows.append([f"{label} x{shards}", shards, throughput,
                         throughput / base_throughput,
                         len(fingerprint)])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="sharded runtime throughput experiment")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds, "
                             "inline backend + one process run per "
                             "transport)")
    parser.add_argument(
        "--assert-multicore-speedup", type=float, metavar="X",
        help="fail unless the best process/ring row reaches X times "
             "the single-process baseline; skipped (with a notice) on "
             "single-core hosts, where no parallel speedup exists to "
             "measure")
    args = parser.parse_args(argv)
    if args.smoke:
        rows = sweep(SMOKE_EVENTS, [("inline", None)], [1, 2]) + \
            sweep(SMOKE_EVENTS,
                  [("process", "ring"), ("process", "pipe")], [2])[1:]
    else:
        rows = sweep(FULL_EVENTS, VARIANTS, SHARD_COUNTS)
    cores = os.cpu_count() or 1
    print_table(
        f"E15 — sharded runtime throughput "
        f"({SMOKE_EVENTS if args.smoke else FULL_EVENTS} events, "
        f"2 keyed SEQ queries, host has {cores} core(s))",
        ["configuration", "shards", "events/s", "vs single-process",
         "results"],
        rows)
    if cores == 1:
        print("note: single-core host; the process backend cannot "
              "exceed 1.0x here (IPC overhead, no parallelism).  The "
              "transport-level ring-vs-pipe comparison that IS "
              "verifiable on one core lives in E15b.")
    if args.assert_multicore_speedup is not None:
        if cores < 2:
            print("multicore speedup gate skipped: single-core host")
        else:
            best = max(row[2] / rows[0][2] for row in rows[1:]
                       if str(row[0]).startswith("process/ring"))
            assert best >= args.assert_multicore_speedup, (
                f"process/ring peaks at {best:.2f}x single-process on "
                f"{cores} cores; the gate requires "
                f">= {args.assert_multicore_speedup:g}x")
            print(f"multicore speedup gate ok: process/ring reaches "
                  f"{best:.2f}x single-process")


def test_benchmark_sharded_inline(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(
        lambda: run_once(stream, ShardingConfig(shards=2,
                                                backend="inline")),
        rounds=3, iterations=1)
    assert result[1]


def test_benchmark_single_process_baseline(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(lambda: run_once(stream, None),
                                rounds=3, iterations=1)
    assert result[1]


if __name__ == "__main__":
    main()
