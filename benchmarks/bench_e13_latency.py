"""E13 — per-event processing latency (the paper's latency requirement).

"Despite the volume of data and logic complexity, RFID data processing
needs to be fast.  Filtering, pattern matching, and aggregation must all
be performed with low latency" (Section 1).

This experiment measures the wall-clock cost of feeding *one event*
through a registered query — the detection latency floor — and reports
the distribution (p50 / p95 / p99 / max) per plan.  A plan with good
*throughput* can still exhibit ugly tail latency if single events trigger
huge construction bursts; this is where the optimizations show up in the
tail.
"""

from __future__ import annotations

import time

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table

STREAM_CONFIG = SyntheticConfig(n_events=6000, n_types=3, id_domain=60,
                                mean_gap=1.0, seed=13)
WINDOW = 60.0

PLANS = [
    ("optimized", PlanConfig()),
    ("no PAIS", PlanConfig().without("partition_pushdown")),
    ("no window pushdown", PlanConfig().without("window_pushdown")),
]


def measure(config: PlanConfig) -> tuple[list[float], int]:
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(3, window=WINDOW, partitioned=True)
    engine = Engine(stream.registry)
    runtime = engine.runtime(query, config=config)
    latencies: list[float] = []
    results = 0
    for event in stream.events:
        started = time.perf_counter()
        results += len(runtime.feed(event))
        latencies.append(time.perf_counter() - started)
    results += len(runtime.flush())
    return latencies, results


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def sweep():
    rows = []
    for label, config in PLANS:
        latencies, results = measure(config)
        latencies.sort()
        rows.append([
            label,
            percentile(latencies, 0.50) * 1e6,
            percentile(latencies, 0.95) * 1e6,
            percentile(latencies, 0.99) * 1e6,
            latencies[-1] * 1e3,
            results,
        ])
    return rows


def main() -> None:
    print_table(
        "E13 — per-event latency by plan "
        f"({STREAM_CONFIG.n_events} events, SEQ(A,B,C), window "
        f"{WINDOW:g}s)",
        ["plan", "p50 (us)", "p95 (us)", "p99 (us)", "max (ms)",
         "matches"],
        sweep())


def test_benchmark_latency_optimized(benchmark):
    def run():
        latencies, _ = measure(PlanConfig())
        latencies.sort()
        return percentile(latencies, 0.99)

    p99 = benchmark.pedantic(run, rounds=3, iterations=1)
    assert p99 < 0.01  # 10 ms ceiling leaves huge slack; guards regressions


def test_benchmark_latency_no_pushdown(benchmark):
    def run():
        latencies, _ = measure(
            PlanConfig().without("window_pushdown"))
        latencies.sort()
        return percentile(latencies, 0.99)

    p99 = benchmark.pedantic(run, rounds=3, iterations=1)
    assert p99 > 0


if __name__ == "__main__":
    main()
