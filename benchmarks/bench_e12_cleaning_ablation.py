"""E12 — ablation: temporal-smoothing strategies vs reader loss.

The Temporal Smoothing layer "decides whether an object was present at
time t based not only on the reading at time t, but also on the readings
of this object in a window of size w before t" (Section 3).  Its job is
*presence restoration*: every scan tick a present tag goes unreported is a
gap monitoring applications see as absence.

This ablation puts tags on a shelf for a known interval (one departs
mid-run), sweeps the reader miss rate, and scores each strategy on:

* **coverage** — fraction of (present tag, scan tick) pairs that produced
  an event after cleaning (higher is better);
* **overhang** — smoothed readings emitted *after* a tag actually left
  (the cost of smoothing: phantom presence; lower is better).

Expected shape: no smoothing tracks ``1 - miss_rate``; the fixed window
restores short gaps but saturates once runs of misses outgrow ``w``;
adaptive smoothing widens per-tag windows with observed loss and keeps
coverage high at the price of a bounded overhang.
"""

from __future__ import annotations

from repro.cleaning import CleaningConfig, CleaningPipeline
from repro.ons import ObjectNameService
from repro.rfid import MovementScript, NoiseModel, RfidSimulator, \
    default_retail_layout

from common import print_table

TAGS = list(range(100, 115))
DEPARTING_TAG = TAGS[0]
DEPARTURE_TIME = 30.0
END_TIME = 60.0
MISS_RATES = [0.0, 0.2, 0.4, 0.6]
STRATEGIES = [
    ("none", CleaningConfig(smoothing="none")),
    ("fixed (w=2s)", CleaningConfig(smoothing="fixed",
                                    smoothing_window=2.0)),
    ("adaptive", CleaningConfig(smoothing="adaptive",
                                max_smoothing_ticks=8)),
]


def run_once(miss_rate: float,
             cleaning: CleaningConfig) -> tuple[float, int]:
    layout = default_retail_layout()
    ons = ObjectNameService()
    for tag in TAGS:
        ons.register_product(tag, f"p{tag}", home_area_id=1)
    simulator = RfidSimulator(
        layout, NoiseModel(miss_rate=miss_rate, duplicate_rate=0.0,
                           truncate_rate=0.0, ghost_rate=0.0), seed=12)
    script = MovementScript()
    for tag in TAGS:
        script.move(0.0, tag, 1)
    script.remove(DEPARTURE_TIME, DEPARTING_TAG)

    pipeline = CleaningPipeline(layout, ons, cleaning)
    observed: set[tuple[int, float]] = set()
    overhang = 0
    for now, readings in simulator.run_script(script, until=END_TIME):
        for event in pipeline.process_tick(readings, now):
            tag = event["TagId"]
            observed.add((tag, event.timestamp))
            if tag == DEPARTING_TAG and \
                    event.timestamp >= DEPARTURE_TIME:
                overhang += 1

    ticks = int(END_TIME) + 1
    expected = 0
    covered = 0
    for tag in TAGS:
        last_tick = (int(DEPARTURE_TIME) if tag == DEPARTING_TAG
                     else ticks)
        for tick in range(last_tick):
            expected += 1
            if (tag, float(tick)) in observed:
                covered += 1
    return covered / expected, overhang


def sweep():
    rows = []
    for miss_rate in MISS_RATES:
        row: list[object] = [f"{miss_rate:.0%}"]
        for _, cleaning in STRATEGIES:
            coverage, overhang = run_once(miss_rate, cleaning)
            row.append(f"{coverage:.3f} / {overhang}")
        rows.append(row)
    return rows


def main() -> None:
    print_table(
        "E12 — presence coverage / phantom-presence overhang vs miss "
        "rate, by smoothing strategy",
        ["miss rate", *(label for label, _ in STRATEGIES)],
        sweep())


def test_benchmark_adaptive_cleaning_under_loss(benchmark):
    coverage, _ = benchmark.pedantic(
        lambda: run_once(0.4, CleaningConfig(smoothing="adaptive")),
        rounds=3, iterations=1)
    assert coverage > 0.95


def test_benchmark_no_smoothing_under_loss(benchmark):
    coverage, overhang = benchmark.pedantic(
        lambda: run_once(0.4, CleaningConfig(smoothing="none")),
        rounds=3, iterations=1)
    assert coverage < 0.8
    assert overhang == 0


if __name__ == "__main__":
    main()
