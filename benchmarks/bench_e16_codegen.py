"""E16 — compiled scan throughput: code-generated vs interpreted SSC.

The codegen runtime (``repro.core.codegen``) emits a specialised
``feed()`` per query plan: component dispatch, PAIS key extraction,
window pruning and pushed-down filters become straight-line Python with
direct ``event.attributes`` access, replacing the generic interpreter's
per-event ``EvalContext`` allocations and closure-tree walks.

This experiment measures the per-shape payoff by running the same stream
through the same plan with ``use_codegen`` on and off.  Filter-heavy
shapes gain the most (the interpreter's per-event allocation dominates);
construction-heavy shapes gain less (the DFS shares most of its cost).
Output equality is asserted for every shape, so this benchmark doubles
as a coarse differential test.
"""

from __future__ import annotations

import argparse
import time

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table

FULL_EVENTS = 30_000
SMOKE_EVENTS = 2_000

# (label, query text, plan config) — one row per structural shape.
SHAPES = [
    ("filter-reject", "EVENT SEQ(A x, B y) WHERE x.v < 1 AND y.v < 1 "
     "WITHIN 10 RETURN x.id", PlanConfig()),
    ("multi-filter", "EVENT SEQ(A x, B y) WHERE x.v < 3 AND x.id < 16 "
     "AND x.v != 1 AND y.v < 3 AND y.id < 16 AND y.v != 1 "
     "WITHIN 10 RETURN x.id", PlanConfig()),
    ("single-filter", "EVENT A x WHERE x.v < 2 RETURN x.id",
     PlanConfig()),
    ("pair", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
     "RETURN x.id", PlanConfig()),
    ("pais-triple", "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND "
     "y.id = z.id WITHIN 20 RETURN x.id", PlanConfig()),
    ("cross-pred", "EVENT SEQ(A x, B y) WHERE x.id = y.id AND "
     "x.v < y.v WITHIN 10 RETURN x.id",
     PlanConfig().with_construction_pushdown()),
    ("kleene", "EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 10 "
     "RETURN a.id, COUNT(b)", PlanConfig()),
]


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, v_domain=10,
        mean_gap=1.0, seed=16))


def run_once(stream: SyntheticStream, query_text: str,
             config: PlanConfig) -> tuple[float, list, bool]:
    engine = Engine(stream.registry)
    runtime = engine.runtime(query_text, config=config)
    produced = []
    started = time.perf_counter()
    for event in stream.events:
        produced.extend(runtime.feed(event))
    produced.extend(runtime.flush())
    elapsed = time.perf_counter() - started
    fingerprint = [(result.start, result.end,
                    tuple(result.attributes.items()))
                   for result in produced]
    return elapsed, fingerprint, runtime.scan_compiled


def sweep(n_events: int) -> list[list]:
    stream = build_stream(n_events)
    rows = []
    for label, query_text, config in SHAPES:
        interp_elapsed, interp_fp, interp_compiled = run_once(
            stream, query_text, config.without("use_codegen"))
        compiled_elapsed, compiled_fp, compiled = run_once(
            stream, query_text, config)
        assert not interp_compiled and compiled, \
            f"{label}: expected compiled-vs-interpreted pairing"
        assert compiled_fp == interp_fp, \
            f"{label}: compiled output diverged from interpreter"
        rows.append([label, n_events / interp_elapsed,
                     n_events / compiled_elapsed,
                     interp_elapsed / compiled_elapsed,
                     len(compiled_fp)])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="code-generated vs interpreted scan throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    rows = sweep(n_events)
    print_table(
        f"E16 — compiled scan vs interpreter ({n_events} events)",
        ["shape", "interpreted ev/s", "compiled ev/s", "speedup",
         "results"],
        rows)
    best = max(row[3] for row in rows)
    print(f"best speedup: {best:.2f}x")


def test_benchmark_compiled_pair(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    label, query_text, config = SHAPES[2]
    result = benchmark.pedantic(
        lambda: run_once(stream, query_text, config),
        rounds=3, iterations=1)
    assert result[2]


def test_benchmark_interpreted_pair(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    label, query_text, config = SHAPES[2]
    result = benchmark.pedantic(
        lambda: run_once(stream, query_text,
                         config.without("use_codegen")),
        rounds=3, iterations=1)
    assert not result[2]


if __name__ == "__main__":
    main()
