"""E16 — compiled scan throughput: code-generated vs interpreted SSC.

The codegen runtime (``repro.core.codegen``) emits a specialised
``feed()`` per query plan: component dispatch, PAIS key extraction,
window pruning and pushed-down filters become straight-line Python with
direct ``event.attributes`` access, replacing the generic interpreter's
per-event ``EvalContext`` allocations and closure-tree walks.  Stateful
shapes additionally get an unrolled construction walk (pair/triple
sequences, trailing Kleene closures) and a generated batch-loop
``feed_batch`` body that lifts the per-event dispatch out of the
interpreter entirely.

This experiment measures the per-shape payoff by running the same stream
through the same plan with ``use_codegen`` on and off.  The interpreted
side always feeds one event at a time (the legacy ingest path); the
compiled side feeds in ``--batch``-sized chunks (default 64, ``1`` to
measure pure per-event codegen).  Output equality is asserted for every
shape — compiled + batched must be bit-identical to interpreted
per-event — so this benchmark doubles as a coarse differential test.
"""

from __future__ import annotations

import argparse
import time

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table

FULL_EVENTS = 30_000
SMOKE_EVENTS = 2_000
DEFAULT_BATCH = 64

# (label, query text, plan config) — one row per structural shape.
SHAPES = [
    ("filter-reject", "EVENT SEQ(A x, B y) WHERE x.v < 1 AND y.v < 1 "
     "WITHIN 10 RETURN x.id", PlanConfig()),
    ("multi-filter", "EVENT SEQ(A x, B y) WHERE x.v < 3 AND x.id < 16 "
     "AND x.v != 1 AND y.v < 3 AND y.id < 16 AND y.v != 1 "
     "WITHIN 10 RETURN x.id", PlanConfig()),
    ("single-filter", "EVENT A x WHERE x.v < 2 RETURN x.id",
     PlanConfig()),
    ("pair", "EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
     "RETURN x.id", PlanConfig()),
    ("pair-triple", "EVENT SEQ(A x, B y, C z) WHERE x.id = y.id AND "
     "y.id = z.id WITHIN 20 RETURN x.id", PlanConfig()),
    ("cross-pred", "EVENT SEQ(A x, B y) WHERE x.id = y.id AND "
     "x.v < y.v WITHIN 10 RETURN x.id",
     PlanConfig().with_construction_pushdown()),
    ("kleene", "EVENT SEQ(A a, B+ b) WHERE a.id = b.id WITHIN 10 "
     "RETURN a.id, COUNT(b)", PlanConfig()),
]


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, v_domain=10,
        mean_gap=1.0, seed=16))


def run_once(stream: SyntheticStream, query_text: str,
             config: PlanConfig, batch: int = 1) \
        -> tuple[float, list, bool]:
    engine = Engine(stream.registry)
    runtime = engine.runtime(query_text, config=config)
    events = stream.events
    produced = []
    started = time.perf_counter()
    if batch > 1:
        for start in range(0, len(events), batch):
            produced.extend(runtime.feed_batch(events[start:start + batch]))
    else:
        for event in events:
            produced.extend(runtime.feed(event))
    produced.extend(runtime.flush())
    elapsed = time.perf_counter() - started
    fingerprint = [(result.start, result.end,
                    tuple(result.attributes.items()))
                   for result in produced]
    return elapsed, fingerprint, runtime.scan_compiled


def run_best(stream: SyntheticStream, query_text: str,
             config: PlanConfig, batch: int,
             repeats: int) -> tuple[float, list, bool]:
    """Best-of-*repeats* wall time (a fresh runtime per repeat); the
    fingerprint is identical across repeats, so the last one stands."""
    best: tuple[float, list, bool] | None = None
    for _ in range(max(1, repeats)):
        result = run_once(stream, query_text, config, batch)
        if best is None or result[0] < best[0]:
            best = result
    return best


def sweep(n_events: int, batch: int = DEFAULT_BATCH,
          repeats: int = 1, only: set[str] | None = None) -> list[list]:
    stream = build_stream(n_events)
    rows = []
    for label, query_text, config in SHAPES:
        if only is not None and label not in only:
            continue
        interp_elapsed, interp_fp, interp_compiled = run_best(
            stream, query_text, config.without("use_codegen"), 1, repeats)
        compiled_elapsed, compiled_fp, compiled = run_best(
            stream, query_text, config, batch, repeats)
        assert not interp_compiled and compiled, \
            f"{label}: expected compiled-vs-interpreted pairing"
        assert compiled_fp == interp_fp, \
            f"{label}: compiled output diverged from interpreter"
        rows.append([label, n_events / interp_elapsed,
                     n_events / compiled_elapsed,
                     interp_elapsed / compiled_elapsed,
                     len(compiled_fp)])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="code-generated vs interpreted scan throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        metavar="N",
                        help="compiled-side ingest batch size "
                             f"(default {DEFAULT_BATCH}; 1 = per-event)")
    parser.add_argument("--repeats", type=int, default=1, metavar="R",
                        help="take the best wall time of R runs per side")
    parser.add_argument("--shapes", metavar="A,B",
                        help="comma-separated shape labels to run "
                             "(default: all)")
    parser.add_argument("--assert-speedup", type=float, metavar="X",
                        help="fail unless every measured shape reaches "
                             "an X-fold speedup")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    only = None
    if args.shapes:
        only = {label.strip() for label in args.shapes.split(",")}
        known = {label for label, _, _ in SHAPES}
        unknown = only - known
        if unknown:
            parser.error(f"unknown shapes: {', '.join(sorted(unknown))}")
    rows = sweep(n_events, batch=args.batch, repeats=args.repeats,
                 only=only)
    print_table(
        f"E16 — compiled (batch {args.batch}) vs interpreter "
        f"({n_events} events)",
        ["shape", "interpreted ev/s", "compiled ev/s", "speedup",
         "results"],
        rows)
    best = max(row[3] for row in rows)
    print(f"best speedup: {best:.2f}x")
    if args.assert_speedup is not None:
        slow = [(row[0], row[3]) for row in rows
                if row[3] < args.assert_speedup]
        if slow:
            failed = ", ".join(f"{label} {speedup:.2f}x"
                               for label, speedup in slow)
            raise SystemExit(
                f"speedup gate {args.assert_speedup:.2f}x failed: "
                f"{failed}")
        print(f"speedup gate {args.assert_speedup:.2f}x passed")


def test_benchmark_compiled_pair(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    label, query_text, config = SHAPES[2]
    result = benchmark.pedantic(
        lambda: run_once(stream, query_text, config),
        rounds=3, iterations=1)
    assert result[2]


def test_benchmark_interpreted_pair(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    label, query_text, config = SHAPES[2]
    result = benchmark.pedantic(
        lambda: run_once(stream, query_text,
                         config.without("use_codegen")),
        rounds=3, iterations=1)
    assert not result[2]


if __name__ == "__main__":
    main()
