"""E3 — Figure 3: the UI's internal dataflow as operator counters.

The demo uses the UI's three right-hand windows to show "the intermediate
results used to compute final query output".  This experiment regenerates
that view: the per-operator in/out cardinalities of the shoplifting query
over the retail stream, for the optimized and the naive plan — making the
paper's "large intermediate result sets" optimization target measurable.
"""

from __future__ import annotations

from repro.cleaning import CleaningPipeline
from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.schemas import retail_registry
from repro.workloads import RetailConfig, RetailScenario
from repro.rfid import NoiseModel

from common import print_table

SCENARIO_CONFIG = RetailConfig(n_products=30, n_shoppers=8,
                               n_shoplifters=2, n_misplacements=1,
                               seed=33)

# Q1 without the RETURN-clause database call: this experiment measures the
# matching block's dataflow, so the plan is identical but no event
# database needs wiring.
SHOPLIFTING_QUERY = """
EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
WHERE x.TagId = y.TagId AND x.TagId = z.TagId
WITHIN 12 hours
RETURN x.TagId, x.ProductName, z.AreaId
"""

PLANS = [
    ("optimized (window pushdown + PAIS)", PlanConfig()),
    ("no partitioning", PlanConfig().without("partition_pushdown")),
    ("naive (no pushdown at all)", PlanConfig.naive()),
]


def cleaned_events():
    scenario = RetailScenario.generate(SCENARIO_CONFIG)
    pipeline = CleaningPipeline(scenario.layout, scenario.ons)
    return list(pipeline.run(scenario.ticks(NoiseModel.perfect())))


def run_dataflow(events, config: PlanConfig):
    engine = Engine(retail_registry())
    runtime = engine.runtime(SHOPLIFTING_QUERY, config=config)
    results = 0
    for event in events:
        results += len(runtime.feed(event))
    results += len(runtime.flush())
    return runtime.stats, results


def main() -> None:
    events = cleaned_events()
    print(f"stream: {len(events)} cleaned events")
    for label, config in PLANS:
        stats, results = run_dataflow(events, config)
        rows = [[name, consumed, produced,
                 f"{produced / consumed:.3f}" if consumed else "-"]
                for name, (consumed, produced)
                in stats.snapshot().items()]
        rows.append(["final output", "", results, ""])
        rows.append(["peak stack instances", "",
                     stats.stack_high_water, ""])
        print_table(
            f"E3 / Figure 3 — operator dataflow, {label}",
            ["operator", "consumed", "produced", "selectivity"], rows)


def test_benchmark_dataflow_optimized(benchmark):
    events = cleaned_events()

    def run():
        return run_dataflow(events, PlanConfig())[1]

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results > 0


def test_benchmark_dataflow_naive(benchmark):
    events = cleaned_events()

    def run():
        return run_dataflow(events, PlanConfig.naive())[1]

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results > 0


if __name__ == "__main__":
    main()
