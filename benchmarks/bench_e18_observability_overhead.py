"""E18 — observability overhead: disabled hooks must be (nearly) free.

The observability layer (``repro.obs``) promises that a processor which
never enables tracing, profiling, or the slow-feed log pays almost
nothing for the hooks living in the hot path.  Two mechanisms back that
promise, and this experiment measures both:

* **codegen hooks** — the generated scan only *emits* profiling code
  when profiling was requested at generation time, so a profiled-but-
  dormant scan (``_profile is None`` guards compiled in) can be compared
  against the hook-free source the seed shipped.  The ratio between the
  two is the true disabled-hook cost, asserted ≤ 5 %.
* **processor hooks** — ``feed`` and the dispatch loop check
  ``tracer is not None`` per event.  Running the same workload with the
  whole layer off versus fully on (tracing + profiling + slow-feed log)
  bounds what enabling everything costs; that ratio is reported, not
  asserted — enabled tracing is allowed to cost real time.

Timing uses min-of-interleaved-rounds so one scheduler hiccup cannot
fake a regression.
"""

from __future__ import annotations

import argparse
import time

from repro.core.engine import Engine
from repro.core.plan import PlanConfig
from repro.events.model import SchemaRegistry
from repro.system import ComplexEventProcessor
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table

FULL_EVENTS = 20_000
SMOKE_EVENTS = 5_000
FULL_ROUNDS = 5
SMOKE_ROUNDS = 3

#: The disabled-hook budget the observability layer promises.
MAX_DISABLED_OVERHEAD = 1.05

PAIR = ("EVENT SEQ(A x, B y) WHERE x.id = y.id WITHIN 10 "
        "RETURN x.id")


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, v_domain=10,
        mean_gap=1.0, seed=18))


def time_runtime(runtime, events) -> tuple[float, int]:
    results = 0
    started = time.perf_counter()
    for event in events:
        results += len(runtime.feed(event))
    results += len(runtime.flush())
    return time.perf_counter() - started, results


# -- codegen hooks: seed source vs hooks-compiled-in-but-dormant ------------

def scan_runtime(registry: SchemaRegistry, dormant_hooks: bool):
    runtime = Engine(registry).runtime(PAIR, config=PlanConfig())
    assert runtime.scan_compiled, "E18 needs the codegen scan"
    if dormant_hooks:
        # Regenerate with profiling hooks, then leave them disabled:
        # every hook degrades to one `_prof is None` check per admit.
        runtime.enable_profiling()
        runtime._scan._profile = None
    return runtime


def measure_codegen_hooks(n_events: int, rounds: int) -> list:
    stream = build_stream(n_events)
    best = {False: float("inf"), True: float("inf")}
    results = {}
    for _ in range(rounds):
        for dormant in (False, True):   # interleaved A/B
            elapsed, count = time_runtime(
                scan_runtime(stream.registry, dormant), stream.events)
            best[dormant] = min(best[dormant], elapsed)
            results[dormant] = count
    assert results[False] == results[True]
    ratio = best[True] / best[False]
    return [["codegen scan", n_events / best[False],
             n_events / best[True], ratio, results[False]]], ratio


# -- processor layer: everything off vs everything on -----------------------

def processor_run(stream: SyntheticStream, enabled: bool):
    processor = ComplexEventProcessor(stream.registry)
    tracer = None
    if enabled:
        tracer = processor.enable_tracing(capacity=1024)
        processor.enable_slow_feed_log(threshold_seconds=10.0)
    processor.register_monitoring_query("pair", PAIR)
    profiles = processor.enable_profiling() if enabled else {}
    results = 0
    started = time.perf_counter()
    for event in stream.events:
        results += len(processor.feed(event))
    results += len(processor.flush())
    elapsed = time.perf_counter() - started
    if enabled:
        assert len(tracer) > 0, "enabled tracer recorded nothing"
        assert profiles["pair"].matches_emitted == results
    return elapsed, results


def measure_processor(n_events: int, rounds: int) -> list:
    stream = build_stream(n_events)
    best = {False: float("inf"), True: float("inf")}
    results = {}
    for _ in range(rounds):
        for enabled in (False, True):
            elapsed, count = processor_run(stream, enabled)
            best[enabled] = min(best[enabled], elapsed)
            results[enabled] = count
    assert results[False] == results[True]
    return [["processor", n_events / best[False],
             n_events / best[True], best[True] / best[False],
             results[False]]]


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="observability hook overhead (disabled and enabled)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    rounds = SMOKE_ROUNDS if args.smoke else FULL_ROUNDS

    hook_rows, disabled_ratio = measure_codegen_hooks(n_events, rounds)
    print_table(
        f"E18a — codegen hooks, compiled in but dormant "
        f"({n_events} events, min of {rounds})",
        ["path", "no hooks ev/s", "dormant hooks ev/s", "ratio",
         "results"],
        hook_rows)
    print(f"disabled-hook overhead: {(disabled_ratio - 1) * 100:+.1f}% "
          f"(budget {(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}%)")
    assert disabled_ratio <= MAX_DISABLED_OVERHEAD, (
        f"dormant profiling hooks cost {disabled_ratio:.3f}x, "
        f"budget is {MAX_DISABLED_OVERHEAD}x")

    processor_rows = measure_processor(n_events, rounds)
    print_table(
        f"E18b — processor with the full layer on "
        f"(tracing + profiling + slow-feed log)",
        ["path", "obs off ev/s", "obs on ev/s", "ratio", "results"],
        processor_rows)
    print(f"enabled-everything overhead: "
          f"{(processor_rows[0][3] - 1) * 100:+.1f}% (informational)")


def test_benchmark_obs_disabled(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    benchmark.pedantic(lambda: processor_run(stream, enabled=False),
                       rounds=3, iterations=1)


def test_benchmark_obs_enabled(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    benchmark.pedantic(lambda: processor_run(stream, enabled=True),
                       rounds=3, iterations=1)


if __name__ == "__main__":
    main()
