#!/usr/bin/env python3
"""Regenerate every experiment's table in one run.

Executes each ``bench_e*.py``'s ``main()`` in experiment order and prints
the combined report — the data behind EXPERIMENTS.md.  Usage::

    python benchmarks/run_all_experiments.py [--only E4 E9] \
        [--out results.txt]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import io
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

EXPERIMENTS = [
    ("E1", "bench_e1_architecture"),
    ("E2", "bench_e2_demo_scenario"),
    ("E3", "bench_e3_dataflow"),
    ("E4", "bench_e4_window_sweep"),
    ("E5", "bench_e5_partition_sweep"),
    ("E6", "bench_e6_selectivity"),
    ("E7", "bench_e7_negation"),
    ("E8", "bench_e8_seq_length"),
    ("E9", "bench_e9_baseline_join"),
    ("E10", "bench_e10_track_trace"),
    ("E11", "bench_e11_kleene"),
    ("E12", "bench_e12_cleaning_ablation"),
    ("E13", "bench_e13_latency"),
    ("E14", "bench_e14_construction_pushdown"),
    ("E15", "bench_e15_sharded_throughput"),
    ("E15b", "bench_e15b_transport"),
    ("E15c", "bench_e15c_remote_tier"),
    ("E16", "bench_e16_codegen"),
    ("E17", "bench_e17_multiquery_scaling"),
    ("E18", "bench_e18_observability_overhead"),
    ("E19", "bench_e19_persistence"),
    ("E20", "bench_e20_resilience"),
    ("E21", "bench_e21_multitenant_service"),
    ("E22", "bench_e22_batched_throughput"),
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate every experiment table")
    parser.add_argument("--only", nargs="*", metavar="ID",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--out", help="also write the report to a file")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(Path(__file__).parent))
    wanted = {identifier.upper() for identifier in (args.only or [])}
    sections: list[str] = []
    for identifier, module_name in EXPERIMENTS:
        if wanted and identifier.upper() not in wanted:
            continue
        module = importlib.import_module(module_name)
        buffer = io.StringIO()
        started = time.perf_counter()
        with redirect_stdout(buffer):
            # Explicit empty argv where accepted: an experiment's own
            # parser must not re-read sys.argv and trip over this
            # runner's flags.
            if inspect.signature(module.main).parameters:
                module.main([])
            else:
                module.main()
        elapsed = time.perf_counter() - started
        section = buffer.getvalue().rstrip()
        sections.append(f"{section}\n[{identifier} regenerated in "
                        f"{elapsed:.1f}s]")
        print(sections[-1])
        print()
    report = "\n\n".join(sections) + "\n"
    if args.out:
        Path(args.out).write_text(report, encoding="utf-8")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
