"""E2 — Figure 2 / Section 4: the live demonstration, scored.

Regenerates the demonstration as a measured experiment: the scripted
retail day runs through the full system and we report, per monitoring
query, detection precision/recall against ground truth and the detection
latency — the paper demonstrates "real-time detection of the behavior".
"""

from __future__ import annotations

import time

from repro.rfid import NoiseModel
from repro.system import SaseSystem
from repro.workloads import (
    LOCATION_UPDATE_RULE,
    MISPLACED_INVENTORY_QUERY,
    RetailConfig,
    RetailScenario,
    SHOPLIFTING_QUERY,
)

from common import print_table

SCENARIO_CONFIG = RetailConfig(n_products=40, n_shoppers=10,
                               n_shoplifters=3, n_misplacements=3,
                               seed=2007)
NOISE_LEVELS = [
    ("perfect readers", NoiseModel.perfect()),
    ("mild noise", NoiseModel(miss_rate=0.05, duplicate_rate=0.05,
                              truncate_rate=0.01, ghost_rate=0.005)),
    ("noisy readers", NoiseModel(miss_rate=0.15, duplicate_rate=0.15,
                                 truncate_rate=0.03, ghost_rate=0.02)),
]


def run_demo(scenario: RetailScenario, noise: NoiseModel):
    system = SaseSystem(scenario.layout, scenario.ons)
    system.register_monitoring_query("shoplifting", SHOPLIFTING_QUERY)
    system.register_monitoring_query("misplaced",
                                     MISPLACED_INVENTORY_QUERY)
    for event_type in ("SHELF_READING", "COUNTER_READING",
                       "EXIT_READING"):
        system.register_archiving_rule(f"loc_{event_type}",
                                       LOCATION_UPDATE_RULE(event_type))
    started = time.perf_counter()
    results = system.run_simulation(scenario.ticks(noise))
    elapsed = time.perf_counter() - started
    return system, results, elapsed


def score(truth_tags: set[int], detections: list) -> tuple[float, float]:
    detected_tags = {result["x_TagId"] for result in detections}
    true_positives = len(detected_tags & truth_tags)
    precision = (true_positives / len(detected_tags)
                 if detected_tags else 1.0)
    recall = true_positives / len(truth_tags) if truth_tags else 1.0
    return precision, recall


def mean_latency(scenario: RetailScenario, detections: list) -> float:
    exit_times = {incident.tag_id: incident.exit_time
                  for incident in scenario.truth.shoplifted}
    latencies = []
    seen: set[int] = set()
    for result in detections:
        tag = result["x_TagId"]
        if tag in exit_times and tag not in seen:
            seen.add(tag)
            latencies.append(result.end - exit_times[tag])
    return sum(latencies) / len(latencies) if latencies else float("nan")


def main() -> None:
    scenario = RetailScenario.generate(SCENARIO_CONFIG)
    rows = []
    for label, noise in NOISE_LEVELS:
        _, results, elapsed = run_demo(scenario, noise)
        shoplift = [result for name, result in results
                    if name == "shoplifting"]
        misplaced = [result for name, result in results
                     if name == "misplaced"]
        sp, sr = score(scenario.truth.shoplifted_tags(), shoplift)
        mp, mr = score(scenario.truth.misplaced_tags(), misplaced)
        rows.append([label, f"{sp:.2f}/{sr:.2f}", f"{mp:.2f}/{mr:.2f}",
                     mean_latency(scenario, shoplift), elapsed])
    print_table(
        "E2 / Figure 2 — demo scenario detection quality "
        "(precision/recall) and latency",
        ["reader noise", "shoplifting P/R", "misplaced P/R",
         "mean detect latency (s)", "wall time (s)"], rows)


def test_benchmark_demo_scenario(benchmark):
    scenario = RetailScenario.generate(SCENARIO_CONFIG)
    noise = NOISE_LEVELS[1][1]

    def run():
        _, results, _ = run_demo(scenario, noise)
        return results

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    shoplift = [result for name, result in results
                if name == "shoplifting"]
    precision, recall = score(scenario.truth.shoplifted_tags(), shoplift)
    assert precision == 1.0 and recall == 1.0


if __name__ == "__main__":
    main()
