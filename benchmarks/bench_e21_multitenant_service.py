"""E21 — multi-tenant service scaling: tenants share a few templates.

The multi-tenant query service co-locates many tenants' queries on one
engine.  In realistic fleets most tenants instantiate the same handful
of query *templates* (same EVENT/WHERE/WITHIN shape, their own RETURN
clause), so independent evaluation re-runs an identical match pipeline
once per tenant while shared-plan evaluation runs it once per template
and fans matches out to per-tenant continuations.

This experiment registers N tenants (one query each, cycling over 8
overlapping templates) in a :class:`~repro.service.QueryService`, feeds
one synthetic stream through, and reports aggregate throughput and
per-feed p95 latency with sharing off vs on.  Result counts are
asserted identical between the two modes at every N.  Per-event cost is
O(tenants) independent vs O(templates) shared, so the shared advantage
grows linearly with the tenant count.
"""

from __future__ import annotations

import argparse
import time

from repro.core.shared import SharedPlanConfig
from repro.service import AdmissionPolicy, QueryService, TenantQuota
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream

from common import print_table

FULL_EVENTS = 3_000
SMOKE_EVENTS = 600
FULL_TENANTS = [64, 256, 1024]
SMOKE_TENANTS = [16, 64]

# Eight templates over a 3-type alphabet.  The first three differ only
# in RETURN (one shared group); the rest are distinct plans.  {window}
# keeps the windows small so state stays bounded at 1024 tenants.
TEMPLATES = [
    "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 8\n"
    "RETURN x.id, y.v",
    "EVENT SEQ(A p, B q)\nWHERE p.id = q.id\nWITHIN 8\nRETURN p.v",
    "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 8\n"
    "RETURN x.v + y.v",
    "EVENT SEQ(A x, B y)\nWHERE x.id = y.id\nWITHIN 16\nRETURN y.v",
    "EVENT SEQ(B x, C y)\nWHERE x.id = y.id\nWITHIN 8\nRETURN x.id",
    "EVENT SEQ(A x, C y)\nWHERE x.id = y.id\nWITHIN 8\nRETURN y.v",
    "EVENT SEQ(A x, B y, C z)\nWHERE x.id = y.id AND y.id = z.id\n"
    "WITHIN 12\nRETURN x.id",
    "EVENT C x\nWHERE x.v > 40\nWITHIN 8\nRETURN x.id, x.v",
]


def build_stream(n_events: int) -> SyntheticStream:
    return SyntheticStream.generate(SyntheticConfig(
        n_events=n_events, n_types=3, id_domain=64, mean_gap=1.0,
        seed=21))


def build_service(stream: SyntheticStream, tenants: int,
                  shared: bool) -> QueryService:
    service = QueryService(
        stream.registry,
        policy=AdmissionPolicy(max_tenants=tenants + 1,
                               max_total_queries=tenants + 1),
        shared_plans=SharedPlanConfig(enabled=shared),
        # Tiny backlog: the benchmark measures evaluation, not the
        # memory cost of a million undrained results.
        default_quota=TenantQuota(max_queries=1,
                                  max_pending_results=4))
    for index in range(tenants):
        service.register(f"tenant{index}", "q",
                         TEMPLATES[index % len(TEMPLATES)])
    return service


def run_once(stream: SyntheticStream, tenants: int,
             shared: bool) -> tuple[float, float, int, int]:
    """Returns (events/s, p95 feed ms, total results, groups)."""
    service = build_service(stream, tenants, shared)
    latencies = []
    started = time.perf_counter()
    for event in stream.events:
        feed_started = time.perf_counter()
        service.feed(event)
        latencies.append(time.perf_counter() - feed_started)
    elapsed = time.perf_counter() - started
    results = sum(state["results_total"]
                  for state in service.tenant_gauges().values())
    latencies.sort()
    p95 = latencies[int(0.95 * (len(latencies) - 1))] * 1e3
    groups = service.stats()["shared_plans"]["groups"]
    return len(stream.events) / elapsed, p95, results, groups


def sweep(n_events: int, tenant_counts: list[int]) -> list[list]:
    stream = build_stream(n_events)
    rows = []
    for tenants in tenant_counts:
        indep_rate, indep_p95, indep_results, _ = \
            run_once(stream, tenants, shared=False)
        shared_rate, shared_p95, shared_results, groups = \
            run_once(stream, tenants, shared=True)
        assert shared_results == indep_results, \
            f"shared plans changed results at {tenants} tenants " \
            f"({shared_results} vs {indep_results})"
        rows.append([tenants, groups, indep_rate, shared_rate,
                     shared_rate / indep_rate, indep_p95, shared_p95,
                     shared_results])
    return rows


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="multi-tenant service throughput/latency, "
                    "shared plans off vs on")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (seconds)")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS
    counts = SMOKE_TENANTS if args.smoke else FULL_TENANTS
    rows = sweep(n_events, counts)
    print_table(
        f"E21 — multi-tenant service scaling ({n_events} events, "
        f"{len(TEMPLATES)} templates, 1 query/tenant)",
        ["tenants", "groups", "indep ev/s", "shared ev/s", "speedup",
         "indep p95 ms", "shared p95 ms", "results"],
        rows)
    top = rows[-1]
    print(f"at {top[0]} tenants, shared-plan evaluation sustains "
          f"{top[4]:.1f}x the independent throughput "
          f"({top[3]:,.0f} vs {top[2]:,.0f} events/s) with p95 feed "
          f"latency {top[6]:.2f} ms vs {top[5]:.2f} ms, over "
          f"{top[1]} shared pipelines.")


def test_benchmark_shared_64_tenants(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(
        lambda: run_once(stream, 64, shared=True),
        rounds=3, iterations=1)
    assert result[2] > 0


def test_benchmark_independent_64_tenants(benchmark):
    stream = build_stream(SMOKE_EVENTS)
    result = benchmark.pedantic(
        lambda: run_once(stream, 64, shared=False),
        rounds=3, iterations=1)
    assert result[2] > 0


if __name__ == "__main__":
    main()
