"""E7 — engine evaluation: the cost of negation by position.

The language places ``!(...)`` components at the head, middle, or tail of
a SEQ pattern; the plan's negation operator checks leading and middle
negation instantly against its temporal index but must *delay emission*
for trailing negation until the window closes.

Expected shape: middle/leading negation costs little over the no-negation
query (an indexed interval probe per candidate); trailing negation pays
the pending-buffer bookkeeping and shifts work to watermark advancement.
"""

from __future__ import annotations

from repro.core.plan import PlanConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticStream, \
    seq_query

from common import print_table, run_plan

STREAM_CONFIG = SyntheticConfig(n_events=5000, n_types=4, id_domain=50,
                                mean_gap=1.0, seed=7)
WINDOW = 60.0

VARIANTS = [
    ("no negation", None),
    ("leading  !(X), A, B", 0),
    ("middle   A, !(X), B", 1),
    ("trailing A, B, !(X)", 2),
]


def sweep():
    stream = SyntheticStream.generate(STREAM_CONFIG)
    rows = []
    for label, position in VARIANTS:
        query = seq_query(2, window=WINDOW, partitioned=True,
                          negation_at=position)
        result = run_plan(stream.registry, query, stream.events,
                          PlanConfig())
        rows.append([label, result.throughput, result.results])
    return rows


def main() -> None:
    print_table(
        "E7 — negation position vs throughput "
        f"({STREAM_CONFIG.n_events} events, window {WINDOW:g}s, "
        "partitioned)",
        ["pattern", "events/s", "matches"],
        sweep())


def test_benchmark_middle_negation(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(2, window=WINDOW, partitioned=True, negation_at=1)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         PlanConfig()),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


def test_benchmark_trailing_negation(benchmark):
    stream = SyntheticStream.generate(STREAM_CONFIG)
    query = seq_query(2, window=WINDOW, partitioned=True, negation_at=2)
    result = benchmark.pedantic(
        lambda: run_plan(stream.registry, query, stream.events,
                         PlanConfig()),
        rounds=3, iterations=1)
    assert result.events == STREAM_CONFIG.n_events


if __name__ == "__main__":
    main()
