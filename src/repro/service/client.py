"""A small blocking client for the query service.

:class:`ServiceClient` opens one TCP connection and exposes one method
per protocol op.  Requests carry monotonically increasing ids; the
client reads lines until the matching response arrives, collecting any
subscription pushes that interleave into :attr:`pushes` (take them with
:meth:`take_pushes`).  The client is synchronous on purpose — it is the
test harness's and the CLI's view of the server, and determinism beats
throughput there.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.errors import ProtocolError, ServiceError
from repro.service import protocol
from repro.service.quotas import TenantQuota


class ServiceClient:
    """One JSON-lines connection to a :class:`~repro.service.server
    .QueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 10.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self.pushes: list[dict] = []

    # -- plumbing -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and block for its response; raises
        :class:`ServiceError` when the server reports failure."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(protocol.encode(
            {"op": op, "id": request_id, **fields}))
        while True:
            message = self._read_message()
            if protocol.is_push(message):
                self.pushes.append(message)
                continue
            if message.get("id") != request_id:
                raise ProtocolError(
                    f"response id {message.get('id')!r} does not match "
                    f"request id {request_id}")
            if not message.get("ok"):
                raise ServiceError(message.get("error",
                                               "request failed"))
            return message

    def _read_message(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"invalid server line: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError("server line is not a JSON object")
        return message

    def take_pushes(self) -> list[dict]:
        """All subscription pushes received so far (clears the buffer)."""
        taken, self.pushes = self.pushes, []
        return taken

    def wait_push(self) -> dict:
        """Block until one subscription push arrives."""
        if self.pushes:
            return self.pushes.pop(0)
        while True:
            message = self._read_message()
            if protocol.is_push(message):
                return message
            raise ProtocolError(
                f"expected a push, got response {message!r}")

    # -- ops ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def register(self, tenant: str, name: str, query: str,
                 quota: TenantQuota | dict | None = None) -> dict:
        fields: dict[str, Any] = {"tenant": tenant, "name": name,
                                  "query": query}
        if quota is not None:
            fields["quota"] = quota.to_dict() \
                if isinstance(quota, TenantQuota) else quota
        return self.request("register", **fields)

    def withdraw(self, tenant: str, name: str) -> None:
        self.request("withdraw", tenant=tenant, name=name)

    def subscribe(self, tenant: str) -> None:
        self.request("subscribe", tenant=tenant)

    def unsubscribe(self, tenant: str) -> None:
        self.request("unsubscribe", tenant=tenant)

    def feed(self, tenant: str, event: dict,
             stream: str | None = None) -> int:
        fields: dict[str, Any] = {"tenant": tenant, "event": event}
        if stream is not None:
            fields["stream"] = stream
        return int(self.request("feed", **fields).get("results", 0))

    def drain(self, tenant: str, limit: int = 0) -> list[dict]:
        return list(self.request("drain", tenant=tenant,
                                 limit=limit).get("results", []))

    def flush(self) -> int:
        return int(self.request("flush").get("results", 0))

    def stats(self) -> dict:
        response = self.request("stats")
        return {"stats": response.get("stats", {}),
                "tenants": response.get("tenants", {})}

    def shutdown(self) -> None:
        self.request("shutdown")
