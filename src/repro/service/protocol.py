"""The service wire protocol: JSON lines over a byte stream.

Each direction carries one JSON object per ``\\n``-terminated line
(UTF-8, no embedded newlines — ``json.dumps`` guarantees that).

**Requests** carry an ``op`` and a client-chosen ``id`` echoed in the
response so a client can pipeline:

================  ==========================================  =========
op                request fields                              reply
================  ==========================================  =========
``ping``          —                                           ``pong``
``register``      ``tenant``, ``name``, ``query``,            ``status``
                  optional ``quota``                          (+ queue
                                                              position)
``withdraw``      ``tenant``, ``name``                        —
``subscribe``     ``tenant``                                  —
``unsubscribe``   ``tenant``                                  —
``feed``          ``tenant``, ``event`` (type, timestamp,     ``results``
                  attributes)                                 count
``drain``         ``tenant``, optional ``limit``              ``results``
``flush``         —                                           ``results``
                                                              count
``stats``         —                                           ``stats``,
                                                              ``tenants``
``shutdown``      —                                           —
================  ==========================================  =========

**Responses** are ``{"id": ..., "ok": true, ...}`` or ``{"id": ...,
"ok": false, "error": "..."}``.  A subscribed connection additionally
receives **pushes** — ``{"push": "result", "tenant": ..., "query": ...,
"type": ..., "start": ..., "end": ..., "attributes": {...}}`` — which
carry no ``id``; clients must treat any line without an ``id`` as a
push.

This module holds only framing and validation; it has no I/O so the
asyncio server and the blocking client share one implementation.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError

OPS = frozenset({"ping", "register", "withdraw", "subscribe",
                 "unsubscribe", "feed", "drain", "flush", "stats",
                 "shutdown"})

_TENANT_OPS = frozenset({"register", "withdraw", "subscribe",
                         "unsubscribe", "feed", "drain"})
_NAMED_OPS = frozenset({"register", "withdraw"})


def encode(message: dict) -> bytes:
    """One protocol line, newline-terminated."""
    return (json.dumps(message, separators=(",", ":"))
            + "\n").encode("utf-8")


def parse_line(line: bytes | str) -> dict:
    """Parse one line into a JSON object (no op validation)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("a request must be a JSON object")
    return message


def validate_request(message: dict) -> dict:
    """Check a parsed request's op and required fields."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {sorted(OPS)})")
    if op in _TENANT_OPS and not isinstance(message.get("tenant"), str):
        raise ProtocolError(f"op {op!r} needs a string 'tenant'")
    if op in _NAMED_OPS and not isinstance(message.get("name"), str):
        raise ProtocolError(f"op {op!r} needs a string 'name'")
    if op == "register" and not isinstance(message.get("query"), str):
        raise ProtocolError("op 'register' needs a string 'query'")
    if op == "feed" and not isinstance(message.get("event"), dict):
        raise ProtocolError("op 'feed' needs an 'event' object")
    return message


def decode_request(line: bytes | str) -> dict:
    """Parse and validate one request line."""
    return validate_request(parse_line(line))


def ok(request_id: Any, **fields: Any) -> dict:
    return {"id": request_id, "ok": True, **fields}


def error(request_id: Any, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": message}


def push_result(result: dict) -> dict:
    """Wrap one :func:`repro.service.core.result_to_wire` dict as a
    subscription push."""
    return {"push": "result", **result}


def is_push(message: dict) -> bool:
    return "id" not in message
