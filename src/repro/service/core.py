"""The multi-tenant query service core (network-free).

:class:`QueryService` turns the embedded :class:`~repro.system.processor
.ComplexEventProcessor` into a long-lived, shared facility: many tenants
register and withdraw SASE queries at runtime against one event stream,
each governed by a :class:`~repro.service.quotas.TenantQuota` and the
service-wide :class:`~repro.service.quotas.AdmissionPolicy`.  Query names
are namespaced ``tenant/query`` on the underlying processor, so tenants
cannot collide and per-query metrics stay attributable.

Results are buffered per tenant in a bounded pending queue (drop-oldest
shedding, counted) and handed out by :meth:`drain` — the transport
(``repro.service.server``) pumps them to subscribers.  Tenant-pushed
events are rate-limited by a token bucket; server-side feeds (the house
stream) are not.

The registered query set is durable: every mutation rewrites a small
JSON manifest atomically (same temp-file-then-rename discipline as the
persistence layer's checkpoints), and constructing the service over an
existing manifest restores every tenant, quota, and query in the saved
order — so a restarted service resumes with the same query set it had.

This module is deliberately synchronous and transport-free so the same
core is testable without sockets and reusable under any front end.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable, Iterable

from repro.core.plan import PlanConfig
from repro.core.shared import SharedPlanConfig
from repro.errors import SaseError, ServiceError
from repro.events.event import CompositeEvent, Event
from repro.events.model import SchemaRegistry
from repro.service.quotas import AdmissionPolicy, TenantQuota, TokenBucket
from repro.system.processor import ComplexEventProcessor

MANIFEST_VERSION = 1


def _wire_value(value: Any) -> Any:
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_wire_value(item) for item in value]
    return repr(value)


def result_to_wire(tenant: str, query: str,
                   result: CompositeEvent) -> dict:
    """The JSON-safe form of one composite event for one tenant."""
    return {"tenant": tenant, "query": query, "type": result.type,
            "start": result.start, "end": result.end,
            "complete": result.complete,
            "attributes": {key: _wire_value(value)
                           for key, value in result.attributes.items()}}


class TenantState:
    """Everything the service tracks for one tenant."""

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.bucket = TokenBucket(quota.max_events_per_second)
        self.queries: dict[str, str] = {}      # query name -> query text
        self.pending: deque[dict] = deque()    # undelivered wire results
        self.queued: int = 0                   # registrations waiting
        self.admitted_total = 0
        self.rejected_total = 0
        self.results_total = 0
        self.delivered_total = 0
        self.shed_total = 0
        self.events_submitted = 0
        self.events_throttled = 0

    def set_quota(self, quota: TenantQuota) -> None:
        self.quota = quota
        self.bucket = TokenBucket(quota.max_events_per_second)

    def push_result(self, result: dict) -> None:
        self.results_total += 1
        limit = self.quota.max_pending_results
        while limit > 0 and len(self.pending) >= limit:
            self.pending.popleft()
            self.shed_total += 1
        self.pending.append(result)

    def gauges(self) -> dict:
        return {
            "registered_queries": len(self.queries),
            "queued_registrations": self.queued,
            "admitted_registrations_total": self.admitted_total,
            "rejected_registrations_total": self.rejected_total,
            "results_total": self.results_total,
            "results_delivered_total": self.delivered_total,
            "results_shed_total": self.shed_total,
            "pending_results": len(self.pending),
            "events_submitted_total": self.events_submitted,
            "events_throttled_total": self.events_throttled,
        }


class QueryService:
    """The multi-tenant control plane over one embedded processor.

    ``shared_plans`` defaults to on — the whole point of co-locating
    tenants is that their overlapping templates share match pipelines —
    but can be disabled (or tuned) per deployment.  ``clock`` is the
    monotonic clock the rate limiter reads; tests inject a fake.
    """

    def __init__(self, registry: SchemaRegistry,
                 policy: AdmissionPolicy | None = None,
                 default_quota: TenantQuota | None = None,
                 shared_plans: SharedPlanConfig | None = None,
                 plan_config: PlanConfig | None = None,
                 functions: Any = None, system: Any = None,
                 manifest_path: str | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy or AdmissionPolicy()
        self.default_quota = default_quota or TenantQuota()
        if shared_plans is None:
            shared_plans = SharedPlanConfig()
        self.processor = ComplexEventProcessor(
            registry, functions=functions, system=system,
            config=plan_config, shared_plans=shared_plans)
        self._tenants: dict[str, TenantState] = {}
        # FIFO of (tenant, query name, query text) waiting for service
        # capacity; admitted in order as withdrawals free slots.
        self._admission_queue: deque[tuple[str, str, str]] = deque()
        self._clock = clock
        self._manifest_path = manifest_path
        self._loading = False
        self.events_fed = 0
        if manifest_path and os.path.exists(manifest_path):
            self._load_manifest(manifest_path)

    # -- tenants -------------------------------------------------------------

    def tenant(self, name: str) -> TenantState:
        try:
            return self._tenants[name]
        except KeyError:
            raise ServiceError(f"unknown tenant {name!r}") from None

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    def ensure_tenant(self, name: str,
                      quota: TenantQuota | None = None) -> TenantState:
        """Create (or fetch) a tenant; a quota given for an existing
        tenant replaces its current one."""
        state = self._tenants.get(name)
        if state is None:
            if len(self._tenants) >= self.policy.max_tenants:
                raise ServiceError(
                    f"tenant limit reached "
                    f"({self.policy.max_tenants}); cannot admit {name!r}")
            state = TenantState(name, quota or self.default_quota)
            self._tenants[name] = state
            self._save_manifest()
        elif quota is not None:
            state.set_quota(quota)
            self._save_manifest()
        return state

    def drop_tenant(self, name: str) -> int:
        """Withdraw every query the tenant holds and forget it.
        Returns the number of queries withdrawn."""
        state = self.tenant(name)
        withdrawn = 0
        for query_name in list(state.queries):
            self.withdraw(name, query_name)
            withdrawn += 1
        self._admission_queue = deque(
            item for item in self._admission_queue if item[0] != name)
        del self._tenants[name]
        self._save_manifest()
        return withdrawn

    # -- query lifecycle ------------------------------------------------------

    @property
    def total_queries(self) -> int:
        return sum(len(state.queries) for state in self._tenants.values())

    def register(self, tenant: str, name: str, query: str,
                 quota: TenantQuota | None = None) -> dict:
        """Register *query* for *tenant* under *name*.

        Returns ``{"status": "registered"}`` on immediate admission or
        ``{"status": "queued", "position": N}`` when the service-wide
        query cap defers it; raises :class:`ServiceError` when the
        tenant's own quota (or the admission queue) rejects it.
        """
        state = self.ensure_tenant(tenant, quota)
        if name in state.queries:
            state.rejected_total += 1
            raise ServiceError(
                f"tenant {tenant!r} already has a query named {name!r}")
        held = len(state.queries) + state.queued
        if held >= state.quota.max_queries:
            state.rejected_total += 1
            raise ServiceError(
                f"tenant {tenant!r} is at its query quota "
                f"({state.quota.max_queries})")
        if self.total_queries >= self.policy.max_total_queries:
            if len(self._admission_queue) >= self.policy.queue_limit:
                state.rejected_total += 1
                raise ServiceError(
                    "service is at capacity and the admission queue is "
                    "full; retry later")
            # Validate now so a queued registration cannot fail later
            # for the tenant's own mistake.
            self.processor.compile(query)
            self._admission_queue.append((tenant, name, query))
            state.queued += 1
            return {"status": "queued",
                    "position": len(self._admission_queue)}
        self._activate(state, name, query)
        state.admitted_total += 1
        self._save_manifest()
        return {"status": "registered"}

    def _activate(self, state: TenantState, name: str,
                  query: str) -> None:
        tenant = state.name
        try:
            self.processor.register(
                f"{tenant}/{name}", query,
                on_result=lambda _qualified, result, _t=tenant, _n=name:
                    self._tenants[_t].push_result(
                        result_to_wire(_t, _n, result)))
        except ServiceError:
            raise
        except SaseError:
            state.rejected_total += 1
            raise
        state.queries[name] = query

    def withdraw(self, tenant: str, name: str) -> None:
        """Withdraw one query, releasing every resource it held, then
        admit queued registrations into the freed capacity."""
        state = self.tenant(tenant)
        if name not in state.queries:
            raise ServiceError(
                f"tenant {tenant!r} has no query named {name!r}")
        self.processor.deregister(f"{tenant}/{name}")
        del state.queries[name]
        self._admit_queued()
        self._save_manifest()

    def _admit_queued(self) -> None:
        while self._admission_queue and \
                self.total_queries < self.policy.max_total_queries:
            tenant, name, query = self._admission_queue.popleft()
            state = self._tenants.get(tenant)
            if state is None:
                continue
            state.queued -= 1
            self._activate(state, name, query)
            state.admitted_total += 1

    def queries(self, tenant: str) -> dict[str, str]:
        return dict(self.tenant(tenant).queries)

    # -- stream side ----------------------------------------------------------

    def feed(self, event: Event,
             stream: str = ComplexEventProcessor.DEFAULT_STREAM) -> int:
        """Feed one house-stream event through every tenant's queries;
        returns how many results it produced (they land in the owning
        tenants' pending queues)."""
        self.events_fed += 1
        return len(self.processor.feed(event, stream))

    def feed_record(self, tenant: str, record: dict,
                    stream: str = ComplexEventProcessor.DEFAULT_STREAM) \
            -> int:
        """Feed one tenant-pushed event (wire form: ``type``,
        ``timestamp``, ``attributes``), charged against the tenant's
        rate limit."""
        state = self.tenant(tenant)
        if not state.bucket.try_acquire(self._clock()):
            state.events_throttled += 1
            raise ServiceError(
                f"tenant {tenant!r} exceeded its event rate "
                f"({state.quota.max_events_per_second}/s)")
        if not isinstance(record, dict) or "type" not in record \
                or "timestamp" not in record:
            raise ServiceError("an event needs 'type' and 'timestamp'")
        schema = self.processor.registry.get(record["type"])
        payload = schema.validate_payload(
            record.get("attributes", {}), coerce=True)
        state.events_submitted += 1
        event = Event(record["type"], float(record["timestamp"]), payload)
        return self.feed(event, stream)

    def flush(self) -> int:
        """End of stream: release pending trailing-negation matches into
        the tenants' pending queues."""
        return len(self.processor.flush())

    def drain(self, tenant: str, limit: int = 0) -> list[dict]:
        """Pop up to *limit* (0 = all) undelivered results for *tenant*
        in production order."""
        state = self.tenant(tenant)
        count = len(state.pending) if limit <= 0 \
            else min(limit, len(state.pending))
        drained = [state.pending.popleft() for _ in range(count)]
        state.delivered_total += len(drained)
        return drained

    # -- introspection --------------------------------------------------------

    def tenant_gauges(self) -> dict[str, dict]:
        """Per-tenant service gauges, keyed by tenant name (the
        ``tenants`` section of a metrics snapshot)."""
        return {name: state.gauges()
                for name, state in sorted(self._tenants.items())}

    def stats(self) -> dict:
        """Service-wide status: capacity, tenancy, and plan sharing."""
        return {
            "tenants": len(self._tenants),
            "queries": self.total_queries,
            "queued_registrations": len(self._admission_queue),
            "max_total_queries": self.policy.max_total_queries,
            "events_fed": self.events_fed,
            "shared_plans": self.processor.shared_plan_report(),
        }

    # -- durability -----------------------------------------------------------

    def manifest(self) -> dict:
        """The durable query set: every tenant, its quota, and its
        registered queries (text), in registration order."""
        return {"version": MANIFEST_VERSION, "tenants": {
            name: {"quota": state.quota.to_dict(),
                   "queries": dict(state.queries)}
            for name, state in self._tenants.items()}}

    def _save_manifest(self) -> None:
        if self._manifest_path is None or self._loading:
            return
        rendered = json.dumps(self.manifest(), indent=2, sort_keys=True)
        temp_path = self._manifest_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self._manifest_path)

    def _load_manifest(self, path: str) -> None:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or \
                data.get("version") != MANIFEST_VERSION:
            raise ServiceError(
                f"{path}: not a version-{MANIFEST_VERSION} service "
                f"manifest")
        self._loading = True
        try:
            for tenant, entry in data.get("tenants", {}).items():
                quota = TenantQuota.from_dict(entry.get("quota", {}))
                self.ensure_tenant(tenant, quota)
                for name, query in entry.get("queries", {}).items():
                    self.register(tenant, name, query)
        finally:
            self._loading = False

    # -- convenience ----------------------------------------------------------

    def feed_many(self, events: Iterable[Event]) -> int:
        """Feed a batch of house-stream events through the processor's
        batched path (result-identical to feeding one at a time)."""
        events = list(events)
        self.events_fed += len(events)
        return len(self.processor.feed_batch(events))
