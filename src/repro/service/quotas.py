"""Per-tenant quotas and service-wide admission control.

The service governs tenants along three axes:

* **query count** — each tenant may hold at most ``max_queries``
  registered queries; the service as a whole caps total queries and
  total tenants (:class:`AdmissionPolicy`);
* **ingest rate** — a tenant pushing events through the wire protocol is
  rate-limited by a token bucket (``max_events_per_second``, with a burst
  of one second's worth);
* **result backlog** — each tenant's undelivered results are bounded by
  ``max_pending_results``; beyond it the oldest results are shed (and
  counted) so one absent subscriber cannot hold the server's memory.

Admission control is two-tiered: a registration that would exceed the
*tenant's* quota is rejected outright (the tenant can fix it by
withdrawing), while one that only exceeds the *service-wide* query cap is
queued (FIFO, bounded) and admitted automatically when capacity frees.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TenantQuota:
    """Resource bounds for one tenant.  Zero means unlimited for the
    rate; the count bounds must be positive."""

    max_queries: int = 8
    max_events_per_second: float = 0.0
    max_pending_results: int = 1024

    def to_dict(self) -> dict:
        return {"max_queries": self.max_queries,
                "max_events_per_second": self.max_events_per_second,
                "max_pending_results": self.max_pending_results}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuota":
        base = cls()
        return cls(
            max_queries=int(data.get("max_queries", base.max_queries)),
            max_events_per_second=float(data.get(
                "max_events_per_second", base.max_events_per_second)),
            max_pending_results=int(data.get(
                "max_pending_results", base.max_pending_results)))


@dataclass(frozen=True)
class AdmissionPolicy:
    """Service-wide capacity bounds."""

    max_tenants: int = 1024
    max_total_queries: int = 4096
    queue_limit: int = 64          # registrations waiting for capacity


class TokenBucket:
    """A standard token bucket over an injectable monotonic clock.

    ``rate`` tokens accrue per second up to ``burst``; ``try_acquire``
    spends one.  A rate of 0 disables limiting entirely.
    """

    def __init__(self, rate: float, burst: float | None = None):
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, rate)
        self._tokens = self.burst
        self._last: float | None = None

    def try_acquire(self, now: float) -> bool:
        if self.rate <= 0:
            return True
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
