"""The asyncio front end: JSON-lines TCP access to a QueryService.

One :class:`QueryServer` wraps one :class:`~repro.service.core
.QueryService`.  Every client connection speaks the protocol in
``repro.service.protocol``; requests are served strictly in arrival
order per connection, and the service core itself is only ever touched
from the event loop's single thread, so no locking is needed.

Subscriptions: a connection that sends ``subscribe`` for a tenant
receives that tenant's results as push lines.  After every operation
that can produce results (``feed``, ``flush``) the server drains each
subscribed tenant's pending queue once and fans the lines out to all of
that tenant's subscribers.  Results produced while a tenant has no
subscriber stay in the bounded pending queue (shedding oldest beyond
the tenant's quota) until someone subscribes or drains explicitly.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import SaseError, ServiceError
from repro.service import protocol
from repro.service.core import QueryService
from repro.service.quotas import TenantQuota


class QueryServer:
    """Serve one :class:`QueryService` over TCP JSON lines."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port          # 0 -> ephemeral; real port after start
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._subscribers: dict[str, set[asyncio.StreamWriter]] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self.connections_served = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``shutdown`` (or :meth:`stop`)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close live connections so their handler tasks finish on their
        # own (EOF) instead of being cancelled at loop teardown.
        for writer in list(self._connections):
            writer.close()
        for _ in range(1000):
            if not self._connections:
                break
            await asyncio.sleep(0.001)

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections_served += 1
        self._connections.add(writer)
        try:
            while not reader.at_eof():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line.strip():
                    if not line:
                        break
                    continue
                response = self._dispatch(line, writer)
                writer.write(protocol.encode(response))
                await self._pump()
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
                if self._shutdown.is_set():
                    break
        finally:
            for subscribers in self._subscribers.values():
                subscribers.discard(writer)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(self, line: bytes,
                  writer: asyncio.StreamWriter) -> dict:
        request_id: Any = None
        try:
            message = protocol.parse_line(line)
            request_id = message.get("id")
            request = protocol.validate_request(message)
            return self._execute(request, writer)
        except SaseError as exc:
            return protocol.error(request_id, str(exc))
        except Exception as exc:   # noqa: BLE001 - keep the connection up
            return protocol.error(
                request_id, f"internal error: {type(exc).__name__}: {exc}")

    def _execute(self, request: dict,
                 writer: asyncio.StreamWriter) -> dict:
        service = self.service
        op = request["op"]
        request_id = request.get("id")
        tenant = request.get("tenant")
        if op == "ping":
            return protocol.ok(request_id, pong=True)
        if op == "register":
            quota = None
            if isinstance(request.get("quota"), dict):
                quota = TenantQuota.from_dict(request["quota"])
            outcome = service.register(tenant, request["name"],
                                       request["query"], quota=quota)
            return protocol.ok(request_id, **outcome)
        if op == "withdraw":
            service.withdraw(tenant, request["name"])
            return protocol.ok(request_id)
        if op == "subscribe":
            service.tenant(tenant)   # must exist
            self._subscribers.setdefault(tenant, set()).add(writer)
            return protocol.ok(request_id)
        if op == "unsubscribe":
            self._subscribers.get(tenant, set()).discard(writer)
            return protocol.ok(request_id)
        if op == "feed":
            produced = service.feed_record(
                tenant, request["event"],
                stream=request.get("stream",
                                   service.processor.DEFAULT_STREAM))
            return protocol.ok(request_id, results=produced)
        if op == "drain":
            results = service.drain(tenant,
                                    int(request.get("limit", 0)))
            return protocol.ok(request_id, results=results)
        if op == "flush":
            return protocol.ok(request_id, results=service.flush())
        if op == "stats":
            return protocol.ok(request_id, stats=service.stats(),
                               tenants=service.tenant_gauges())
        if op == "shutdown":
            self._shutdown.set()
            return protocol.ok(request_id)
        raise ServiceError(f"op {op!r} is not implemented")

    async def _pump(self) -> None:
        """Drain every subscribed tenant once; fan results out to all of
        its subscribers."""
        for tenant, subscribers in self._subscribers.items():
            live = [sub for sub in subscribers if not sub.is_closing()]
            if not live:
                continue
            for result in self.service.drain(tenant):
                line = protocol.encode(protocol.push_result(result))
                for subscriber in live:
                    subscriber.write(line)
            for subscriber in live:
                try:
                    await subscriber.drain()
                except (ConnectionResetError, BrokenPipeError):
                    subscribers.discard(subscriber)


def serve(service: QueryService, host: str = "127.0.0.1",
          port: int = 0, ready: Any = None) -> None:
    """Run a server until a client asks it to shut down.  *ready*, when
    given, is called with the bound port once the socket is listening
    (the CLI prints it; tests grab it)."""

    async def _run() -> None:
        server = QueryServer(service, host, port)
        await server.start()
        if ready is not None:
            ready(server.port)
        await server.serve_until_shutdown()

    asyncio.run(_run())
