"""Multi-tenant query service: online query lifecycle over one engine.

The service layer (``docs/service.md``) hosts many tenants' SASE queries
on one embedded processor — registration and withdrawal at runtime,
per-tenant quotas and result feeds, admission control under overload,
and shared-plan evaluation across tenants with overlapping templates.

* :class:`QueryService` — the transport-free core (tenancy, quotas,
  admission, durable query-set manifest);
* :class:`QueryServer` / :func:`serve` — the asyncio JSON-lines TCP
  front end;
* :class:`ServiceClient` — a blocking client for tests and the CLI;
* :class:`TenantQuota`, :class:`AdmissionPolicy` — the governing knobs.
"""

from repro.service.client import ServiceClient
from repro.service.core import QueryService, TenantState, result_to_wire
from repro.service.quotas import AdmissionPolicy, TenantQuota, TokenBucket
from repro.service.server import QueryServer, serve

__all__ = [
    "AdmissionPolicy",
    "QueryServer",
    "QueryService",
    "ServiceClient",
    "TenantQuota",
    "TenantState",
    "TokenBucket",
    "result_to_wire",
    "serve",
]
