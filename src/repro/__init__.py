"""SASE: Complex Event Processing over Streams — a full reproduction.

This package reproduces the system described in "SASE: Complex Event
Processing over Streams" (CIDR 2007): the SASE event language, the
NFA-based query-plan engine with its published optimizations, the five-layer
RFID cleaning and association pipeline, an embedded event database, the
built-in ``_`` function library, and the complete wired system with the
retail-store demonstration scenario.

Quickstart::

    from repro import AttributeType, Engine, Event, SchemaRegistry

    registry = SchemaRegistry()
    registry.declare("A", value=AttributeType.INT)
    registry.declare("B", value=AttributeType.INT)
    engine = Engine(registry)
    results = list(engine.run(
        "EVENT SEQ(A x, B y) WHERE x.value = y.value WITHIN 10",
        [Event("A", 1.0, {"value": 7}), Event("B", 2.0, {"value": 7})]))
"""

from repro.core import (
    CompiledQuery,
    Engine,
    KleeneMode,
    Match,
    PlanConfig,
    QueryRuntime,
    run_query,
)
from repro.errors import SaseError
from repro.events import (
    AttributeSpec,
    AttributeType,
    CompositeEvent,
    Event,
    EventSchema,
    EventStream,
    SchemaRegistry,
    merge_streams,
)
from repro.lang import analyze, format_query, parse_query

__version__ = "1.1.0"

__all__ = [
    "AttributeSpec",
    "AttributeType",
    "CompiledQuery",
    "CompositeEvent",
    "Engine",
    "Event",
    "EventSchema",
    "EventStream",
    "KleeneMode",
    "Match",
    "PlanConfig",
    "QueryRuntime",
    "SaseError",
    "SchemaRegistry",
    "__version__",
    "analyze",
    "format_query",
    "merge_streams",
    "parse_query",
    "run_query",
]
