"""The built-in ``_`` function library.

"Our language provides a set of built-in functions (all starting with '_')
for common database operations and can be extended to accommodate other
user functions" (Section 2.1.1).  :class:`FunctionRegistry` resolves
function calls in WHERE/RETURN clauses; :func:`default_registry` loads the
built-ins used by the demonstration queries.
"""

from repro.funcs.registry import FunctionRegistry, default_registry

__all__ = ["FunctionRegistry", "default_registry"]
