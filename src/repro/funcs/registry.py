"""Function registry and the built-in database functions.

Functions receive the evaluation context (so they can reach the event
database carried by ``context.system``) and the already-evaluated argument
values.  The built-ins mirror the demonstration queries:

* ``_retrieveLocation(area_id)`` — Q1's exit-description lookup;
* ``_updateLocation(tag, area, ts)`` — Q2's archival rule;
* ``_updateContainment(child, parent, ts)`` — the containment rule;
* ``_currentLocation(tag)`` / ``_movementHistory(tag)`` — the
  track-and-trace lookups triggered by the misplaced-inventory query;
* ``_productName(tag)`` — ONS metadata lookup.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.expressions import EvalContext, FunctionResolver
from repro.errors import FunctionError

FunctionImpl = Callable[..., Any]


class FunctionRegistry(FunctionResolver):
    """Name -> implementation mapping with an extension hook.

    ``needs_context=True`` implementations receive the
    :class:`~repro.core.expressions.EvalContext` as their first argument;
    plain implementations receive only the evaluated argument values.
    """

    def __init__(self) -> None:
        self._functions: dict[str, tuple[FunctionImpl, bool]] = {}

    def register(self, name: str, impl: FunctionImpl,
                 needs_context: bool = False) -> None:
        if name in self._functions:
            raise FunctionError(f"function {name!r} is already registered")
        self._functions[name] = (impl, needs_context)

    def function(self, name: str,
                 needs_context: bool = False) -> Callable[[FunctionImpl],
                                                          FunctionImpl]:
        """Decorator form of :meth:`register`."""
        def decorate(impl: FunctionImpl) -> FunctionImpl:
            self.register(name, impl, needs_context)
            return impl
        return decorate

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def call(self, name: str, context: EvalContext,
             args: list[Any]) -> Any:
        try:
            impl, needs_context = self._functions[name]
        except KeyError:
            raise FunctionError(
                f"unknown function {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}") from None
        try:
            if needs_context:
                return impl(context, *args)
            return impl(*args)
        except FunctionError:
            raise
        except Exception as exc:
            raise FunctionError(f"function {name!r} failed: {exc}") from exc


def _event_db(context: EvalContext, name: str) -> Any:
    system = context.system
    event_db = getattr(system, "event_db", None)
    if event_db is None:
        raise FunctionError(
            f"{name} needs an event database; run the query through a "
            f"SASE system (or pass system=... with an .event_db)")
    return event_db


def _ons(context: EvalContext, name: str) -> Any:
    system = context.system
    ons = getattr(system, "ons", None)
    if ons is None:
        raise FunctionError(f"{name} needs an ONS on the system context")
    return ons


def default_registry() -> FunctionRegistry:
    """The built-in ``_`` function library."""
    registry = FunctionRegistry()

    @registry.function("_retrieveLocation", needs_context=True)
    def retrieve_location(context: EvalContext, area_id: int) -> str:
        description = _event_db(context, "_retrieveLocation") \
            .area_description(int(area_id))
        return description if description is not None \
            else f"unknown area {area_id}"

    @registry.function("_updateLocation", needs_context=True)
    def update_location(context: EvalContext, tag_id: int, area_id: int,
                        timestamp: float) -> bool:
        return _event_db(context, "_updateLocation").update_location(
            int(tag_id), int(area_id), float(timestamp))

    @registry.function("_updateContainment", needs_context=True)
    def update_containment(context: EvalContext, child_tag: int,
                           parent_tag: int, timestamp: float) -> bool:
        return _event_db(context, "_updateContainment").update_containment(
            int(child_tag), int(parent_tag), float(timestamp))

    @registry.function("_closeContainment", needs_context=True)
    def close_containment(context: EvalContext, child_tag: int,
                          timestamp: float) -> bool:
        return _event_db(context, "_closeContainment").update_containment(
            int(child_tag), None, float(timestamp))

    @registry.function("_currentLocation", needs_context=True)
    def current_location(context: EvalContext, tag_id: int) -> int | None:
        location = _event_db(context, "_currentLocation") \
            .current_location(int(tag_id))
        return location["area_id"] if location is not None else None

    @registry.function("_movementHistory", needs_context=True)
    def movement_history(context: EvalContext, tag_id: int) -> str:
        history = _event_db(context, "_movementHistory") \
            .movement_history(int(tag_id))
        if not history:
            return "(no recorded movement)"
        return " -> ".join(
            f"{entry['description'] or entry['area_id']}"
            f"[{entry['time_in']:g}..{'' if entry['time_out'] is None else format(entry['time_out'], 'g')}]"
            for entry in history)

    @registry.function("_productName", needs_context=True)
    def product_name(context: EvalContext, tag_id: int) -> str:
        record = _ons(context, "_productName").lookup(int(tag_id))
        return record.product_name if record is not None \
            else f"unknown tag {tag_id}"

    @registry.function("_archiveEvent", needs_context=True)
    def archive_event(context: EvalContext, event_type: str, tag_id: int,
                      area_id: int, timestamp: float) -> int:
        from repro.events.event import Event
        return _event_db(context, "_archiveEvent").archive_event(Event(
            str(event_type), float(timestamp),
            {"TagId": int(tag_id), "AreaId": int(area_id)}))

    return registry
