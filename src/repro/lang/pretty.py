"""Unparser: render a query AST back to canonical SASE text.

``parse_query(format_query(q))`` round-trips to an equal AST, which the
test suite uses as a property-based invariant.
"""

from __future__ import annotations

from repro.lang.ast import (
    AggregateCall,
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Duration,
    Expr,
    FunctionCall,
    Literal,
    PatternComponent,
    Query,
    ReturnClause,
    TimeUnit,
    UnaryOp,
    UnOpKind,
    VariableRef,
)

_PRECEDENCE = {
    BinOpKind.OR: 1,
    BinOpKind.AND: 2,
    # NOT sits between AND and comparisons: level 3
    BinOpKind.EQ: 4, BinOpKind.NEQ: 4, BinOpKind.LT: 4,
    BinOpKind.LTE: 4, BinOpKind.GT: 4, BinOpKind.GTE: 4,
    BinOpKind.ADD: 5, BinOpKind.SUB: 5,
    BinOpKind.MUL: 6, BinOpKind.DIV: 6, BinOpKind.MOD: 6,
}
_NOT_PRECEDENCE = 3
_NEG_PRECEDENCE = 7

_UNIT_WORDS = {
    TimeUnit.SECONDS: "seconds",
    TimeUnit.MINUTES: "minutes",
    TimeUnit.HOURS: "hours",
    TimeUnit.DAYS: "days",
}


def format_query(query: Query) -> str:
    """Render *query* as canonical, reparseable SASE text."""
    lines: list[str] = []
    if query.from_stream:
        lines.append(f"FROM {query.from_stream}")
    components = ", ".join(_format_component(component)
                           for component in query.pattern.components)
    if len(query.pattern.components) == 1 and \
            not query.pattern.components[0].negated:
        lines.append(f"EVENT {components}")
    else:
        lines.append(f"EVENT SEQ({components})")
    if query.where is not None:
        lines.append(f"WHERE {format_expr(query.where)}")
    if query.within is not None:
        lines.append(f"WITHIN {_format_duration(query.within)}")
    if query.return_clause is not None:
        lines.append(f"RETURN {_format_return(query.return_clause)}")
    return "\n".join(lines)


def _format_component(component: PatternComponent) -> str:
    if component.is_any:
        head = f"ANY({', '.join(component.event_types)})"
    else:
        head = component.event_type
    if component.negated:
        return f"!({head} {component.variable})"
    suffix = "+" if component.kleene else ""
    return f"{head}{suffix} {component.variable}"


def _format_duration(duration: Duration) -> str:
    value = duration.value
    text = f"{value:g}"
    return f"{text} {_UNIT_WORDS[duration.unit]}"


def _format_return(clause: ReturnClause) -> str:
    items = ", ".join(
        format_expr(item.expr) + (f" AS {item.alias}" if item.alias else "")
        for item in clause.items)
    if clause.event_name:
        body = f"{clause.event_name}({items})"
    else:
        body = items
    if clause.into_stream:
        body += f" INTO {clause.into_stream}"
    return body


def format_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression, inserting parentheses only where needed."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        return f"{expr.value:g}" if isinstance(expr.value, float) \
            else str(expr.value)
    if isinstance(expr, AttributeRef):
        return f"{expr.variable}.{expr.attribute}"
    if isinstance(expr, VariableRef):
        return expr.name
    if isinstance(expr, UnaryOp):
        if expr.op is UnOpKind.NOT:
            # NOT binds looser than comparisons: its operand never needs
            # parens unless it is AND/OR, and the NOT itself needs parens
            # inside anything tighter than AND.
            text = f"NOT {format_expr(expr.operand, _NOT_PRECEDENCE)}"
            if _NOT_PRECEDENCE < parent_precedence:
                return f"({text})"
            return text
        text = f"-{format_expr(expr.operand, _NEG_PRECEDENCE)}"
        if _NEG_PRECEDENCE < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        if expr.op.is_comparison:
            # comparisons do not chain: parenthesize nested comparisons on
            # both sides
            left = format_expr(expr.left, precedence + 1)
        else:
            left = format_expr(expr.left, precedence)
        # right side gets precedence + 1 to force parens on equal-precedence
        # right children, preserving left associativity on reparse.
        right = format_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op.value} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, FunctionCall):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, AggregateCall):
        if expr.arg is None:
            return "COUNT(*)"
        return f"{expr.kind.value}({format_expr(expr.arg)})"
    raise TypeError(f"cannot format expression node {expr!r}")
