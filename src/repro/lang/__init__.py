"""The SASE event language front end.

``parse_query`` turns query text into an AST (:mod:`repro.lang.ast`);
``analyze`` binds it against a schema registry and produces an
:class:`~repro.lang.semantics.AnalyzedQuery` ready for planning.
"""

from repro.lang.ast import (
    AggregateCall,
    AttributeRef,
    BinaryOp,
    Duration,
    FunctionCall,
    Literal,
    PatternComponent,
    Query,
    ReturnClause,
    ReturnItem,
    SeqPattern,
    UnaryOp,
    VariableRef,
)
from repro.lang.lexer import Lexer, Token, TokenType
from repro.lang.parser import parse_query
from repro.lang.pretty import format_query
from repro.lang.semantics import AnalyzedQuery, analyze

__all__ = [
    "AggregateCall",
    "AnalyzedQuery",
    "AttributeRef",
    "BinaryOp",
    "Duration",
    "FunctionCall",
    "Lexer",
    "Literal",
    "PatternComponent",
    "Query",
    "ReturnClause",
    "ReturnItem",
    "SeqPattern",
    "Token",
    "TokenType",
    "UnaryOp",
    "VariableRef",
    "analyze",
    "format_query",
    "parse_query",
]
