"""Recursive-descent parser for the SASE event language.

Grammar (keywords case-insensitive)::

    query      := [FROM IDENT] EVENT pattern [WHERE expr]
                  [WITHIN duration] [RETURN return_clause]
    pattern    := SEQ '(' component (',' component)* ')' | component
    component  := '!' '(' IDENT IDENT ')' | IDENT ['+'] IDENT
    duration   := NUMBER [IDENT]          -- unit defaults to seconds
    return     := [IDENT '('] item (',' item)* [')'] [INTO IDENT]
    item       := expr [AS IDENT]
    expr       := or ; or := and (OR and)* ; and := not (AND not)*
    not        := NOT not | cmp
    cmp        := add [cmpop add]
    add        := mul (('+'|'-') mul)*
    mul        := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | primary
    primary    := NUMBER | STRING | TRUE | FALSE | '(' expr ')'
                | IDENT '(' [expr (',' expr)*] ')'      -- function/aggregate
                | IDENT '.' IDENT                       -- attribute ref
                | IDENT                                 -- bare variable
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    AGGREGATE_NAMES,
    AggregateCall,
    AggregateKind,
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Duration,
    Expr,
    FunctionCall,
    Literal,
    PatternComponent,
    Query,
    ReturnClause,
    ReturnItem,
    SeqPattern,
    TimeUnit,
    UnaryOp,
    UnOpKind,
    VariableRef,
)
from repro.lang.lexer import Lexer, Token, TokenType

_COMPARISONS = {
    TokenType.EQ: BinOpKind.EQ,
    TokenType.NEQ: BinOpKind.NEQ,
    TokenType.LT: BinOpKind.LT,
    TokenType.LTE: BinOpKind.LTE,
    TokenType.GT: BinOpKind.GT,
    TokenType.GTE: BinOpKind.GTE,
}

_ADDITIVE = {TokenType.PLUS: BinOpKind.ADD, TokenType.MINUS: BinOpKind.SUB}
_MULTIPLICATIVE = {
    TokenType.STAR: BinOpKind.MUL,
    TokenType.SLASH: BinOpKind.DIV,
    TokenType.PERCENT: BinOpKind.MOD,
}


def parse_query(text: str) -> Query:
    """Parse SASE query text into a :class:`~repro.lang.ast.Query`."""
    return _Parser(text).parse()


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = Lexer(text).tokenize()
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, *token_types: TokenType) -> Token | None:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, context: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {token_type.value!r} {context}, found "
                f"{token.text or 'end of input'!r}",
                token.line, token.column)
        return self._advance()

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Query:
        from_stream = None
        if self._match(TokenType.FROM):
            from_stream = self._expect(
                TokenType.IDENT, "after FROM").text

        self._expect(TokenType.EVENT, "to start the event matching block")
        pattern = self._parse_pattern()

        where = None
        if self._match(TokenType.WHERE):
            where = self._parse_expr()

        within = None
        if self._match(TokenType.WITHIN):
            within = self._parse_duration()

        return_clause = None
        if self._match(TokenType.RETURN):
            return_clause = self._parse_return()

        tail = self._peek()
        if tail.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input starting at {tail.text!r}",
                tail.line, tail.column)

        return Query(pattern=pattern, from_stream=from_stream, where=where,
                     within=within, return_clause=return_clause,
                     text=self._text)

    def _parse_pattern(self) -> SeqPattern:
        if self._match(TokenType.SEQ):
            self._expect(TokenType.LPAREN, "after SEQ")
            components = [self._parse_component()]
            while self._match(TokenType.COMMA):
                components.append(self._parse_component())
            self._expect(TokenType.RPAREN, "to close SEQ(...)")
            return SeqPattern(tuple(components))
        # single-component pattern: EVENT TYPE var
        return SeqPattern((self._parse_component(),))

    def _parse_component(self) -> PatternComponent:
        if self._match(TokenType.BANG):
            self._expect(TokenType.LPAREN, "after '!'")
            if self._match(TokenType.ANY):
                types = self._parse_any_types()
                variable = self._expect(
                    TokenType.IDENT,
                    "as the negated component's variable").text
                self._expect(TokenType.RPAREN,
                             "to close the negated component")
                return PatternComponent(types[0], variable, negated=True,
                                        alt_types=tuple(types[1:]))
            event_type = self._expect(
                TokenType.IDENT, "as the negated event type").text
            variable = self._expect(
                TokenType.IDENT, "as the negated component's variable").text
            self._expect(TokenType.RPAREN, "to close the negated component")
            return PatternComponent(event_type, variable, negated=True)
        if self._match(TokenType.ANY):
            types = self._parse_any_types()
            kleene = self._match(TokenType.PLUS) is not None
            variable = self._expect(
                TokenType.IDENT, "as the ANY component's variable").text
            return PatternComponent(types[0], variable, kleene=kleene,
                                    alt_types=tuple(types[1:]))
        event_type = self._expect(
            TokenType.IDENT, "as an event type in the pattern").text
        kleene = self._match(TokenType.PLUS) is not None
        variable = self._expect(
            TokenType.IDENT,
            f"as the variable bound to {event_type!r}").text
        return PatternComponent(event_type, variable, kleene=kleene)

    def _parse_any_types(self) -> list[str]:
        self._expect(TokenType.LPAREN, "after ANY")
        types = [self._expect(TokenType.IDENT,
                              "as an event type in ANY(...)").text]
        while self._match(TokenType.COMMA):
            types.append(self._expect(
                TokenType.IDENT, "as an event type in ANY(...)").text)
        self._expect(TokenType.RPAREN, "to close ANY(...)")
        return types

    def _parse_duration(self) -> Duration:
        number = self._expect(TokenType.NUMBER, "after WITHIN")
        unit = TimeUnit.SECONDS
        unit_token = self._match(TokenType.IDENT)
        if unit_token is not None:
            try:
                unit = TimeUnit.parse(unit_token.text)
            except ParseError as exc:
                raise ParseError(str(exc), unit_token.line,
                                 unit_token.column) from None
        assert isinstance(number.value, (int, float))
        return Duration(float(number.value), unit)

    def _parse_return(self) -> ReturnClause:
        event_name = None
        # "RETURN Alert(x.TagId, ...)": an IDENT followed by '(' is only a
        # composite-type constructor when the whole clause is wrapped --
        # otherwise it's a plain function call item.  Disambiguate by
        # scanning: a constructor is IDENT '(' ... ')' [INTO IDENT] EOF
        # where the parenthesis closes the entire item list.
        if self._check(TokenType.IDENT) and \
                self._peek(1).type is TokenType.LPAREN and \
                self._is_constructor_form():
            event_name = self._advance().text
            self._expect(TokenType.LPAREN, "after composite event name")
            items = self._parse_return_items()
            self._expect(TokenType.RPAREN, "to close the RETURN constructor")
        else:
            items = self._parse_return_items()
        into_stream = None
        if self._match(TokenType.INTO):
            into_stream = self._expect(TokenType.IDENT, "after INTO").text
        return ReturnClause(tuple(items), event_name=event_name,
                            into_stream=into_stream)

    def _is_constructor_form(self) -> bool:
        """Look ahead from ``IDENT (``: the form is a constructor when its
        matching close paren is followed by EOF or INTO (i.e. it wraps the
        whole clause) and the name is not an aggregate or ``_`` function."""
        name = self._peek().text
        if name.upper() in AGGREGATE_NAMES or name.startswith("_"):
            return False
        depth = 0
        offset = 1  # at the '('
        while True:
            token = self._peek(offset)
            if token.type is TokenType.EOF:
                return False
            if token.type is TokenType.LPAREN:
                depth += 1
            elif token.type is TokenType.RPAREN:
                depth -= 1
                if depth == 0:
                    after = self._peek(offset + 1)
                    return after.type in (TokenType.EOF, TokenType.INTO)
            offset += 1

    def _parse_return_items(self) -> list[ReturnItem]:
        items = [self._parse_return_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_return_item())
        return items

    def _parse_return_item(self) -> ReturnItem:
        if self._match(TokenType.STAR):
            # RETURN *: project every bound variable (resolved in semantics).
            return ReturnItem(VariableRef("*"))
        expr = self._parse_expr()
        alias = None
        if self._match(TokenType.AS):
            alias = self._expect(TokenType.IDENT, "after AS").text
        return ReturnItem(expr, alias)

    # -- expressions -------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._match(TokenType.OR):
            right = self._parse_and()
            left = BinaryOp(BinOpKind.OR, left, right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._match(TokenType.AND):
            right = self._parse_not()
            left = BinaryOp(BinOpKind.AND, left, right)
        return left

    def _parse_not(self) -> Expr:
        if self._match(TokenType.NOT):
            return UnaryOp(UnOpKind.NOT, self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.type in _COMPARISONS:
            self._advance()
            right = self._parse_additive()
            return BinaryOp(_COMPARISONS[token.type], left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().type in _ADDITIVE:
            op = _ADDITIVE[self._advance().type]
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().type in _MULTIPLICATIVE:
            op = _MULTIPLICATIVE[self._advance().type]
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._match(TokenType.MINUS):
            return UnaryOp(UnOpKind.NEG, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            assert isinstance(token.value, (int, float))
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            assert isinstance(token.value, str)
            return Literal(token.value)
        if token.type in (TokenType.TRUE, TokenType.FALSE):
            self._advance()
            assert isinstance(token.value, bool)
            return Literal(token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "to close the parenthesis")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_identifier_expr()
        raise ParseError(
            f"expected an expression, found {token.text or 'end of input'!r}",
            token.line, token.column)

    def _parse_identifier_expr(self) -> Expr:
        name_token = self._advance()
        name = name_token.text
        if self._match(TokenType.LPAREN):
            args: list[Expr] = []
            star = False
            if self._match(TokenType.STAR):
                star = True
            elif not self._check(TokenType.RPAREN):
                args.append(self._parse_expr())
                while self._match(TokenType.COMMA):
                    args.append(self._parse_expr())
            self._expect(TokenType.RPAREN, f"to close the call to {name!r}")
            upper = name.upper()
            if upper in AGGREGATE_NAMES:
                if star:
                    if upper != "COUNT":
                        raise ParseError(
                            f"'*' is only valid inside COUNT, not {name}",
                            name_token.line, name_token.column)
                    return AggregateCall(AggregateKind.COUNT, None)
                if len(args) != 1:
                    raise ParseError(
                        f"aggregate {name} takes exactly one argument",
                        name_token.line, name_token.column)
                return AggregateCall(AggregateKind[upper], args[0])
            if star:
                raise ParseError(
                    f"'*' is only valid inside COUNT, not {name}",
                    name_token.line, name_token.column)
            return FunctionCall(name, tuple(args))
        if self._match(TokenType.DOT):
            attribute = self._expect(
                TokenType.IDENT, f"after '{name}.'").text
            return AttributeRef(name, attribute)
        return VariableRef(name)
