"""Abstract syntax tree for the SASE event language.

The overall query structure mirrors the paper (Section 2.1.1)::

    [FROM <stream name>]
    EVENT <event pattern>
    [WHERE <qualification>]
    [WITHIN <window>]
    [RETURN <return event pattern>]

All nodes are immutable dataclasses so they can be shared between plans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.errors import ParseError

Expr = Union["BinaryOp", "UnaryOp", "AttributeRef", "VariableRef",
             "Literal", "FunctionCall", "AggregateCall"]


class BinOpKind(enum.Enum):
    AND = "AND"
    OR = "OR"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"

    @property
    def is_comparison(self) -> bool:
        return self in (BinOpKind.EQ, BinOpKind.NEQ, BinOpKind.LT,
                        BinOpKind.LTE, BinOpKind.GT, BinOpKind.GTE)

    @property
    def is_logical(self) -> bool:
        return self in (BinOpKind.AND, BinOpKind.OR)


class UnOpKind(enum.Enum):
    NOT = "NOT"
    NEG = "-"


class AggregateKind(enum.Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    FIRST = "FIRST"
    LAST = "LAST"


AGGREGATE_NAMES = frozenset(kind.value for kind in AggregateKind)


@dataclass(frozen=True)
class Literal:
    value: int | float | str | bool


@dataclass(frozen=True)
class AttributeRef:
    """``variable.attribute`` — a reference to one attribute of one bound
    pattern component."""

    variable: str
    attribute: str


@dataclass(frozen=True)
class VariableRef:
    """A bare pattern variable (used inside aggregates: ``COUNT(d)``)."""

    name: str


@dataclass(frozen=True)
class BinaryOp:
    op: BinOpKind
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp:
    op: UnOpKind
    operand: Expr


@dataclass(frozen=True)
class FunctionCall:
    """A call to a built-in function (``_retrieveLocation(z.AreaId)``) or
    an extension function registered by the application."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate over a (Kleene) variable's bindings, e.g.
    ``AVG(d.Price)`` or ``COUNT(d)``."""

    kind: AggregateKind
    arg: Expr | None  # None only for COUNT(*)


@dataclass(frozen=True)
class PatternComponent:
    """One component of a SEQ pattern: an event type bound to a variable.

    ``negated`` marks ``!(TYPE var)``; ``kleene`` marks ``TYPE+ var`` (the
    SASE+ extension for recursive pattern matching); ``alt_types`` carries
    the additional types of an ``ANY(T1, T2, ...) var`` component — the
    variable then binds an event of any listed type.
    """

    event_type: str
    variable: str
    negated: bool = False
    kleene: bool = False
    alt_types: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.negated and self.kleene:
            raise ParseError(
                f"component {self.variable!r}: a negated component cannot "
                f"also be a Kleene closure")
        if self.event_type in self.alt_types or \
                len(set(self.alt_types)) != len(self.alt_types):
            raise ParseError(
                f"component {self.variable!r}: duplicate type in ANY(...)")

    @property
    def event_types(self) -> tuple[str, ...]:
        """All types this component accepts."""
        return (self.event_type, *self.alt_types)

    @property
    def is_any(self) -> bool:
        return bool(self.alt_types)

    def accepts_type(self, event_type: str) -> bool:
        return event_type == self.event_type or \
            event_type in self.alt_types


@dataclass(frozen=True)
class SeqPattern:
    """``SEQ(c1, c2, ..., cn)`` — temporal order over its components.

    A single-component query (``EVENT TYPE var``) is represented as a
    SeqPattern of length one.
    """

    components: tuple[PatternComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ParseError("SEQ pattern must have at least one component")
        if all(component.negated for component in self.components):
            raise ParseError(
                "SEQ pattern must contain at least one non-negated component")
        seen: set[str] = set()
        for component in self.components:
            if component.variable in seen:
                raise ParseError(
                    f"duplicate pattern variable {component.variable!r}")
            seen.add(component.variable)

    @property
    def positives(self) -> tuple[PatternComponent, ...]:
        return tuple(component for component in self.components
                     if not component.negated)

    @property
    def negatives(self) -> tuple[PatternComponent, ...]:
        return tuple(component for component in self.components
                     if component.negated)

    def variables(self) -> tuple[str, ...]:
        return tuple(component.variable for component in self.components)

    def component_for(self, variable: str) -> PatternComponent:
        for component in self.components:
            if component.variable == variable:
                return component
        raise KeyError(variable)


class TimeUnit(enum.Enum):
    """Window time units; values are seconds per unit (one logical time
    unit == one second, per the Time Conversion layer's default)."""

    SECONDS = 1
    MINUTES = 60
    HOURS = 3600
    DAYS = 86400

    @classmethod
    def parse(cls, word: str) -> "TimeUnit":
        normalized = word.lower().rstrip("s")  # hour / hours
        mapping = {
            "second": cls.SECONDS, "sec": cls.SECONDS, "s": cls.SECONDS,
            "minute": cls.MINUTES, "min": cls.MINUTES, "m": cls.MINUTES,
            "hour": cls.HOURS, "hr": cls.HOURS, "h": cls.HOURS,
            "day": cls.DAYS, "d": cls.DAYS,
        }
        if normalized not in mapping:
            raise ParseError(f"unknown time unit {word!r}")
        return mapping[normalized]


@dataclass(frozen=True)
class Duration:
    """A WITHIN window: ``12 hours`` → Duration(12, TimeUnit.HOURS)."""

    value: float
    unit: TimeUnit = TimeUnit.SECONDS

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ParseError("WITHIN window must be positive")

    @property
    def seconds(self) -> float:
        return self.value * self.unit.value


@dataclass(frozen=True)
class ReturnItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class ReturnClause:
    """RETURN items, optionally naming the composite event type
    (``RETURN Alert(x.TagId, ...)``) and/or the output stream
    (``... INTO alerts``)."""

    items: tuple[ReturnItem, ...]
    event_name: str | None = None
    into_stream: str | None = None


@dataclass(frozen=True)
class Query:
    """A complete SASE query."""

    pattern: SeqPattern
    from_stream: str | None = None
    where: Expr | None = None
    within: Duration | None = None
    return_clause: ReturnClause | None = None
    text: str = field(default="", compare=False)
