"""Tokenizer for the SASE event language.

The language is line-oriented SQL-ish text::

    EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
    WHERE x.TagId = y.TagId AND x.TagId = z.TagId
    WITHIN 12 hours
    RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)

Keywords are case-insensitive; identifiers are case-sensitive.  The paper
writes conjunction with the mathematical wedge; we accept ``AND``, ``&&``
and the Unicode wedge interchangeably (likewise for disjunction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexerError


class TokenType(enum.Enum):
    # structure
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    BANG = "!"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    # comparisons
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    # keywords
    FROM = "FROM"
    EVENT = "EVENT"
    SEQ = "SEQ"
    ANY = "ANY"
    WHERE = "WHERE"
    WITHIN = "WITHIN"
    RETURN = "RETURN"
    INTO = "INTO"
    AS = "AS"
    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    TRUE = "TRUE"
    FALSE = "FALSE"
    EOF = "end of input"


_KEYWORDS = {
    "FROM": TokenType.FROM,
    "EVENT": TokenType.EVENT,
    "SEQ": TokenType.SEQ,
    "ANY": TokenType.ANY,
    "WHERE": TokenType.WHERE,
    "WITHIN": TokenType.WITHIN,
    "RETURN": TokenType.RETURN,
    "INTO": TokenType.INTO,
    "AS": TokenType.AS,
    "AND": TokenType.AND,
    "OR": TokenType.OR,
    "NOT": TokenType.NOT,
    "TRUE": TokenType.TRUE,
    "FALSE": TokenType.FALSE,
}

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.EQ,
}


def _is_ascii_digit(character: str) -> bool:
    # str.isdigit() accepts Unicode digits (e.g. superscripts) that
    # int()/float() reject; numbers are ASCII only.
    return "0" <= character <= "9"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int
    value: object = None

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r})"


class Lexer:
    """Converts query text into a list of :class:`Token`."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos:self._pos + count]
        for character in chunk:
            if character == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            character = self._peek()
            if character.isspace():
                self._advance()
            elif character == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _make(self, token_type: TokenType, text: str,
              line: int, column: int, value: object = None) -> Token:
        return Token(token_type, text, line, column, value)

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self._line, self._column
        if self._pos >= len(self._text):
            return self._make(TokenType.EOF, "", line, column)

        character = self._peek()

        if _is_ascii_digit(character) or (character == "." and
                                          _is_ascii_digit(self._peek(1))):
            return self._lex_number(line, column)
        if character.isalpha() or character == "_":
            return self._lex_word(line, column)
        if character in ("'", '"'):
            return self._lex_string(line, column)

        two = self._peek() + self._peek(1)
        if two == "!=":
            self._advance(2)
            return self._make(TokenType.NEQ, two, line, column)
        if two == "<>":
            self._advance(2)
            return self._make(TokenType.NEQ, two, line, column)
        if two == "<=":
            self._advance(2)
            return self._make(TokenType.LTE, two, line, column)
        if two == ">=":
            self._advance(2)
            return self._make(TokenType.GTE, two, line, column)
        if two == "&&":
            self._advance(2)
            return self._make(TokenType.AND, two, line, column)
        if two == "||":
            self._advance(2)
            return self._make(TokenType.OR, two, line, column)
        if character == "∧":  # mathematical AND, as printed in the paper
            self._advance()
            return self._make(TokenType.AND, character, line, column)
        if character == "∨":  # mathematical OR
            self._advance()
            return self._make(TokenType.OR, character, line, column)
        if character == "<":
            self._advance()
            return self._make(TokenType.LT, character, line, column)
        if character == ">":
            self._advance()
            return self._make(TokenType.GT, character, line, column)
        if character == "!":
            self._advance()
            return self._make(TokenType.BANG, character, line, column)
        if character in _SINGLE_CHAR:
            self._advance()
            return self._make(_SINGLE_CHAR[character], character, line, column)

        raise LexerError(f"unexpected character {character!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        seen_dot = False
        while self._pos < len(self._text):
            character = self._peek()
            if _is_ascii_digit(character):
                self._advance()
            elif character == "." and not seen_dot and \
                    _is_ascii_digit(self._peek(1)):
                seen_dot = True
                self._advance()
            else:
                break
        text = self._text[start:self._pos]
        value: float | int = float(text) if seen_dot else int(text)
        return self._make(TokenType.NUMBER, text, line, column, value)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and \
                (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._text[start:self._pos]
        keyword = _KEYWORDS.get(text.upper())
        if keyword is not None:
            if keyword is TokenType.TRUE:
                return self._make(keyword, text, line, column, True)
            if keyword is TokenType.FALSE:
                return self._make(keyword, text, line, column, False)
            return self._make(keyword, text, line, column)
        return self._make(TokenType.IDENT, text, line, column, text)

    def _lex_string(self, line: int, column: int) -> Token:
        quote = self._advance()
        pieces: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexerError("unterminated string literal", line, column)
            character = self._advance()
            if character == quote:
                if self._peek() == quote:  # SQL-style doubled quote escape
                    pieces.append(self._advance())
                    continue
                break
            pieces.append(character)
        text = "".join(pieces)
        return self._make(TokenType.STRING, text, line, column, text)
