"""Semantic analysis: bind a parsed query against a schema registry.

The analyzer performs the work the paper's implementation section implies
must happen before planning:

* every pattern component's event type is resolved to a schema, and every
  ``var.attr`` reference is checked against it (with type checking of
  comparisons and arithmetic);
* the WHERE qualification is flattened into a conjunction and each conjunct
  is classified by which kind of operator must evaluate it — a per-component
  filter (pushable into the sequence scan), a multi-variable parameterized
  predicate (the Selection operator), a negation predicate (the Negation
  operator), or a Kleene per-event predicate;
* equality conjuncts between components are grouped into equivalence
  classes; a class that covers every positive component yields the
  *partition attribute* that enables the Partitioned Active Instance Stack
  (PAIS) optimization of reference [8].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SemanticError
from repro.events.model import AttributeType, EventSchema, SchemaRegistry
from repro.lang.ast import (
    AggregateCall,
    AggregateKind,
    AttributeRef,
    BinaryOp,
    BinOpKind,
    Expr,
    FunctionCall,
    Literal,
    PatternComponent,
    Query,
    ReturnClause,
    ReturnItem,
    SeqPattern,
    UnaryOp,
    VariableRef,
)

# A pseudo-type for expressions whose type we cannot know statically
# (function calls into the extensible `_` library).
_ANY = "any"
_NUMERIC = (AttributeType.INT, AttributeType.FLOAT)


@dataclass(frozen=True)
class PredicateInfo:
    """One conjunct of the WHERE clause, with its classification inputs."""

    expr: Expr
    variables: frozenset[str]
    negative_var: str | None = None
    kleene_var: str | None = None
    is_partition_equality: bool = False


@dataclass(frozen=True)
class PartitionScheme:
    """A full-cover equality class: each variable's partition attribute.

    When present, events can be hashed into per-value partitions before
    sequence scan (PAIS), and every equality conjunct the class implies can
    be dropped from the Selection operator.
    """

    attr_by_var: dict[str, str]

    def key_attribute(self, variable: str) -> str | None:
        return self.attr_by_var.get(variable)


@dataclass(frozen=True)
class ResolvedReturnItem:
    expr: Expr
    name: str


@dataclass
class AnalyzedQuery:
    """A parsed query bound to schemas and decomposed for planning."""

    query: Query
    registry: SchemaRegistry
    components: tuple[PatternComponent, ...]
    positives: tuple[PatternComponent, ...]
    schemas: dict[str, EventSchema]          # variable -> schema
    window: float | None                     # seconds, None = unbounded
    component_filters: dict[str, list[PredicateInfo]] = field(
        default_factory=dict)
    selection_predicates: list[PredicateInfo] = field(default_factory=list)
    negation_predicates: dict[str, list[PredicateInfo]] = field(
        default_factory=dict)
    kleene_predicates: dict[str, list[PredicateInfo]] = field(
        default_factory=dict)
    partition: PartitionScheme | None = None
    return_items: tuple[ResolvedReturnItem, ...] = ()
    output_type: str = "Match"
    output_stream: str | None = None

    @property
    def positive_index(self) -> dict[str, int]:
        return {component.variable: index
                for index, component in enumerate(self.positives)}

    @property
    def has_negation(self) -> bool:
        return any(component.negated for component in self.components)

    @property
    def has_kleene(self) -> bool:
        return any(component.kleene for component in self.components)

    def negation_layout(self) -> list[tuple[PatternComponent, int, int]]:
        """For each negated component, its neighbouring positive positions.

        Returns ``(component, prev_index, next_index)`` where the indexes
        are positions into :attr:`positives`; ``-1`` means the negation
        leads the pattern and ``len(positives)`` means it trails it.
        """
        layout: list[tuple[PatternComponent, int, int]] = []
        positive_position = -1
        for component in self.components:
            if component.negated:
                layout.append((component, positive_position,
                               positive_position + 1))
            else:
                positive_position += 1
        return layout


def analyze(query: Query, registry: SchemaRegistry) -> AnalyzedQuery:
    """Validate *query* against *registry* and decompose it for planning."""
    return _Analyzer(query, registry).run()


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(self, item: tuple[str, str]) -> tuple[str, str]:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, a: tuple[str, str], b: tuple[str, str]) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def classes(self) -> list[set[tuple[str, str]]]:
        groups: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for item in list(self._parent):
            groups.setdefault(self.find(item), set()).add(item)
        return list(groups.values())


class _Analyzer:
    def __init__(self, query: Query, registry: SchemaRegistry):
        self._query = query
        self._registry = registry
        self._pattern: SeqPattern = query.pattern
        self._schemas: dict[str, EventSchema] = {}
        self._negative_vars = {component.variable
                               for component in self._pattern.negatives}
        self._kleene_vars = {component.variable
                             for component in self._pattern.components
                             if component.kleene}

    def run(self) -> AnalyzedQuery:
        self._bind_components()
        analyzed = AnalyzedQuery(
            query=self._query,
            registry=self._registry,
            components=self._pattern.components,
            positives=self._pattern.positives,
            schemas=dict(self._schemas),
            window=(self._query.within.seconds
                    if self._query.within else None),
            component_filters={component.variable: []
                               for component in self._pattern.components},
            negation_predicates={variable: []
                                 for variable in self._negative_vars},
            kleene_predicates={variable: []
                               for variable in self._kleene_vars},
        )
        if self._query.where is not None:
            self._classify_where(analyzed)
        self._find_partition(analyzed)
        self._resolve_return(analyzed)
        return analyzed

    # -- pattern binding ---------------------------------------------------

    def _bind_components(self) -> None:
        for component in self._pattern.components:
            if component.is_any:
                self._schemas[component.variable] = \
                    self._intersection_schema(component)
            else:
                self._schemas[component.variable] = \
                    self._registry.get(component.event_type)

    def _intersection_schema(self, component: PatternComponent) \
            -> EventSchema:
        """An ANY component's variable can only reference attributes that
        every alternative type declares with the same type."""
        schemas = [self._registry.get(name)
                   for name in component.event_types]
        common = []
        first = schemas[0]
        for spec in first:
            if all(spec.name in schema
                   and schema.attribute(spec.name).type is spec.type
                   for schema in schemas[1:]):
                common.append((spec.name, spec.type))
        return EventSchema(f"ANY_{component.variable}", common)

    # -- WHERE classification ----------------------------------------------

    def _classify_where(self, analyzed: AnalyzedQuery) -> None:
        for conjunct in _flatten_and(self._query.where):
            result_type = self._check_expr(conjunct, allow_aggregates=False)
            if result_type not in (AttributeType.BOOL, _ANY):
                raise SemanticError(
                    "WHERE conjunct does not evaluate to a boolean: "
                    f"{conjunct!r}")
            variables = frozenset(_collect_variables(conjunct))
            negatives = variables & self._negative_vars
            kleenes = variables & self._kleene_vars
            if len(negatives) > 1:
                raise SemanticError(
                    "a WHERE conjunct may reference at most one negated "
                    f"component; found {sorted(negatives)}")
            if negatives and kleenes:
                raise SemanticError(
                    "a WHERE conjunct may not mix negated and Kleene "
                    f"components: {conjunct!r}")
            if len(kleenes) > 1:
                raise SemanticError(
                    "a WHERE conjunct may reference at most one Kleene "
                    f"component; found {sorted(kleenes)}")
            info = PredicateInfo(
                expr=conjunct,
                variables=variables,
                negative_var=next(iter(negatives), None),
                kleene_var=next(iter(kleenes), None),
            )
            if info.negative_var is not None:
                analyzed.negation_predicates[info.negative_var].append(info)
            elif info.kleene_var is not None:
                analyzed.kleene_predicates[info.kleene_var].append(info)
            elif len(variables) == 1:
                analyzed.component_filters[next(iter(variables))].append(info)
            else:
                analyzed.selection_predicates.append(info)

    # -- partition discovery -------------------------------------------------

    def _find_partition(self, analyzed: AnalyzedQuery) -> None:
        """Union-find over ``var.attr`` pairs linked by equality conjuncts.

        A class covering all positive components becomes the partition
        scheme (the optimizer may then hash events into per-value stacks and
        drop the implied equality conjuncts from Selection).
        """
        union_find = _UnionFind()
        equality_conjuncts: list[PredicateInfo] = []
        buckets: list[PredicateInfo] = list(analyzed.selection_predicates)
        for predicates in analyzed.negation_predicates.values():
            buckets.extend(predicates)
        for predicates in analyzed.kleene_predicates.values():
            buckets.extend(predicates)
        for info in buckets:
            expr = info.expr
            if isinstance(expr, BinaryOp) and expr.op is BinOpKind.EQ and \
                    isinstance(expr.left, AttributeRef) and \
                    isinstance(expr.right, AttributeRef) and \
                    expr.left.variable != expr.right.variable:
                union_find.union((expr.left.variable, expr.left.attribute),
                                 (expr.right.variable, expr.right.attribute))
                equality_conjuncts.append(info)

        positive_vars = {component.variable
                         for component in analyzed.positives}
        for cls in union_find.classes():
            vars_in_class = {variable for variable, _ in cls}
            if positive_vars <= vars_in_class:
                attr_by_var: dict[str, str] = {}
                ambiguous = False
                for variable, attribute in cls:
                    if attr_by_var.get(variable, attribute) != attribute:
                        # Two different attributes of one variable in the
                        # same class (x.a = y.b AND x.c = y.b): cannot key
                        # the variable on a single attribute.
                        ambiguous = True
                    attr_by_var.setdefault(variable, attribute)
                if ambiguous:
                    continue
                analyzed.partition = PartitionScheme(attr_by_var)
                class_set = set(cls)
                replacements: dict[int, PredicateInfo] = {}
                for info in equality_conjuncts:
                    expr = info.expr
                    assert isinstance(expr, BinaryOp)
                    assert isinstance(expr.left, AttributeRef)
                    assert isinstance(expr.right, AttributeRef)
                    left = (expr.left.variable, expr.left.attribute)
                    right = (expr.right.variable, expr.right.attribute)
                    if left in class_set and right in class_set:
                        replacements[id(info)] = PredicateInfo(
                            expr=info.expr, variables=info.variables,
                            negative_var=info.negative_var,
                            kleene_var=info.kleene_var,
                            is_partition_equality=True)
                _replace_in_place(analyzed.selection_predicates, replacements)
                for predicates in analyzed.negation_predicates.values():
                    _replace_in_place(predicates, replacements)
                for predicates in analyzed.kleene_predicates.values():
                    _replace_in_place(predicates, replacements)
                return

    # -- RETURN resolution ---------------------------------------------------

    def _resolve_return(self, analyzed: AnalyzedQuery) -> None:
        clause = self._query.return_clause
        if clause is None:
            analyzed.return_items = tuple(
                ResolvedReturnItem(VariableRef(component.variable),
                                   component.variable)
                for component in self._pattern.positives)
            return
        items: list[ResolvedReturnItem] = []
        used_names: set[str] = set()
        for item in clause.items:
            expanded = self._expand_item(item)
            for expr, name in expanded:
                self._check_expr(expr, allow_aggregates=True)
                final = _unique_name(name, used_names)
                used_names.add(final)
                items.append(ResolvedReturnItem(expr, final))
        analyzed.return_items = tuple(items)
        if clause.event_name:
            analyzed.output_type = clause.event_name
        analyzed.output_stream = clause.into_stream

    def _expand_item(self, item: ReturnItem) -> list[tuple[Expr, str]]:
        expr = item.expr
        if isinstance(expr, VariableRef) and expr.name == "*":
            expanded: list[tuple[Expr, str]] = []
            for component in self._pattern.positives:
                schema = self._schemas[component.variable]
                for spec in schema:
                    expanded.append((
                        AttributeRef(component.variable, spec.name),
                        f"{component.variable}_{spec.name}"))
            return expanded
        return [(expr, item.alias or _default_name(expr))]

    # -- type checking -------------------------------------------------------

    def _check_expr(self, expr: Expr,
                    allow_aggregates: bool) -> AttributeType | str:
        if isinstance(expr, Literal):
            return _literal_type(expr.value)
        if isinstance(expr, AttributeRef):
            schema = self._schema_for(expr.variable)
            if expr.attribute in ("Timestamp", "timestamp"):
                # every event carries an implicit timestamp (the paper's
                # Q2 reads y.Timestamp)
                return AttributeType.FLOAT
            return schema.attribute(expr.attribute).type
        if isinstance(expr, VariableRef):
            self._schema_for(expr.name)
            return _ANY
        if isinstance(expr, UnaryOp):
            inner = self._check_expr(expr.operand, allow_aggregates)
            if expr.op.name == "NOT":
                if inner not in (AttributeType.BOOL, _ANY):
                    raise SemanticError(f"NOT applied to non-boolean: "
                                        f"{expr.operand!r}")
                return AttributeType.BOOL
            if inner not in (*_NUMERIC, _ANY):
                raise SemanticError(
                    f"unary minus applied to non-numeric: {expr.operand!r}")
            return inner if inner != _ANY else _ANY
        if isinstance(expr, BinaryOp):
            return self._check_binary(expr, allow_aggregates)
        if isinstance(expr, FunctionCall):
            for arg in expr.args:
                self._check_expr(arg, allow_aggregates)
            return _ANY
        if isinstance(expr, AggregateCall):
            if not allow_aggregates:
                raise SemanticError(
                    "aggregates are only allowed in the RETURN clause")
            return self._check_aggregate(expr)
        raise SemanticError(f"unsupported expression node: {expr!r}")

    def _check_binary(self, expr: BinaryOp,
                      allow_aggregates: bool) -> AttributeType | str:
        left = self._check_expr(expr.left, allow_aggregates)
        right = self._check_expr(expr.right, allow_aggregates)
        if expr.op.is_logical:
            for side, tree in ((left, expr.left), (right, expr.right)):
                if side not in (AttributeType.BOOL, _ANY):
                    raise SemanticError(
                        f"{expr.op.value} operand is not boolean: {tree!r}")
            return AttributeType.BOOL
        if expr.op.is_comparison:
            if not _comparable(left, right):
                raise SemanticError(
                    f"cannot compare {_type_name(left)} with "
                    f"{_type_name(right)} in {expr!r}")
            if expr.op not in (BinOpKind.EQ, BinOpKind.NEQ) and \
                    AttributeType.BOOL in (left, right):
                raise SemanticError(
                    f"ordering comparison on boolean values: {expr!r}")
            return AttributeType.BOOL
        # arithmetic
        for side, tree in ((left, expr.left), (right, expr.right)):
            if side == _ANY:
                continue
            if expr.op is BinOpKind.ADD and side is AttributeType.STRING:
                continue  # string concatenation
            if side not in _NUMERIC:
                raise SemanticError(
                    f"arithmetic on non-numeric operand: {tree!r}")
        if AttributeType.STRING in (left, right):
            if left is not right and _ANY not in (left, right):
                raise SemanticError(
                    f"cannot mix string and numeric operands in {expr!r}")
            return AttributeType.STRING
        if _ANY in (left, right):
            return _ANY
        if AttributeType.FLOAT in (left, right) or expr.op is BinOpKind.DIV:
            return AttributeType.FLOAT
        return AttributeType.INT

    def _check_aggregate(self, expr: AggregateCall) -> AttributeType | str:
        if expr.arg is None:  # COUNT(*)
            return AttributeType.INT
        if isinstance(expr.arg, VariableRef):
            self._schema_for(expr.arg.name)
            if expr.kind is not AggregateKind.COUNT:
                raise SemanticError(
                    f"{expr.kind.value} needs an attribute reference, "
                    f"e.g. {expr.kind.value}(d.Price)")
            return AttributeType.INT
        if isinstance(expr.arg, AttributeRef):
            schema = self._schema_for(expr.arg.variable)
            attr_type = schema.attribute(expr.arg.attribute).type
            if expr.kind is AggregateKind.COUNT:
                return AttributeType.INT
            if expr.kind in (AggregateKind.SUM, AggregateKind.AVG):
                if attr_type not in _NUMERIC:
                    raise SemanticError(
                        f"{expr.kind.value} over non-numeric attribute "
                        f"{expr.arg.variable}.{expr.arg.attribute}")
                return AttributeType.FLOAT
            return attr_type  # MIN / MAX / FIRST / LAST
        raise SemanticError(
            "aggregate argument must be a variable or attribute reference")

    def _schema_for(self, variable: str) -> EventSchema:
        try:
            return self._schemas[variable]
        except KeyError:
            raise SemanticError(
                f"unknown pattern variable {variable!r}; bound variables: "
                f"{', '.join(self._schemas) or '(none)'}") from None


# -- helpers ---------------------------------------------------------------

def _flatten_and(expr: Expr) -> Iterable[Expr]:
    if isinstance(expr, BinaryOp) and expr.op is BinOpKind.AND:
        yield from _flatten_and(expr.left)
        yield from _flatten_and(expr.right)
    else:
        yield expr


def _collect_variables(expr: Expr) -> set[str]:
    variables: set[str] = set()
    _walk_variables(expr, variables)
    return variables


def _walk_variables(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, AttributeRef):
        out.add(expr.variable)
    elif isinstance(expr, VariableRef):
        if expr.name != "*":
            out.add(expr.name)
    elif isinstance(expr, BinaryOp):
        _walk_variables(expr.left, out)
        _walk_variables(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _walk_variables(expr.operand, out)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            _walk_variables(arg, out)
    elif isinstance(expr, AggregateCall):
        if expr.arg is not None:
            _walk_variables(expr.arg, out)


def _literal_type(value: object) -> AttributeType:
    if isinstance(value, bool):
        return AttributeType.BOOL
    if isinstance(value, int):
        return AttributeType.INT
    if isinstance(value, float):
        return AttributeType.FLOAT
    return AttributeType.STRING


def _comparable(left: AttributeType | str,
                right: AttributeType | str) -> bool:
    if _ANY in (left, right):
        return True
    if left in _NUMERIC and right in _NUMERIC:
        return True
    return left is right


def _type_name(attr_type: AttributeType | str) -> str:
    return attr_type if isinstance(attr_type, str) else attr_type.value


def _default_name(expr: Expr) -> str:
    if isinstance(expr, AttributeRef):
        return f"{expr.variable}_{expr.attribute}"
    if isinstance(expr, VariableRef):
        return expr.name
    if isinstance(expr, FunctionCall):
        return expr.name.lstrip("_") or "value"
    if isinstance(expr, AggregateCall):
        if expr.arg is None:
            return "count"
        return f"{expr.kind.value.lower()}_{_default_name(expr.arg)}"
    return "value"


def _unique_name(name: str, used: set[str]) -> str:
    if name not in used:
        return name
    suffix = 2
    while f"{name}_{suffix}" in used:
        suffix += 1
    return f"{name}_{suffix}"


def _replace_in_place(predicates: list[PredicateInfo],
                      replacements: dict[int, PredicateInfo]) -> None:
    for index, info in enumerate(predicates):
        replacement = replacements.get(id(info))
        if replacement is not None:
            predicates[index] = replacement
