"""Event streams: ordered, sequenced iterables of events.

The complex event processor consumes a single time-ordered stream.  This
module provides :class:`EventStream`, which validates ordering and assigns
arrival sequence numbers, and :func:`merge_streams`, which merges several
ordered sources into one (the Cleaning and Association layer uses this when
multiple readers feed the system).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.errors import StreamError
from repro.events.event import Event


class EventStream:
    """A validated, sequenced stream of events.

    Iterating an :class:`EventStream` yields events whose ``seq`` field is
    their arrival position.  Timestamps must be non-decreasing; ties are
    allowed (two readers can fire in the same logical time unit) and are
    ordered by arrival.

    The stream is single-pass when built over a generator; build it over a
    list to iterate repeatedly.
    """

    def __init__(self, events: Iterable[Event], name: str = "default",
                 validate: bool = True, start_seq: int = 0):
        self._events = events
        self.name = name
        self._validate = validate
        self._start_seq = start_seq

    def __iter__(self) -> Iterator[Event]:
        last_ts: float | None = None
        next_seq = self._start_seq
        for event in self._events:
            if not isinstance(event, Event):
                raise StreamError(
                    f"stream {self.name!r} yielded a non-Event object: "
                    f"{event!r}")
            if self._validate and last_ts is not None \
                    and event.timestamp < last_ts:
                raise StreamError(
                    f"stream {self.name!r} is out of order: timestamp "
                    f"{event.timestamp} after {last_ts}")
            last_ts = event.timestamp
            if event.seq < 0:
                event = event.with_seq(next_seq)
                next_seq += 1
            else:
                # A pre-sequenced event passes through; later assigned
                # numbers continue monotonically past it so mixing
                # sequenced and unsequenced events never produces
                # duplicate or regressing sequence numbers.
                next_seq = max(next_seq, event.seq + 1)
            yield event

    def collect(self) -> list[Event]:
        """Materialize the stream (validating and sequencing as it goes)."""
        return list(self)

    def filter(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """A derived stream containing only events satisfying *predicate*.

        Sequence numbers are preserved from this stream so provenance stays
        intact.
        """
        def generate() -> Iterator[Event]:
            for event in self:
                if predicate(event):
                    yield event
        return EventStream(generate(), name=f"{self.name}/filtered",
                           validate=False)

    def of_types(self, *types: str) -> "EventStream":
        """A derived stream restricted to the given event types."""
        wanted = frozenset(types)
        return self.filter(lambda event: event.type in wanted)


def merge_streams(*streams: Iterable[Event],
                  name: str = "merged") -> EventStream:
    """Merge several time-ordered event sources into one ordered stream.

    Ties across sources are broken by source position (earlier argument
    first), which keeps merging deterministic.
    """
    def decorate(index: int,
                 stream: Iterable[Event]) -> Iterator[tuple]:
        # heapq.merge needs a total order; (timestamp, source index, counter)
        # avoids ever comparing Event objects.  The index is bound eagerly
        # as a parameter: a generator expression closing over the loop
        # variable would see its final value for every source, breaking
        # cross-source ties by per-source position instead.
        for position, event in enumerate(stream):
            yield (event.timestamp, index, position), event

    def generate() -> Iterator[Event]:
        decorated = [decorate(index, stream)
                     for index, stream in enumerate(streams)]
        for _, event in heapq.merge(*decorated, key=lambda pair: pair[0]):
            yield event

    return EventStream(generate(), name=name)
