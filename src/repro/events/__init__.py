"""Event model: attributes, schemas, events, and timestamped streams.

This package provides the data model that every other layer builds on.  An
:class:`~repro.events.model.EventSchema` declares the typed attributes of one
event type; a :class:`~repro.events.model.SchemaRegistry` holds the schemas a
query is compiled against; an :class:`~repro.events.event.Event` is one
timestamped occurrence; and :class:`~repro.events.stream.EventStream` wraps an
iterable of events with ordering validation and arrival sequencing.
"""

from repro.events.event import CompositeEvent, Event
from repro.events.model import (
    AttributeSpec,
    AttributeType,
    EventSchema,
    SchemaRegistry,
)
from repro.events.stream import EventStream, merge_streams

__all__ = [
    "AttributeSpec",
    "AttributeType",
    "CompositeEvent",
    "Event",
    "EventSchema",
    "EventStream",
    "SchemaRegistry",
    "merge_streams",
]
