"""Event instances: primitive events and composite (derived) events.

An :class:`Event` is one timestamped occurrence of a registered event type.
Timestamps are numbers in logical time units; the Time Conversion layer
(Section 3) assigns them, and by convention one unit is one second.  ``seq``
is the arrival sequence number assigned by the stream and is used to break
timestamp ties deterministically.

A :class:`CompositeEvent` is the output of the event matching block: the
paper's "stream of new composite events" produced by EVENT/WHERE/WITHIN and
shaped by RETURN.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import SchemaError
from repro.events.model import EventSchema


class Event:
    """One primitive event on a stream.

    Events are immutable after construction.  Attribute values are reachable
    both through :meth:`get` and through indexing (``event["TagId"]``).
    """

    __slots__ = ("type", "timestamp", "attributes", "seq")

    def __init__(self, type: str, timestamp: float,
                 attributes: Mapping[str, Any] | None = None,
                 seq: int = -1):
        object.__setattr__(self, "type", type)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "attributes",
                           dict(attributes) if attributes else {})
        object.__setattr__(self, "seq", seq)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Event instances are immutable")

    @classmethod
    def _restore(cls, type: str, timestamp: float, attributes: dict,
                 seq: int) -> "Event":
        """Trusted rebuild for deserializers that already own a fresh
        ``attributes`` dict: skips the defensive copy ``__init__`` makes
        (the shard transport decodes thousands of events per second, and
        the copy is pure waste when the dict was just unmarshalled)."""
        event = object.__new__(cls)
        setter = object.__setattr__
        setter(event, "type", type)
        setter(event, "timestamp", timestamp)
        setter(event, "attributes", attributes)
        setter(event, "seq", seq)
        return event

    def __reduce__(self):
        # Immutability blocks pickle's default slot restoration (it goes
        # through setattr); rebuild through the constructor instead so
        # events can cross process boundaries (sharded execution).
        return (Event, (self.type, self.timestamp, self.attributes,
                        self.seq))

    def with_seq(self, seq: int) -> "Event":
        """Return a copy of this event carrying arrival number *seq*."""
        return Event(self.type, self.timestamp, self.attributes, seq)

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self.attributes[attribute]
        except KeyError:
            raise SchemaError(
                f"event of type {self.type!r} has no attribute "
                f"{attribute!r}") from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def matches_schema(self, schema: EventSchema) -> bool:
        """Return True when this event's payload satisfies *schema*."""
        if self.type != schema.name:
            return False
        try:
            schema.validate_payload(self.attributes)
        except SchemaError:
            return False
        return True

    def __repr__(self) -> str:
        attrs = ", ".join(f"{key}={value!r}"
                          for key, value in self.attributes.items())
        return f"Event({self.type}@{self.timestamp:g} {attrs})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.type == other.type
                and self.timestamp == other.timestamp
                and self.attributes == other.attributes
                and self.seq == other.seq)

    def __hash__(self) -> int:
        return hash((self.type, self.timestamp, self.seq,
                     frozenset(self.attributes.items())))


class CompositeEvent:
    """An output event produced by a SASE query.

    ``attributes`` holds the values computed by the RETURN clause (or the raw
    bindings when the query has no RETURN clause).  ``bindings`` preserves
    provenance: the pattern variable to matched event(s) mapping.  The
    timestamp of a composite event is the timestamp of the last primitive
    event in the match, and ``start`` / ``end`` give the matched interval.
    """

    __slots__ = ("type", "attributes", "bindings", "start", "end", "stream",
                 "complete")

    def __init__(self, type: str, attributes: Mapping[str, Any],
                 bindings: Mapping[str, Any], start: float, end: float,
                 stream: str | None = None):
        self.type = type
        self.attributes = dict(attributes)
        self.bindings = dict(bindings)
        self.start = start
        self.end = end
        self.stream = stream
        # Completeness flag (resilience layer): False marks a match
        # emitted in degraded mode — a shard was lost, so partner events
        # may be missing.  Deliberately excluded from ``__eq__``.
        self.complete = True

    @property
    def timestamp(self) -> float:
        return self.end

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self.attributes[attribute]
        except KeyError:
            raise SchemaError(
                f"composite event {self.type!r} has no attribute "
                f"{attribute!r}") from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def to_event(self) -> Event:
        """Project this composite event to a primitive :class:`Event` so it
        can be fed into another query (query composition over streams)."""
        payload = {key: value for key, value in self.attributes.items()
                   if isinstance(value, (int, float, str, bool))}
        return Event(self.type, self.end, payload)

    def __repr__(self) -> str:
        attrs = ", ".join(f"{key}={value!r}"
                          for key, value in self.attributes.items())
        return (f"CompositeEvent({self.type}[{self.start:g},{self.end:g}] "
                f"{attrs})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositeEvent):
            return NotImplemented
        return (self.type == other.type
                and self.attributes == other.attributes
                and self.bindings == other.bindings
                and self.start == other.start
                and self.end == other.end)
