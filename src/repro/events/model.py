"""Event schemas and the schema registry.

SASE queries are compiled against a set of event types.  Each type is
described by an :class:`EventSchema`: a name plus an ordered list of typed
attributes.  The Event Generation layer (Section 3 of the paper) produces
events "according to a pre-defined schema"; this module is that schema
machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError


class AttributeType(enum.Enum):
    """The attribute value types the engine understands."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def python_types(self) -> tuple[type, ...]:
        return _PYTHON_TYPES[self]

    def validate(self, value: Any) -> bool:
        """Return True when *value* is acceptable for this attribute type."""
        if self is AttributeType.BOOL:
            return isinstance(value, bool)
        if isinstance(value, bool):
            # bool is a subclass of int; never accept it for numeric slots.
            return False
        return isinstance(value, self.python_types)

    def coerce(self, value: Any) -> Any:
        """Coerce *value* to this type, raising :class:`SchemaError` if the
        coercion would be lossy or nonsensical."""
        if self.validate(value):
            if self is AttributeType.FLOAT and isinstance(value, int):
                return float(value)
            return value
        try:
            if self is AttributeType.INT:
                if isinstance(value, float) and value.is_integer():
                    return int(value)
                if isinstance(value, str):
                    return int(value)
            elif self is AttributeType.FLOAT:
                if isinstance(value, (int, str)):
                    return float(value)
            elif self is AttributeType.STRING:
                if isinstance(value, (int, float, bool)):
                    return str(value)
            elif self is AttributeType.BOOL:
                if isinstance(value, str):
                    lowered = value.lower()
                    if lowered in ("true", "1", "yes"):
                        return True
                    if lowered in ("false", "0", "no"):
                        return False
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.value}") from exc
        raise SchemaError(f"cannot coerce {value!r} to {self.value}")


_PYTHON_TYPES: dict[AttributeType, tuple[type, ...]] = {
    AttributeType.INT: (int,),
    AttributeType.FLOAT: (float, int),
    AttributeType.STRING: (str,),
    AttributeType.BOOL: (bool,),
}


@dataclass(frozen=True)
class AttributeSpec:
    """One typed attribute of an event schema."""

    name: str
    type: AttributeType
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise SchemaError(
                f"attribute name {self.name!r} must start with a letter")
        if self.default is not None and not self.type.validate(self.default):
            raise SchemaError(
                f"default {self.default!r} is not a valid "
                f"{self.type.value} for attribute {self.name!r}")


class EventSchema:
    """The declared shape of one event type.

    Attributes are ordered and looked up by name.  ``timestamp`` is implicit
    on every event and must not be declared as an attribute.
    """

    RESERVED = frozenset({"timestamp", "ts", "seq"})

    def __init__(self, name: str,
                 attributes: Iterable[AttributeSpec | tuple[str, AttributeType]]):
        if not name or not (name[0].isalpha() or name[0] == "_"):
            raise SchemaError(f"schema name {name!r} must start with a letter")
        self.name = name
        self._attributes: dict[str, AttributeSpec] = {}
        for spec in attributes:
            if isinstance(spec, tuple):
                spec = AttributeSpec(spec[0], spec[1])
            if spec.name.lower() in self.RESERVED:
                raise SchemaError(
                    f"attribute name {spec.name!r} is reserved in schema "
                    f"{name!r}")
            if spec.name in self._attributes:
                raise SchemaError(
                    f"duplicate attribute {spec.name!r} in schema {name!r}")
            self._attributes[spec.name] = spec

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attributes

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._attributes.values())

    def __len__(self) -> int:
        return len(self._attributes)

    def attribute(self, name: str) -> AttributeSpec:
        try:
            return self._attributes[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {name!r}; "
                f"known attributes: {', '.join(self._attributes) or '(none)'}"
            ) from None

    def validate_payload(self, payload: Mapping[str, Any],
                         coerce: bool = False) -> dict[str, Any]:
        """Validate (and optionally coerce) an attribute mapping.

        Missing attributes take their declared default; attributes without a
        default are required.  Unknown attributes are rejected.
        """
        result: dict[str, Any] = {}
        for key in payload:
            if key not in self._attributes:
                raise SchemaError(
                    f"unknown attribute {key!r} for schema {self.name!r}")
        for spec in self._attributes.values():
            if spec.name in payload:
                value = payload[spec.name]
                if coerce:
                    value = spec.type.coerce(value)
                elif not spec.type.validate(value):
                    raise SchemaError(
                        f"attribute {spec.name!r} of {self.name!r} expects "
                        f"{spec.type.value}, got {value!r}")
                elif spec.type is AttributeType.FLOAT:
                    value = float(value)
                result[spec.name] = value
            elif spec.default is not None:
                result[spec.name] = spec.default
            else:
                raise SchemaError(
                    f"missing required attribute {spec.name!r} for schema "
                    f"{self.name!r}")
        return result

    def __repr__(self) -> str:
        attrs = ", ".join(
            f"{spec.name}: {spec.type.value}" for spec in self)
        return f"EventSchema({self.name!r}, [{attrs}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSchema):
            return NotImplemented
        return (self.name == other.name
                and list(self) == list(other))

    def __hash__(self) -> int:
        return hash((self.name, tuple(self._attributes)))


class SchemaRegistry:
    """A named collection of event schemas.

    The registry is what queries are compiled against: the semantic analyzer
    resolves every event type and attribute reference through it.
    """

    def __init__(self, schemas: Iterable[EventSchema] = ()):
        self._schemas: dict[str, EventSchema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: EventSchema) -> EventSchema:
        if schema.name in self._schemas:
            raise SchemaError(f"schema {schema.name!r} is already registered")
        self._schemas[schema.name] = schema
        return schema

    def declare(self, name: str, /,
                **attributes: AttributeType) -> EventSchema:
        """Convenience: ``registry.declare("A", x=AttributeType.INT)``."""
        return self.register(EventSchema(
            name, [AttributeSpec(key, attr_type)
                   for key, attr_type in attributes.items()]))

    def get(self, name: str) -> EventSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(
                f"unknown event type {name!r}; registered types: "
                f"{', '.join(sorted(self._schemas)) or '(none)'}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[EventSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._schemas))
