"""Shared-memory ring transport for the process shard backend.

The pipe transport (``multiprocessing.Queue``) pickles every batch,
hands it to a feeder thread, and pushes it through an OS pipe — three
copies, a lock, and a thread hop per message in each direction.  E15
measured the result: the process backend ran at 0.14–0.22x of the
single-process engine.  This module replaces that path with one
single-producer/single-consumer byte ring per direction per shard,
allocated in ``multiprocessing.shared_memory``:

* **Wire format.**  Every message is one *frame* in the WAL's record
  format (:func:`repro.persist.records.frame`): an 8-byte length+CRC32
  header followed by the payload.  A reader walks intact frames with
  :func:`~repro.persist.records.iter_frames` and treats anything after
  the first bad frame as a *torn tail* — a worker SIGKILLed mid-write is
  detected and recovered exactly like a torn WAL segment (the batch
  journal replays whatever the ring lost).
* **Payload codec.**  Frame payloads are ``marshal``-encoded message
  tuples (a one-byte tag selects the codec).  Events and composite
  events are rebuilt through small deterministic encoders; ``marshal``
  round-trips ints/floats/strings exactly, so the merge output is
  bit-identical to the pipe transport.  The codec lives in
  :mod:`repro.sharding.wire` (re-exported here), shared with the TCP
  transport of :mod:`repro.sharding.remote`.
* **Pipe fallback.**  Payloads ``marshal`` cannot express (exotic
  attribute values, shipped tracer spans) or that exceed the ring
  capacity are sent on the retained ``multiprocessing.Queue`` lane; a
  tiny marker frame in the ring keeps the two lanes totally ordered.
* **Hybrid waiting.**  Ring readers park on OS primitives, not polls:
  each direction's ring carries a bare ``multiprocessing.Semaphore``
  its writer posts only when the reader advertised (via a flag byte)
  that it is parked.  The worker parks on its input ring's semaphore;
  the coordinator parks on a *response* semaphore shared by every
  shard's output ring (:func:`park_for_responses`), so one post resumes
  the drain loop no matter which worker answered — one ``sem_post`` /
  ``sem_timedwait`` pair per handoff, cheaper than a blocking queue
  ``get`` (no feeder thread, no pipe syscalls) and far cheaper than an
  ``mp.Event``, whose lock+condition stack costs several semaphore
  operations per wait.  Writers facing a full ring use
  :class:`AdaptiveWaiter` (sched-yield burst, then geometric-backoff
  sleeps), as does ``ShardBackend.wait`` on the non-ring backends.

The ring itself is a monotonic-counter SPSC queue: ``write_pos`` and
``read_pos`` only ever grow, offsets are taken modulo the capacity, and
each side writes only its own counter, after the data it covers — so a
crash mid-write never publishes a partial frame, and whatever *is*
published carries a CRC to catch the rest.

Layout of one ring segment::

    0       8       16        17         64                64+capacity
    ┌───────┬───────┬─────────┬──────────┬─────────────────┐
    │write  │read   │reader   │(reserved)│  data:           │
    │pos u64│pos u64│parked u8│          │  CRC32 frames    │
    └───────┴───────┴─────────┴──────────┴─────────────────┘
"""

from __future__ import annotations

import queue as queue_module
import struct
import time
from multiprocessing import shared_memory
from pickle import UnpicklingError

from repro.persist.records import HEADER_BYTES, iter_frames
# The payload codec and frame tags are shared with the TCP transport
# (repro.sharding.remote); they live in repro.sharding.wire and are
# re-exported here so existing importers keep working.
from repro.sharding.wire import EVENT_ENTRY as _EVENT_ENTRY  # noqa: F401
from repro.sharding.wire import PIPE_MARKER as _PIPE_MARKER
from repro.sharding.wire import TAG_MARSHAL as _TAG_MARSHAL
from repro.sharding.wire import TAG_PIPE as _TAG_PIPE
from repro.sharding.wire import WATERMARK_ENTRY as _WATERMARK_ENTRY  # noqa: F401,E501
from repro.sharding.wire import frame_message as _frame_message
from repro.sharding.wire import (  # noqa: F401
    Unencodable,
    _dec_value,
    _enc_value,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

TRANSPORTS = ("ring", "pipe")

#: Default per-direction ring capacity.  Big enough that dozens of
#: 64-event batches are in flight before the writer blocks.
DEFAULT_RING_BYTES = 1 << 20
#: Floor: a ring must hold at least a few typical frames.
MIN_RING_BYTES = 64 * 1024

# Ring header field offsets (see the layout diagram above).
_HEADER = 64
_WRITE_OFF = 0
_READ_OFF = 8
_PARKED_OFF = 16
_U64 = struct.Struct("<Q")

# Hybrid waiting knobs.  The spin budget is deliberately small: a
# sched-yield is ~1us on an idle host but can burn tens of microseconds
# on a loaded single-core one, so a handful of spins catches the
# imminent-data case and anything longer parks.
_SPIN_YIELDS = 8           # sched-yield spins before the first park
_PARK_MIN = 0.0001         # first park sleep (coordinator side)
_PARK_MAX = 0.002          # park backoff cap on the transfer path
_WORKER_PARK = 0.05        # worker semaphore-park timeout (lost-wakeup bound)
# Consecutive drains that may end in an unparsable tail before it is
# declared a torn frame (absorbs cross-arch store-visibility races).
_TORN_GRACE = 5
# How long a pipe-fallback marker may wait for its queue item while the
# worker is alive / after it died (feeder-thread flush grace).
_FALLBACK_WAIT = 5.0
_FALLBACK_DEAD_WAIT = 0.25


class AdaptiveWaiter:
    """Spin-then-park waiting: a burst of sched-yields (cheap, catches
    an imminent event with microsecond latency), then sleeps that back
    off geometrically to ``max_park`` so a long wait costs almost no
    CPU.  ``reset()`` on progress restores the spin phase."""

    __slots__ = ("spins", "min_park", "max_park", "metrics",
                 "_spun", "_delay")

    def __init__(self, spins: int = _SPIN_YIELDS,
                 min_park: float = _PARK_MIN,
                 max_park: float = _PARK_MAX, metrics=None):
        self.spins = spins
        self.min_park = min_park
        self.max_park = max_park
        self.metrics = metrics  # ShardMetrics (spin/park counters) or None
        self._spun = 0
        self._delay = min_park

    def wait(self) -> None:
        """Wait one step: yield while spinning, sleep once parked."""
        if self._spun < self.spins:
            self._spun += 1
            if self.metrics is not None:
                self.metrics.spin_waits += 1
            time.sleep(0)  # sched-yield: lets the peer run on 1 core
            return
        if self.metrics is not None:
            self.metrics.park_waits += 1
        time.sleep(self._delay)
        self._delay = min(self._delay * 2, self.max_park)

    def reset(self) -> None:
        self._spun = 0
        self._delay = self.min_park


class Ring:
    """One SPSC byte ring over a shared-memory segment.

    The writer publishes ``write_pos`` only after the bytes it covers
    are fully copied, and the reader publishes ``read_pos`` only after
    it has copied the bytes out — each position has exactly one writing
    process, so no locks are needed.
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 wake=None, owner: bool = False):
        self._shm = shm
        self._buf = shm.buf
        self.capacity = capacity
        self.wake = wake
        self._owner = owner

    @classmethod
    def create(cls, capacity: int, wake=None) -> "Ring":
        shm = shared_memory.SharedMemory(create=True,
                                         size=_HEADER + capacity)
        shm.buf[:_HEADER] = bytes(_HEADER)
        return cls(shm, capacity, wake, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int, wake=None) -> "Ring":
        # Attaching re-registers the name with the resource tracker
        # (bpo-39959), but on POSIX every child shares the parent's
        # tracker process and its cache is a per-name set, so the
        # duplicate is a no-op.  Crucially we must NOT unregister here:
        # that would erase the owner's registration, and the owner's
        # unlink-time unregister would then crash inside the shared
        # tracker (a KeyError traceback on stderr at every shutdown).
        return cls(shared_memory.SharedMemory(name=name), capacity,
                   wake)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- positions -----------------------------------------------------------

    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def pending_bytes(self) -> int:
        """Bytes published but not yet consumed."""
        return self._load(_WRITE_OFF) - self._load(_READ_OFF)

    # -- writer side ---------------------------------------------------------

    def try_write(self, data: bytes) -> bool:
        """Copy *data* in whole, or nothing: False when the free space
        is short.  Publishes ``write_pos`` only after the copy, so a
        reader never observes a partial write from a live writer."""
        need = len(data)
        write = self._load(_WRITE_OFF)
        if self.capacity - (write - self._load(_READ_OFF)) < need:
            return False
        position = write % self.capacity
        first = min(need, self.capacity - position)
        start = _HEADER + position
        self._buf[start:start + first] = data[:first]
        if first < need:
            self._buf[_HEADER:_HEADER + need - first] = data[first:]
        self._store(_WRITE_OFF, write + need)
        self._wake_reader()
        return True

    def _wake_reader(self) -> None:
        if self.wake is not None and self._buf[_PARKED_OFF]:
            self._buf[_PARKED_OFF] = 0
            self.wake.release()

    # -- reader side ---------------------------------------------------------

    def snapshot(self) -> bytes:
        """Copy out every published-but-unconsumed byte (no consume)."""
        read = self._load(_READ_OFF)
        available = self._load(_WRITE_OFF) - read
        if not available:
            return b""
        position = read % self.capacity
        first = min(available, self.capacity - position)
        start = _HEADER + position
        data = bytes(self._buf[start:start + first])
        if first < available:
            data += bytes(self._buf[_HEADER:_HEADER + available - first])
        return data

    def consume(self, count: int) -> None:
        self._store(_READ_OFF, self._load(_READ_OFF) + count)

    def park(self, timeout: float) -> None:
        """Reader park: advertise, re-check, then block on the wake
        semaphore the writer posts for parked readers.  The timeout
        bounds the one unavoidable lost-wakeup race to a single park
        period, and a stale post from a race the re-check already won
        only makes the next park return early — the reader re-polls."""
        self._buf[_PARKED_OFF] = 1
        if self.pending_bytes():
            self._buf[_PARKED_OFF] = 0
            return
        self.wake.acquire(True, timeout)
        self._buf[_PARKED_OFF] = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._buf.release()
        except Exception:  # pragma: no cover - already released
            pass
        try:
            self._shm.close()
        except Exception:  # pragma: no cover
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass


# -- endpoints ----------------------------------------------------------------

class RingTorn(Exception):
    """The peer's ring holds a torn or corrupt frame (crash debris)."""


class ChannelHandles:
    """Picklable descriptor a spawned worker uses to attach the rings."""

    __slots__ = ("in_name", "out_name", "capacity", "wake",
                 "response_wake")

    def __init__(self, in_name: str, out_name: str, capacity: int,
                 wake, response_wake):
        self.in_name = in_name
        self.out_name = out_name
        self.capacity = capacity
        self.wake = wake
        self.response_wake = response_wake

    def connect(self, in_queue, out_queue) -> "WorkerChannel":
        in_ring = Ring.attach(self.in_name, self.capacity,
                              self.wake)
        out_ring = Ring.attach(self.out_name, self.capacity,
                               self.response_wake)
        return WorkerChannel(in_ring, out_ring, in_queue, out_queue)


class CoordinatorChannel:
    """Coordinator-side endpoint of one shard's ring pair.

    Owns the shared-memory segments (created here, unlinked on close)
    and the fallback queues.  ``metrics`` is the shard's
    :class:`~repro.system.metrics.ShardMetrics` (or None): frames,
    bytes, fallbacks, and spin/park waits are counted as they happen.
    """

    def __init__(self, context, capacity: int, metrics=None,
                 response_wake=None):
        self.capacity = capacity
        self.metrics = metrics
        wake = context.Semaphore(0)
        # The response event may be shared across many channels (the
        # ring backend passes one event for all shards, so a single
        # park covers every worker); a standalone channel gets its own.
        if response_wake is None:
            response_wake = context.Semaphore(0)
        self.in_ring = Ring.create(capacity, wake)
        self.out_ring = Ring.create(capacity, response_wake)
        # Fallback lanes.  Unbounded on purpose: ordering and
        # backpressure both live in the ring (every fallback message is
        # preceded by a marker frame that occupies ring space).
        self.in_queue = context.Queue()
        self.out_queue = context.Queue()
        self._waiter = AdaptiveWaiter(metrics=metrics)
        self._torn_grace = 0
        # Decoded responses handed back by the caller (their ring bytes
        # are consumed, so this list is the only place they live).
        self._requeued: list[tuple] = []

    def handles(self) -> ChannelHandles:
        return ChannelHandles(self.in_ring.name, self.out_ring.name,
                              self.capacity, self.in_ring.wake,
                              self.out_ring.wake)

    def wait_response(self, timeout: float) -> None:
        """Park until the worker publishes a response (or *timeout*).
        Wakes instantly when data is already pending or was requeued."""
        if self._requeued:
            return
        self.out_ring.park(timeout)

    # -- sending -------------------------------------------------------------

    def put(self, message: tuple, timeout: float | None) -> None:
        """Send one message.  ``timeout=None`` is a non-blocking
        attempt; both variants raise ``queue.Full`` when the ring has no
        room (backpressure, exactly like the bounded pipe queues)."""
        payload = encode_request(message)
        framed = _frame_message(payload) if payload is not None else None
        metrics = self.metrics
        if framed is None or len(framed) > self.capacity:
            # Odd or oversized payload: marker first (it carries the
            # backpressure and keeps both lanes totally ordered), then
            # the message itself on the queue lane.
            self._write(_PIPE_MARKER, timeout)
            self.in_queue.put(message)
            if metrics is not None:
                metrics.pipe_fallbacks += 1
            return
        self._write(framed, timeout)
        if metrics is not None:
            metrics.ring_frames_sent += 1
            metrics.ring_bytes_sent += len(framed)

    def _write(self, data: bytes, timeout: float | None) -> None:
        if self.in_ring.try_write(data):
            return
        if timeout is None:
            raise queue_module.Full
        deadline = time.monotonic() + timeout
        waiter = self._waiter
        waiter.reset()
        while True:
            if self.in_ring.try_write(data):
                return
            if time.monotonic() > deadline:
                raise queue_module.Full
            waiter.wait()

    # -- receiving -----------------------------------------------------------

    def drain(self, alive=None) -> list[tuple]:
        """Decode every complete response currently in the out ring.

        Raises :class:`RingTorn` on crash debris — a torn or corrupt
        frame, or a fallback marker whose queue item never arrives from
        a dead worker.  Genuine decode errors (a codec bug) propagate
        as-is; they must fail loudly, not masquerade as a crash."""
        messages: list[tuple] = self._requeued
        self._requeued = []
        ring = self.out_ring
        data = ring.snapshot()
        if not data:
            return messages
        metrics = self.metrics
        consumed = 0
        torn = False
        for offset, payload in iter_frames(data):
            consumed = offset + HEADER_BYTES + len(payload)
            tag = payload[0] if payload else -1
            if tag == _TAG_MARSHAL:
                messages.append(decode_response(payload[1:]))
                if metrics is not None:
                    metrics.ring_frames_received += 1
                    metrics.ring_bytes_received += \
                        HEADER_BYTES + len(payload)
            elif tag == _TAG_PIPE:
                fetched = self._pipe_get(alive)
                if fetched is None:
                    torn = True
                    break
                messages.append(fetched)
                if metrics is not None:
                    metrics.pipe_fallbacks += 1
            else:
                torn = True  # unknown tag: garbage that passed its CRC
                break
        if consumed:
            ring.consume(consumed)
        if not torn and consumed < len(data):
            # Unparsable tail.  The writer publishes only whole frames,
            # so this is a torn frame — except for a sub-microsecond
            # store-visibility window on weakly-ordered hosts, which a
            # few polls' grace absorbs.
            self._torn_grace += 1
            torn = self._torn_grace >= _TORN_GRACE
        else:
            self._torn_grace = 0
        if torn:
            raise RingTorn(
                f"torn frame at ring offset {consumed} "
                f"({len(data) - consumed} trailing byte(s))")
        return messages

    def requeue(self, messages: list[tuple]) -> None:
        """Hand decoded messages back; the next :meth:`drain` returns
        them first.  Used when a caller must abort mid-list (a worker
        error report raises) without losing the responses behind it."""
        self._requeued = list(messages) + self._requeued

    def _pipe_get(self, alive):
        """Fetch the message a marker frame promised.  The worker puts
        the item *after* the marker, and its queue feeder thread adds
        latency, so a short wait is normal; a dead worker gets a grace
        period for the feeder flush and is then treated as torn."""
        deadline = time.monotonic() + _FALLBACK_WAIT
        dead_at = None
        while True:
            try:
                return self.out_queue.get_nowait()
            except queue_module.Empty:
                pass
            except (OSError, EOFError, UnpicklingError):
                return None
            now = time.monotonic()
            if alive is not None and not alive():
                if dead_at is None:
                    dead_at = now + _FALLBACK_DEAD_WAIT
                elif now > dead_at:
                    return None
            if now > deadline:
                return None
            time.sleep(0.0005)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for a_queue in (self.in_queue, self.out_queue):
            try:
                a_queue.cancel_join_thread()
                a_queue.close()
            except Exception:  # pragma: no cover - already closed
                pass
        self.in_ring.close()
        self.out_ring.close()


class WorkerChannel:
    """Worker-side endpoint: blocking ``get`` / ``put`` over the rings
    with the fallback queues resolved transparently."""

    def __init__(self, in_ring: Ring, out_ring: Ring, in_queue,
                 out_queue):
        self.in_ring = in_ring
        self.out_ring = out_ring
        self.in_queue = in_queue
        self.out_queue = out_queue
        self._pending: list[tuple] = []
        self._next = 0
        self._torn_grace = 0
        self._writer = AdaptiveWaiter()

    def get(self) -> tuple:
        """Block until the next message: park on the Event the
        coordinator sets for parked readers.  Parking immediately (no
        sched-yield spin) matters: a yield syscall can burn tens of
        microseconds on a busy single-core host, while the event wakeup
        is one semaphore post — and when the stream is flowing the ring
        already holds the next batch, so ``_fill`` wins without either.
        Raises ``EOFError`` on a torn input ring (the coordinator died
        mid-write; the worker dies quietly and is restarted)."""
        if self._next < len(self._pending):
            message = self._pending[self._next]
            self._next += 1
            return message
        self._pending.clear()
        self._next = 0
        while True:
            if self._fill():
                message = self._pending[self._next]
                self._next += 1
                return message
            self.in_ring.park(_WORKER_PARK)

    def _fill(self) -> bool:
        ring = self.in_ring
        data = ring.snapshot()
        if not data:
            return False
        consumed = 0
        for offset, payload in iter_frames(data):
            consumed = offset + HEADER_BYTES + len(payload)
            tag = payload[0] if payload else -1
            if tag == _TAG_MARSHAL:
                self._pending.append(decode_request(payload[1:]))
            elif tag == _TAG_PIPE:
                self._pending.append(self.in_queue.get())
            else:
                raise EOFError("torn frame on the input ring")
        if consumed:
            ring.consume(consumed)
        if consumed < len(data):
            self._torn_grace += 1
            if self._torn_grace >= _TORN_GRACE:
                raise EOFError("torn frame on the input ring")
            time.sleep(0.0002)
        else:
            self._torn_grace = 0
        return bool(self._pending)

    def put(self, message: tuple) -> None:
        payload = encode_response(message)
        framed = _frame_message(payload) if payload is not None else None
        if framed is None or len(framed) > self.out_ring.capacity:
            self._write(_PIPE_MARKER)
            self.out_queue.put(message)
            return
        self._write(framed)

    def _write(self, data: bytes) -> None:
        waiter = self._writer
        waiter.reset()
        while not self.out_ring.try_write(data):
            # A dead coordinator never drains the ring; the worker is a
            # daemon child and dies with the session, so an unbounded
            # wait here cannot leak past the run.
            waiter.wait()

    def close(self) -> None:
        self.in_ring.close()
        self.out_ring.close()


def park_for_responses(channels, timeout: float) -> None:
    """Park the coordinator across several shards' response rings.

    Requires every channel to share one response event (the ring backend
    constructs them that way): each ring's parked flag is raised, every
    ring is re-checked for pending bytes, and only then does the
    coordinator sleep on the event — any worker that publishes a frame
    while a flag is up sets the event, so one semaphore wakeup resumes
    the drain loop regardless of which shard answered.  The timeout
    bounds the lost-wakeup race exactly like :meth:`Ring.park`."""
    rings = [channel.out_ring for channel in channels
             if channel is not None]
    if not rings:
        time.sleep(timeout)
        return
    for ring in rings:
        ring._buf[_PARKED_OFF] = 1
    if not any(ring.pending_bytes() for ring in rings):
        rings[0].wake.acquire(True, timeout)
    for ring in rings:
        ring._buf[_PARKED_OFF] = 0
