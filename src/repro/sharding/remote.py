"""Remote shard tier: worker daemons over TCP, speaking the ring wire
format.

This is the distributed half of the shard runtime: the router connects
to N worker endpoints (``--shard-backend remote --shard-workers
host:port,...``), and every batch crosses the socket as one frame in
the WAL's CRC32 record format — the exact bytes the shared-memory ring
transport carries, produced by the shared codec in
:mod:`repro.sharding.wire`.

The backend preserves everything the local backends guarantee:

* **Deterministic merge.**  Workers tag results with the same
  ``(seq, rank, kind, end, idx)`` coordinates, so the router's
  seq-aligned merge emits output bit-identical to single-process —
  including watermark-released trailing-negation matches.
* **Credit-based backpressure.**  The local bounded queue becomes a
  per-connection credit count: at most ``queue_capacity`` unacked
  batches may be in flight per worker; an exhausted connection raises
  ``queue.Full`` exactly like a full bounded queue, so the base
  stall/hang ladder is reused unchanged.
* **Heartbeats.**  An idle coordinator pings each worker; a missing
  pong within the hang budget fails the shard over through the same
  :class:`~repro.resilience.ShardSupervisor` breaker ladder as a local
  hang.  Pong round-trips feed the per-connection RTT metrics.
* **Reconnect with journal replay.**  Every batch is journaled; a
  worker death (socket EOF, send error, corrupt frame, heartbeat
  timeout) tears the connection down and reconnects — on a jittered
  exponential backoff ladder (:func:`repro.resilience.retry
  .retry_call`) bounded by the connect budget — with a bumped
  incarnation, replaying the journal into the fresh worker core;
  duplicate responses are suppressed by the coordinator's outstanding
  set, so results stay exactly-once.  A link that stays down past the
  budget degrades the shard as *partitioned*: the same breaker ladder
  and lost-window accounting as a crash, surfaced as ``partition``
  faults and ``complete=False`` results.  Endpoints on a local host
  that nothing listens on are *owned*: the coordinator spawns ``repro
  worker`` subprocesses for them and respawns on death (supervised
  respawn).  Endpoints something already listens on are *external*:
  worker loss is handled by reconnecting until the daemon re-accepts
  (passive re-accept), never by spawning.

A worker daemon (``repro worker --port P --shard-secret ...``) serves
one coordinator session at a time and rebuilds a fresh
:class:`~repro.sharding.worker.ShardWorkerCore` from the ``spec``
frame of every new session — mandatory for replay correctness: a stale
core would double-produce.

**Security model.**  Every session starts with a mutual HMAC-SHA256
challenge–response handshake (:func:`repro.sharding.wire.auth_proof`)
keyed by a shared secret that both sides load out-of-band
(``--shard-secret``, literal / ``env:NAME`` / ``file:PATH``), plus
explicit protocol-version negotiation.  The coordinator proves first,
so an unauthenticated peer learns nothing but a nonce; a wrong secret
or version mismatch is answered with a typed ``reject`` and the
connection is closed before any spec frame is decoded.  The only
pickle left on the wire is the post-auth ``WorkerSpec`` frame, decoded
through a closed class allowlist — no frame either side reads can make
it deserialize arbitrary code.  What this does *not* provide:
transport encryption or integrity against an active man-in-the-middle
(frames are CRC-checked, not MACed).  Run the tier over a trusted or
tunneled network when the links themselves are hostile; the handshake
protects against untrusted *peers*, not untrusted *wires*.

For fault testing, the ``net.*`` chaos sites wrap either side's socket
in a deterministic fault injector (:class:`ChaosSocket`): delayed and
trickled delivery, flipped bytes (caught by the CRC framing), severed
connections, and timed partitions, all seeded per scope and
incarnation so chaos runs converge byte-identically after reconnect
and journal replay.
"""

from __future__ import annotations

import contextlib
import hmac
import os
import queue as queue_module
import select
import socket
import subprocess
import sys
import time
import traceback

from repro.errors import SaseError
from repro.resilience.chaos import ChaosConfig, FaultInjector
from repro.resilience.retry import retry_call
from repro.sharding.backends import _STOP_JOIN_TIMEOUT, \
    _WAIT_PARK_MAX, _BoundedChannelBackend
from repro.sharding.wire import MAX_RECORD_BYTES, PROTOCOL_VERSION, \
    FrameBuffer, Unencodable, WireCorrupt, auth_proof, decode_request, \
    decode_response, encode_request, encode_response, pack_message, \
    pack_spec, unpack_payload
from repro.sharding.worker import ShardWorkerCore, _build_injector, \
    _inject_worker_fault

_LOCAL_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})
_RECV_BYTES = 1 << 16
#: One TCP connect attempt / whole-reconnect-ladder cap.
_CONNECT_TIMEOUT = 1.0
_CONNECT_BUDGET = 15.0
#: Reconnect backoff ladder: full jitter over an exponential cap
#: (5 ms, 10 ms, ... capped at 250 ms) until the budget runs out.
_CONNECT_BASE_DELAY = 0.005
_CONNECT_MAX_DELAY = 0.25
#: A sendall stalled this long means the worker stopped reading with
#: only ``queue_capacity`` small batches in flight: treat as wedged.
_SEND_TIMEOUT = 5.0
#: select() granularity while blocked waiting for credits to free.
_CREDIT_TICK = 0.005
#: Idle gap after which the coordinator pings a connection, and the
#: pong deadline when no supervisor supplies a hang budget.
_HEARTBEAT_INTERVAL = 0.5
_HEARTBEAT_TIMEOUT = 10.0
#: Handshake hardening: a peer gets this long and this many buffered
#: bytes to authenticate; until it does, no frame larger than a
#: handshake message is even buffered.
_HANDSHAKE_TIMEOUT = 5.0
_HANDSHAKE_MAX_BYTES = 4096
_NONCE_BYTES = 16
#: Environment variable owned coordinator-spawned workers read their
#: secret from (never the command line: argv is world-readable).
_SECRET_ENV = "SASE_SHARD_SECRET"

#: Exceptions that mean "this handshake died, not this configuration":
#: timeouts, resets, torn frames, marshal garbage.  Anything else
#: (a typed reject, a bad proof) is deterministic and must not retry.
_HANDSHAKE_TRANSIENT = (OSError, EOFError, WireCorrupt, ValueError,
                        TypeError, IndexError)


# -- endpoint parsing ---------------------------------------------------------

def parse_endpoint(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)``; :class:`SaseError` on garbage."""
    host, sep, port_text = text.strip().rpartition(":")
    if not sep or not host:
        raise SaseError(
            f"worker endpoint {text.strip()!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise SaseError(
            f"worker endpoint {text.strip()!r} has a non-numeric "
            f"port") from None
    if not 1 <= port <= 65535:
        raise SaseError(
            f"worker endpoint {text.strip()!r}: port must be 1-65535")
    return host, port


def parse_endpoints(spec: str) -> tuple[str, ...]:
    """Validate a comma-separated ``--shard-workers`` list eagerly —
    before anything is spawned or connected — and return the
    normalized ``host:port`` strings."""
    if not spec or not spec.strip():
        raise SaseError("--shard-workers needs at least one host:port")
    endpoints = []
    for part in spec.split(","):
        if not part.strip():
            raise SaseError(
                f"empty worker endpoint in {spec!r}")
        host, port = parse_endpoint(part)
        endpoints.append(f"{host}:{port}")
    return tuple(endpoints)


def _is_local(host: str) -> bool:
    return host in _LOCAL_HOSTS


# -- shared secret ------------------------------------------------------------

def resolve_secret(spec: str | None) -> bytes:
    """Resolve a ``--shard-secret`` spec to key bytes, eagerly.

    Three forms: a literal (fine for tests, visible in argv),
    ``env:NAME`` (read from the environment), ``file:PATH`` (read from
    a file, surrounding whitespace stripped — the recommended way to
    distribute the secret).  Empty or unresolvable specs raise
    :class:`SaseError` so misconfiguration fails before anything is
    spawned or connected."""
    if spec is None or not spec.strip():
        raise SaseError("--shard-secret must not be empty")
    if spec.startswith("env:"):
        name = spec[4:]
        value = os.environ.get(name, "")
        if not value:
            raise SaseError(
                f"--shard-secret env:{name}: environment variable is "
                f"unset or empty")
        return value.encode("utf-8", "surrogateescape")
    if spec.startswith("file:"):
        path = spec[5:]
        try:
            with open(path, "rb") as handle:
                data = handle.read().strip()
        except OSError as error:
            raise SaseError(
                f"--shard-secret file:{path}: {error}") from None
        if not data:
            raise SaseError(f"--shard-secret file:{path}: file is empty")
        return data
    return spec.encode("utf-8", "surrogateescape")


# -- network chaos ------------------------------------------------------------

class ChaosSocket:
    """Deterministic fault-injecting wrapper around a connected socket.

    Applies the armed ``net.*`` sites of a :class:`FaultInjector` to
    the send and receive paths; everything else (``fileno`` for
    ``select``, ``settimeout``, ``close``...) delegates to the wrapped
    socket, so both the coordinator's :class:`RemoteConnection` and the
    worker daemon's session loop can use one transparently.  Injected
    failures surface as ordinary ``OSError`` / torn frames, so they
    exercise exactly the recovery paths a real flaky network would.
    """

    __slots__ = ("_sock", "_injector", "_on_partition")

    def __init__(self, sock, injector: FaultInjector, on_partition=None):
        self._sock = sock
        self._injector = injector
        self._on_partition = on_partition

    def __getattr__(self, name):
        return getattr(self._sock, name)

    def _sever(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.close()

    def sendall(self, data):
        injector = self._injector
        if injector.trip("net.delay"):
            time.sleep(injector.param("net.delay", 0.002))
        if injector.trip("net.partition"):
            hold = injector.param("net.partition", 0.5)
            self._sever()
            if self._on_partition is not None:
                self._on_partition(hold)
            raise OSError(
                f"chaos[{injector.scope}]: injected net.partition")
        if injector.trip("net.drop_conn"):
            self._sever()
            raise OSError(
                f"chaos[{injector.scope}]: injected net.drop_conn")
        if injector.trip("net.corrupt"):
            # Flip one byte mid-frame: the CRC32 framing must catch it
            # and fail the connection over, never decode garbage.
            mangled = bytearray(data)
            if mangled:
                mangled[injector.rng.randrange(len(mangled))] ^= 0xFF
            data = bytes(mangled)
        return self._sock.sendall(data)

    def recv(self, bufsize):
        injector = self._injector
        if injector.trip("net.slow_read"):
            time.sleep(injector.param("net.slow_read", 0.001))
            bufsize = min(bufsize, 256)
        return self._sock.recv(bufsize)


# -- worker daemon ------------------------------------------------------------

class WorkerDaemon:
    """The ``repro worker`` server: accepts one coordinator session at
    a time and runs the shard worker loop over the framed socket.

    Every accepted connection must complete the authenticated
    handshake before anything else: until it does, the peer is served
    with a short timeout and a tiny frame cap, and a failed or garbled
    handshake drops the connection without ever decoding a spec frame.
    The session proper then starts from nothing: the coordinator's
    ``("spec", shard, spec, incarnation)`` frame builds a fresh
    :class:`ShardWorkerCore`, so a reconnect after a coordinator-side
    failover always replays into clean state.  When a session ends
    (``stop``, disconnect, or a reported error) the daemon loops back
    to ``accept`` — that re-accept is what the coordinator's passive
    reconnect relies on — unless constructed with ``once=True``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 once: bool = False, secret: bytes = b"",
                 chaos: str | None = None, chaos_seed: int = 0):
        if not secret:
            raise SaseError("worker daemon needs a shared secret "
                            "(--shard-secret)")
        self.host = host
        self.port = port
        self.once = once
        self._secret = secret
        self._chaos = ChaosConfig.parse(chaos, chaos_seed) \
            if chaos else None
        self._listener: socket.socket | None = None
        self._sessions = 0
        #: Connections dropped for a failed proof (observable by tests
        #: and operators; the coordinator counts its own side).
        self.auth_failures = 0

    def bind(self) -> int:
        """Bind and listen; returns the bound port (for ``port=0``)."""
        family = socket.AF_INET6 if ":" in self.host else socket.AF_INET
        listener = socket.socket(family, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(4)
        self.port = listener.getsockname()[1]
        self._listener = listener
        return self.port

    def serve(self) -> None:
        """Accept-and-serve until :meth:`shutdown` (or forever)."""
        if self._listener is None:
            self.bind()
        listener = self._listener
        try:
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return  # listener closed by shutdown()
                try:
                    self._serve_connection(conn)
                finally:
                    with contextlib.suppress(OSError):
                        conn.close()
                if self.once:
                    return
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Close the listener; an in-flight ``serve`` returns at its
        next ``accept``.  Safe to call from another thread."""
        listener, self._listener = self._listener, None
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()

    def _read_handshake(self, conn: socket.socket,
                        buffer: FrameBuffer) -> tuple:
        """One blocking handshake message.  The coordinator never
        pipelines during the handshake, so more than one frame per
        read is a protocol violation, not a race."""
        while True:
            data = conn.recv(_RECV_BYTES)
            if not data:
                raise EOFError("peer closed during handshake")
            payloads = buffer.feed(data)
            if not payloads:
                continue
            if len(payloads) > 1:
                raise WireCorrupt("pipelined handshake frames")
            return unpack_payload(payloads[0], decode_request)

    def _handshake(self, conn: socket.socket,
                   buffer: FrameBuffer) -> bool:
        """Version negotiation + mutual proof.  True to start the
        session; False (after a best-effort typed ``reject`` where one
        applies) to drop the connection and re-accept."""

        def reply(message: tuple) -> None:
            conn.sendall(pack_message(message, encode_response))

        def reject(code: str, detail: str) -> bool:
            with contextlib.suppress(OSError):
                reply(("reject", code, detail))
            return False

        conn.settimeout(_HANDSHAKE_TIMEOUT)
        try:
            hello = self._read_handshake(conn, buffer)
            if not (isinstance(hello, tuple) and len(hello) == 3
                    and hello[0] == "hello"):
                return reject("protocol", "expected hello")
            version, coord_nonce = hello[1], hello[2]
            if version != PROTOCOL_VERSION:
                return reject(
                    "version",
                    f"worker speaks shard protocol {PROTOCOL_VERSION}, "
                    f"peer sent {version!r}")
            if not isinstance(coord_nonce, bytes) \
                    or len(coord_nonce) < _NONCE_BYTES:
                return reject("protocol", "bad hello nonce")
            worker_nonce = os.urandom(_NONCE_BYTES)
            reply(("challenge", PROTOCOL_VERSION, worker_nonce))
            auth = self._read_handshake(conn, buffer)
            if not (isinstance(auth, tuple) and len(auth) == 2
                    and auth[0] == "auth"):
                return reject("protocol", "expected auth proof")
            expected = auth_proof(self._secret, b"coordinator",
                                  coord_nonce, worker_nonce)
            if not (isinstance(auth[1], bytes)
                    and hmac.compare_digest(auth[1], expected)):
                self.auth_failures += 1
                return reject("auth", "coordinator proof does not "
                                      "match the shared secret")
            reply(("welcome", auth_proof(self._secret, b"worker",
                                         coord_nonce, worker_nonce)))
        except _HANDSHAKE_TRANSIENT:
            return False  # garbage, timeout, or torn link: drop
        conn.settimeout(None)
        buffer.max_frame = MAX_RECORD_BYTES
        return True

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sessions += 1
        buffer = FrameBuffer(_HANDSHAKE_MAX_BYTES)
        if not self._handshake(conn, buffer):
            return
        sock = conn
        if self._chaos is not None and self._chaos.armed("net."):
            # Armed only after the handshake, so an injected fault can
            # never masquerade as an authentication failure.
            sock = ChaosSocket(conn, FaultInjector(
                self._chaos, scope=f"net-worker-{self.port}",
                incarnation=self._sessions - 1))
        core: ShardWorkerCore | None = None
        injector = None
        shard_id = -1
        context: tuple | None = None

        def put(message: tuple) -> None:
            sock.sendall(pack_message(message, encode_response))

        try:
            while True:
                data = sock.recv(_RECV_BYTES)
                if not data:
                    return  # coordinator went away; re-accept
                for payload in buffer.feed(data):
                    message = unpack_payload(payload, decode_request,
                                             allow_spec=True)
                    opcode = message[0]
                    context = None
                    if opcode == "batch":
                        _, batch_id, entries = message
                        context = ("batch", batch_id)
                        if injector is not None:
                            _inject_worker_fault(injector, "process")
                        tagged, delta, spans = \
                            core.process_batch(entries)
                        put(("batch", shard_id, batch_id, tagged,
                             delta, spans))
                    elif opcode == "flush":
                        _, flush_id = message
                        context = ("flush", flush_id)
                        tagged, delta, spans = core.flush()
                        put(("flush", shard_id, flush_id, tagged,
                             delta, spans))
                    elif opcode == "ping":
                        put(("pong", shard_id, message[1]))
                    elif opcode == "spec":
                        _, shard_id, spec, incarnation = message
                        core = ShardWorkerCore(shard_id, spec)
                        injector = _build_injector(shard_id, spec,
                                                   incarnation)
                    elif opcode == "stop":
                        return
        except (OSError, WireCorrupt, EOFError):
            return  # connection-fatal: drop and re-accept
        except Exception:
            # Report like process_worker_main, then end the session —
            # the coordinator retires the named request's bookkeeping,
            # raises, and a fresh session starts from a fresh core.
            with contextlib.suppress(OSError, Unencodable):
                put(("error", shard_id, context,
                     traceback.format_exc()))


def run_worker(host: str, port: int, once: bool = False, out=None,
               secret: bytes = b"", chaos: str | None = None,
               chaos_seed: int = 0) -> None:
    """CLI entry: bind, announce readiness, serve."""
    daemon = WorkerDaemon(host, port, once=once, secret=secret,
                          chaos=chaos, chaos_seed=chaos_seed)
    bound = daemon.bind()
    if out is not None:
        print(f"worker listening on {host}:{bound}", file=out,
              flush=True)
    daemon.serve()


# -- coordinator side ---------------------------------------------------------

class _ConnectionLost(Exception):
    """A send hit a dead socket; the caller fails the shard over."""


class RemoteConnection:
    """One coordinator→worker TCP session plus its credit and
    heartbeat state.  Starts with the handshake frame cap; the
    coordinator raises it once the peer has proven itself."""

    __slots__ = ("sock", "buffer", "dead", "inflight", "last_recv",
                 "ping_token", "ping_sent_at", "_next_token")

    def __init__(self, sock):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_SEND_TIMEOUT)
        self.sock = sock
        self.buffer = FrameBuffer(_HANDSHAKE_MAX_BYTES)
        self.dead = False
        self.inflight = 0          # unacked batch/flush credits in use
        self.last_recv = time.monotonic()
        self.ping_token: int | None = None
        self.ping_sent_at: float | None = None
        self._next_token = 0

    def _sendall(self, data: bytes, metrics=None) -> None:
        try:
            self.sock.sendall(data)
        except OSError as error:
            self.dead = True
            raise _ConnectionLost(str(error)) from None
        if metrics is not None:
            metrics.remote_bytes_sent += len(data)

    def send(self, message: tuple, metrics=None) -> None:
        """Frame and send one message; marks the connection dead (and
        raises :class:`_ConnectionLost`) on any socket failure —
        including a stalled ``sendall``, which with the credit bound in
        place means the worker stopped reading."""
        self._sendall(pack_message(message, encode_request), metrics)

    def send_spec(self, message: tuple, metrics=None) -> None:
        """Send the one restricted-pickle frame of the protocol: the
        post-auth ``("spec", ...)`` worker-core handshake."""
        self._sendall(pack_spec(message), metrics)

    def receive(self, metrics=None) -> list[tuple]:
        """Decode every message currently readable (non-blocking).
        Socket errors, EOF, and corrupt frames mark the connection
        dead; the partial tail of a torn session dies with it."""
        messages: list[tuple] = []
        while not self.dead:
            try:
                readable, _, _ = select.select([self.sock], [], [], 0)
            except (OSError, ValueError):
                self.dead = True
                break
            if not readable:
                break
            try:
                data = self.sock.recv(_RECV_BYTES)
            except OSError:
                self.dead = True
                break
            if not data:
                self.dead = True
                break
            self.last_recv = time.monotonic()
            if metrics is not None:
                metrics.remote_bytes_received += len(data)
            try:
                payloads = self.buffer.feed(data)
                messages.extend(
                    unpack_payload(payload, decode_response)
                    for payload in payloads)
            except WireCorrupt:
                self.dead = True
                break
        return messages

    def receive_one(self, timeout: float) -> tuple:
        """Block up to *timeout* seconds for exactly one message —
        the handshake's lockstep read.  Raises ``OSError`` on timeout,
        ``EOFError`` on close, :class:`WireCorrupt` on garbage or
        pipelined frames (the peer must not send ahead here)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise OSError("handshake timed out")
            readable, _, _ = select.select([self.sock], [], [],
                                           remaining)
            if not readable:
                raise OSError("handshake timed out")
            data = self.sock.recv(_RECV_BYTES)
            if not data:
                raise EOFError("peer closed during handshake")
            payloads = self.buffer.feed(data)
            if not payloads:
                continue
            if len(payloads) > 1:
                raise WireCorrupt("pipelined handshake frames")
            return unpack_payload(payloads[0], decode_response)

    def next_ping_token(self) -> int:
        self._next_token += 1
        return self._next_token

    def close(self) -> None:
        self.dead = True
        with contextlib.suppress(OSError):
            self.sock.close()


def _worker_command(host: str, port: int) -> list[str]:
    # The secret travels via the environment (argv is world-readable).
    return [sys.executable, "-m", "repro", "worker",
            "--host", host, "--port", str(port),
            "--shard-secret", f"env:{_SECRET_ENV}"]


def _spawn_env(secret: bytes) -> dict[str, str]:
    # The spawned daemon must import repro whether or not the parent
    # was launched with PYTHONPATH set: prepend this tree's src root.
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing \
        else src_root + os.pathsep + existing
    env[_SECRET_ENV] = secret.decode("utf-8", "surrogateescape")
    return env


class RemoteBackend(_BoundedChannelBackend):
    """The shard backend over TCP worker endpoints.

    Everything above the socket is inherited from
    :class:`_BoundedChannelBackend` — journal, incarnations, restart,
    breaker ladder and duplicate suppression; only the channel differs.
    The bounded queue becomes a per-connection credit count, worker
    death becomes a dead connection, and restart becomes
    reconnect-plus-handshake (spawning a fresh ``repro worker``
    subprocess first when the endpoint is a local one we supervise).
    A shard whose link stays down past the connect budget fails over
    as *partitioned* rather than crashed.
    """

    _always_journal = True
    #: Chaos scoping: remote workers are processes (``worker.crash``
    #: must exit, not raise).
    _transport = "process"

    heartbeat_interval = _HEARTBEAT_INTERVAL
    connect_budget = _CONNECT_BUDGET

    def __init__(self, shards, spec, metrics, queue_capacity,
                 response_timeout, workers=(), secret=None):
        super().__init__(shards, spec, metrics, queue_capacity,
                         response_timeout)
        if len(workers) != shards:
            raise SaseError(
                f"the remote backend needs exactly one worker "
                f"endpoint per shard ({shards} shard(s), "
                f"{len(workers)} endpoint(s))")
        self._endpoints = [parse_endpoint(text) for text in workers]
        self._secret = resolve_secret(secret)
        chaos = ChaosConfig.parse(spec.chaos, spec.chaos_seed) \
            if spec.chaos else None
        self._net_chaos = chaos \
            if chaos is not None and chaos.armed("net.") else None

    # -- transport hooks --------------------------------------------------

    def start(self):
        try:
            super().start()
        except SaseError:
            # Unsupervised startup failure (unreachable endpoint,
            # rejected handshake): don't leak owned worker processes.
            with contextlib.suppress(Exception):
                self.stop()
            raise

    def _start_transport(self):
        self._connections = [None] * self.shards
        self._processes = [None] * self.shards
        self._owned = [False] * self.shards
        self._connected_once = [False] * self.shards
        self._partition_until = [0.0] * self.shards
        self._backlog: list[tuple] = []

    def _spawn(self, shard):
        """(Re)establish the shard's session: connect and authenticate
        — spawning a local daemon if the endpoint is ours to supervise
        — then send the spec frame for a fresh worker core."""
        conn = self._try_connect(shard)
        shard_metrics = self.metrics.shard(shard)
        if conn is None:
            self._connections[shard] = None
            if self.supervisor is None:
                host, port = self._endpoints[shard]
                raise SaseError(
                    f"shard {shard}: remote worker {host}:{port} "
                    f"is unreachable")
            return  # supervised: the breaker ladder decides
        if self._connected_once[shard]:
            shard_metrics.remote_reconnects += 1
        self._connected_once[shard] = True
        if self._net_chaos is not None:
            # Armed only after the handshake: injected faults exercise
            # the reconnect/replay ladder, never the auth path.
            def on_partition(hold, shard=shard):
                self._partition_until[shard] = \
                    time.monotonic() + hold
            conn.sock = ChaosSocket(
                conn.sock,
                FaultInjector(self._net_chaos, scope=f"net-{shard}",
                              incarnation=self._incarnations[shard]),
                on_partition=on_partition)
        self._connections[shard] = conn
        with contextlib.suppress(_ConnectionLost):
            # A spec send that dies on the wire is a dead
            # connection; the alive()/on_dead ladder picks it up.
            conn.send_spec(("spec", shard, self.spec,
                            self._incarnations[shard]), shard_metrics)

    def _handshake(self, conn, shard):
        """Coordinator side of the mutual handshake.  Returns normally
        on success; raises :class:`SaseError` on a typed reject or a
        failed worker proof (deterministic misconfiguration — do not
        retry), or a transient exception for the backoff ladder."""
        host, port = self._endpoints[shard]
        shard_metrics = self.metrics.shard(shard)

        def rejected(message):
            if isinstance(message, tuple) and message \
                    and message[0] == "reject":
                code = message[1] if len(message) > 1 else "protocol"
                detail = message[2] if len(message) > 2 else ""
                shard_metrics.remote_auth_failures += 1
                raise SaseError(
                    f"shard {shard}: worker {host}:{port} rejected "
                    f"the handshake ({code}): {detail}")

        coord_nonce = os.urandom(_NONCE_BYTES)
        conn.send(("hello", PROTOCOL_VERSION, coord_nonce))
        challenge = conn.receive_one(_HANDSHAKE_TIMEOUT)
        rejected(challenge)
        if not (isinstance(challenge, tuple) and len(challenge) == 3
                and challenge[0] == "challenge"
                and isinstance(challenge[2], bytes)):
            raise WireCorrupt("handshake: expected challenge")
        worker_nonce = challenge[2]
        conn.send(("auth", auth_proof(self._secret, b"coordinator",
                                      coord_nonce, worker_nonce)))
        welcome = conn.receive_one(_HANDSHAKE_TIMEOUT)
        rejected(welcome)
        if not (isinstance(welcome, tuple) and len(welcome) == 2
                and welcome[0] == "welcome"):
            raise WireCorrupt("handshake: expected welcome")
        expected = auth_proof(self._secret, b"worker", coord_nonce,
                              worker_nonce)
        if not (isinstance(welcome[1], bytes)
                and hmac.compare_digest(welcome[1], expected)):
            shard_metrics.remote_auth_failures += 1
            raise SaseError(
                f"shard {shard}: worker {host}:{port} failed "
                f"authentication (shared-secret mismatch?)")
        conn.buffer.max_frame = MAX_RECORD_BYTES

    def _try_connect(self, shard):
        """Connect + authenticate on a jittered exponential backoff
        ladder bounded by the connect budget; None when the budget runs
        out (the shard degrades as partitioned)."""
        host, port = self._endpoints[shard]
        local = _is_local(host)
        shard_metrics = self.metrics.shard(shard)

        def attempt():
            if time.monotonic() < self._partition_until[shard]:
                raise OSError("partitioned (chaos hold)")
            try:
                sock = socket.create_connection(
                    (host, port), timeout=_CONNECT_TIMEOUT)
            except OSError:
                # Transient: nothing listening (yet).  Spawn the
                # daemon if this endpoint is ours to supervise.
                if local and not self._process_alive(shard):
                    self._spawn_local_worker(shard)
                raise
            conn = RemoteConnection(sock)
            try:
                self._handshake(conn, shard)
            except _ConnectionLost as error:
                conn.close()
                raise OSError(str(error)) from None
            except _HANDSHAKE_TRANSIENT as error:
                conn.close()
                raise OSError(f"handshake failed: {error}") from None
            except SaseError:
                conn.close()
                raise
            return conn

        def on_backoff(delay):
            shard_metrics.reconnect_backoff_ms += delay * 1000.0

        try:
            return retry_call(
                attempt, retry_on=(OSError,), attempts=1 << 16,
                base_delay=_CONNECT_BASE_DELAY,
                max_delay=_CONNECT_MAX_DELAY,
                deadline=min(self.response_timeout,
                             self.connect_budget),
                on_backoff=on_backoff)
        except OSError:
            return None

    def _spawn_local_worker(self, shard):
        host, port = self._endpoints[shard]
        self._reap_process(shard)
        self._processes[shard] = subprocess.Popen(
            _worker_command(host, port),
            env=_spawn_env(self._secret),
            stdout=subprocess.DEVNULL)
        self._owned[shard] = True

    def _process_alive(self, shard):
        process = self._processes[shard]
        return process is not None and process.poll() is None

    def _reap_process(self, shard):
        process = self._processes[shard]
        self._processes[shard] = None
        if process is None:
            return
        with contextlib.suppress(Exception):
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=1.0)

    def _alive(self, shard):
        conn = self._connections[shard]
        return conn is not None and not conn.dead

    def _terminate(self, shard):
        conn = self._connections[shard]
        self._connections[shard] = None
        if conn is not None:
            conn.close()
        if self._owned[shard]:
            # Owned daemons restart as fresh processes, exactly
            # like the process backend's workers; external daemons
            # are never ours to kill — they re-accept.
            self._reap_process(shard)

    def _fail_worker(self, shard, reason):
        # A "crash" with no session at all is a partition: the link
        # outlived the reconnect budget.  Same breaker ladder, but
        # named for what operators must actually go fix.
        if reason == "crash" and self._connections[shard] is None \
                and self._connected_once[shard]:
            reason = "partition"
            self.metrics.shard(shard).remote_partitions += 1
        super()._fail_worker(shard, reason)

    # -- channel ----------------------------------------------------------

    def _channel_put(self, shard, message, timeout):
        conn = self._connections[shard]
        if conn is None or conn.dead:
            # Routed into the blocking loop, whose alive() check
            # converts this into the crash/restart path.
            raise queue_module.Full
        if message[0] in ("batch", "flush") \
                and conn.inflight >= self.queue_capacity:
            self._await_credit(conn, shard, timeout)
        try:
            conn.send(message, self.metrics.shard(shard))
        except _ConnectionLost:
            raise queue_module.Full from None
        except Unencodable as error:
            raise SaseError(
                f"shard {shard}: {error} (the remote wire carries "
                f"only marshal-expressible values)") from None
        if message[0] in ("batch", "flush"):
            conn.inflight += 1
            self.metrics.shard(shard).remote_inflight = \
                conn.inflight

    def _await_credit(self, conn, shard, timeout):
        """Block (up to *timeout*) until a credit frees.  Credits
        free only when responses are read, so this loop drains into
        the backlog — the next poll() returns anything it caught."""
        self._drain_into_backlog()
        if conn.inflight < self.queue_capacity:
            return
        if timeout is None:
            raise queue_module.Full
        deadline = time.monotonic() + timeout
        while conn.inflight >= self.queue_capacity:
            if conn.dead or time.monotonic() > deadline:
                raise queue_module.Full
            with contextlib.suppress(OSError, ValueError):
                select.select([conn.sock], [], [], _CREDIT_TICK)
            self._drain_into_backlog()

    def _receive_all(self):
        """Read every connection; handle pongs and credits at the
        protocol layer, return the raw request responses."""
        raw = []
        for shard in range(self.shards):
            conn = self._connections[shard]
            if conn is None or shard in self._lost:
                continue
            for message in conn.receive(self.metrics.shard(shard)):
                opcode = message[0]
                if opcode == "pong":
                    self._note_pong(shard, conn, message)
                    continue
                if opcode in ("batch", "flush", "error") \
                        and conn.inflight > 0:
                    conn.inflight -= 1
                    self.metrics.shard(shard).remote_inflight = \
                        conn.inflight
                raw.append(message)
        return raw

    def _drain_into_backlog(self):
        self._backlog.extend(self._receive_all())

    def _drain_responses(self):
        self._heartbeat_tick()
        raw = self._backlog + self._receive_all()
        self._backlog = []
        responses = []
        for index, message in enumerate(raw):
            try:
                accepted = self._accept(message)
            except SaseError:
                # Keep the rest for the next poll (the ring backend
                # requeues on its channel for the same reason).
                self._backlog = raw[index + 1:] + self._backlog
                raise
            if accepted is not None:
                responses.append(accepted)
        return responses

    # -- heartbeats -------------------------------------------------------

    def _heartbeat_timeout(self):
        if self.supervisor is not None:
            return self.supervisor.hang_timeout
        return min(self.response_timeout, _HEARTBEAT_TIMEOUT)

    def _heartbeat_tick(self):
        if self._stopping:
            return
        now = time.monotonic()
        for shard in range(self.shards):
            conn = self._connections[shard]
            if conn is None or conn.dead or shard in self._lost:
                continue
            if conn.ping_sent_at is not None:
                if now - conn.ping_sent_at > \
                        self._heartbeat_timeout():
                    # TCP is up but the worker stopped answering:
                    # a hang, fed to the breaker ladder as one.
                    self._fail_worker(shard, "hang")
                continue
            if now - conn.last_recv < self.heartbeat_interval:
                continue
            conn.ping_token = conn.next_ping_token()
            conn.ping_sent_at = now
            with contextlib.suppress(_ConnectionLost):
                conn.send(("ping", conn.ping_token),
                          self.metrics.shard(shard))

    def _note_pong(self, shard, conn, message):
        if message[2] != conn.ping_token \
                or conn.ping_sent_at is None:
            return  # stale pong from before a failover
        shard_metrics = self.metrics.shard(shard)
        shard_metrics.remote_heartbeats += 1
        shard_metrics.observe_rtt(
            time.monotonic() - conn.ping_sent_at)
        conn.ping_sent_at = None
        conn.ping_token = None

    # -- wait loop --------------------------------------------------------

    def _idle_wait(self, waiter):
        self._heartbeat_tick()
        socks = [conn.sock
                 for shard, conn in enumerate(self._connections)
                 if conn is not None and not conn.dead
                 and shard not in self._lost]
        if not socks:
            waiter.wait()
            return
        self.park_waits += 1
        with contextlib.suppress(OSError, ValueError):
            select.select(socks, [], [], _WAIT_PARK_MAX)

    # -- lifecycle --------------------------------------------------------

    def _shutdown_transport(self):
        for shard in range(self.shards):
            conn = self._connections[shard]
            self._connections[shard] = None
            if conn is not None:
                conn.close()
        deadline = time.monotonic() + _STOP_JOIN_TIMEOUT
        for shard in range(self.shards):
            process = self._processes[shard]
            if process is None or not self._owned[shard]:
                continue
            with contextlib.suppress(Exception):
                process.wait(timeout=max(
                    0.05, deadline - time.monotonic()))
        for shard in range(self.shards):
            if self._owned[shard]:
                self._reap_process(shard)

    def worker_pids(self):
        return {shard: process.pid
                for shard, process in enumerate(self._processes)
                if process is not None and process.poll() is None}
