"""Remote shard tier: worker daemons over TCP, speaking the ring wire
format.

This is the distributed half of the shard runtime: the router connects
to N worker endpoints (``--shard-backend remote --shard-workers
host:port,...``), and every batch crosses the socket as one frame in
the WAL's CRC32 record format — the exact bytes the shared-memory ring
transport carries, produced by the shared codec in
:mod:`repro.sharding.wire`.  Payloads ``marshal`` cannot express
(worker specs, exotic attribute values, shipped tracer spans) travel
in-band on a pickle-tagged frame instead of a side lane: the socket is
already one totally ordered stream.

The backend preserves everything the local backends guarantee:

* **Deterministic merge.**  Workers tag results with the same
  ``(seq, rank, kind, end, idx)`` coordinates, so the router's
  seq-aligned merge emits output bit-identical to single-process —
  including watermark-released trailing-negation matches.
* **Credit-based backpressure.**  The local bounded queue becomes a
  per-connection credit count: at most ``queue_capacity`` unacked
  batches may be in flight per worker; an exhausted connection raises
  ``queue.Full`` exactly like a full bounded queue, so the base
  stall/hang ladder is reused unchanged.
* **Heartbeats.**  An idle coordinator pings each worker; a missing
  pong within the hang budget fails the shard over through the same
  :class:`~repro.resilience.ShardSupervisor` breaker ladder as a local
  hang.  Pong round-trips feed the per-connection RTT metrics.
* **Reconnect with journal replay.**  Every batch is journaled; a
  worker death (socket EOF, send error, corrupt frame, heartbeat
  timeout) tears the connection down and reconnects with a bumped
  incarnation, replaying the journal into the fresh worker core —
  duplicate responses are suppressed by the coordinator's outstanding
  set, so results stay exactly-once.  Endpoints on a local host that
  nothing listens on are *owned*: the coordinator spawns ``repro
  worker`` subprocesses for them and respawns on death (supervised
  respawn).  Endpoints something already listens on are *external*:
  worker loss is handled by reconnecting until the daemon re-accepts
  (passive re-accept), never by spawning.

A worker daemon (``repro worker --port P``) serves one coordinator
session at a time and rebuilds a fresh
:class:`~repro.sharding.worker.ShardWorkerCore` from the ``spec``
handshake of every new connection — mandatory for replay correctness:
a stale core would double-produce.

The wire carries pickles in both directions, so the shard tier must
only ever span a trusted network — the same trust domain as the
multiprocessing pipes it replaces.
"""

from __future__ import annotations

import contextlib
import os
import queue as queue_module
import select
import socket
import subprocess
import sys
import time
import traceback

from repro.errors import SaseError
from repro.sharding.backends import _STOP_JOIN_TIMEOUT, \
    _WAIT_PARK_MAX, _BoundedChannelBackend
from repro.sharding.wire import FrameBuffer, WireCorrupt, \
    decode_request, decode_response, encode_request, encode_response, \
    pack_message, unpack_payload
from repro.sharding.worker import ShardWorkerCore, _build_injector, \
    _inject_worker_fault

_LOCAL_HOSTS = frozenset({"127.0.0.1", "localhost", "::1"})
_RECV_BYTES = 1 << 16
#: One TCP connect attempt / pause between attempts / whole-ladder cap.
_CONNECT_TIMEOUT = 1.0
_CONNECT_TICK = 0.05
_CONNECT_BUDGET = 15.0
#: A sendall stalled this long means the worker stopped reading with
#: only ``queue_capacity`` small batches in flight: treat as wedged.
_SEND_TIMEOUT = 5.0
#: select() granularity while blocked waiting for credits to free.
_CREDIT_TICK = 0.005
#: Idle gap after which the coordinator pings a connection, and the
#: pong deadline when no supervisor supplies a hang budget.
_HEARTBEAT_INTERVAL = 0.5
_HEARTBEAT_TIMEOUT = 10.0


# -- endpoint parsing ---------------------------------------------------------

def parse_endpoint(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)``; :class:`SaseError` on garbage."""
    host, sep, port_text = text.strip().rpartition(":")
    if not sep or not host:
        raise SaseError(
            f"worker endpoint {text.strip()!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise SaseError(
            f"worker endpoint {text.strip()!r} has a non-numeric "
            f"port") from None
    if not 1 <= port <= 65535:
        raise SaseError(
            f"worker endpoint {text.strip()!r}: port must be 1-65535")
    return host, port


def parse_endpoints(spec: str) -> tuple[str, ...]:
    """Validate a comma-separated ``--shard-workers`` list eagerly —
    before anything is spawned or connected — and return the
    normalized ``host:port`` strings."""
    if not spec or not spec.strip():
        raise SaseError("--shard-workers needs at least one host:port")
    endpoints = []
    for part in spec.split(","):
        if not part.strip():
            raise SaseError(
                f"empty worker endpoint in {spec!r}")
        host, port = parse_endpoint(part)
        endpoints.append(f"{host}:{port}")
    return tuple(endpoints)


def _is_local(host: str) -> bool:
    return host in _LOCAL_HOSTS


# -- worker daemon ------------------------------------------------------------

class WorkerDaemon:
    """The ``repro worker`` server: accepts one coordinator session at
    a time and runs the shard worker loop over the framed socket.

    Every accepted connection starts from nothing: the coordinator's
    ``("spec", shard, spec, incarnation)`` handshake builds a fresh
    :class:`ShardWorkerCore`, so a reconnect after a coordinator-side
    failover always replays into clean state.  When a session ends
    (``stop``, disconnect, or a reported error) the daemon loops back
    to ``accept`` — that re-accept is what the coordinator's passive
    reconnect relies on — unless constructed with ``once=True``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 once: bool = False):
        self.host = host
        self.port = port
        self.once = once
        self._listener: socket.socket | None = None

    def bind(self) -> int:
        """Bind and listen; returns the bound port (for ``port=0``)."""
        family = socket.AF_INET6 if ":" in self.host else socket.AF_INET
        listener = socket.socket(family, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(4)
        self.port = listener.getsockname()[1]
        self._listener = listener
        return self.port

    def serve(self) -> None:
        """Accept-and-serve until :meth:`shutdown` (or forever)."""
        if self._listener is None:
            self.bind()
        listener = self._listener
        try:
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return  # listener closed by shutdown()
                try:
                    self._serve_connection(conn)
                finally:
                    with contextlib.suppress(OSError):
                        conn.close()
                if self.once:
                    return
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Close the listener; an in-flight ``serve`` returns at its
        next ``accept``.  Safe to call from another thread."""
        listener, self._listener = self._listener, None
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        buffer = FrameBuffer()
        core: ShardWorkerCore | None = None
        injector = None
        shard_id = -1
        context: tuple | None = None

        def put(message: tuple) -> None:
            conn.sendall(pack_message(message, encode_response))

        try:
            while True:
                data = conn.recv(_RECV_BYTES)
                if not data:
                    return  # coordinator went away; re-accept
                for payload in buffer.feed(data):
                    message = unpack_payload(payload, decode_request)
                    opcode = message[0]
                    context = None
                    if opcode == "batch":
                        _, batch_id, entries = message
                        context = ("batch", batch_id)
                        if injector is not None:
                            _inject_worker_fault(injector, "process")
                        tagged, delta, spans = \
                            core.process_batch(entries)
                        put(("batch", shard_id, batch_id, tagged,
                             delta, spans))
                    elif opcode == "flush":
                        _, flush_id = message
                        context = ("flush", flush_id)
                        tagged, delta, spans = core.flush()
                        put(("flush", shard_id, flush_id, tagged,
                             delta, spans))
                    elif opcode == "ping":
                        put(("pong", shard_id, message[1]))
                    elif opcode == "spec":
                        _, shard_id, spec, incarnation = message
                        core = ShardWorkerCore(shard_id, spec)
                        injector = _build_injector(shard_id, spec,
                                                   incarnation)
                    elif opcode == "stop":
                        return
        except (OSError, WireCorrupt, EOFError):
            return  # connection-fatal: drop and re-accept
        except Exception:
            # Report like process_worker_main, then end the session —
            # the coordinator retires the named request's bookkeeping,
            # raises, and a fresh session starts from a fresh core.
            with contextlib.suppress(OSError):
                put(("error", shard_id, context,
                     traceback.format_exc()))


def run_worker(host: str, port: int, once: bool = False,
               out=None) -> None:
    """CLI entry: bind, announce readiness, serve."""
    daemon = WorkerDaemon(host, port, once=once)
    bound = daemon.bind()
    if out is not None:
        print(f"worker listening on {host}:{bound}", file=out,
              flush=True)
    daemon.serve()


# -- coordinator side ---------------------------------------------------------

class _ConnectionLost(Exception):
    """A send hit a dead socket; the caller fails the shard over."""


class RemoteConnection:
    """One coordinator→worker TCP session plus its credit and
    heartbeat state."""

    __slots__ = ("sock", "buffer", "dead", "inflight", "last_recv",
                 "ping_token", "ping_sent_at", "_next_token")

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_SEND_TIMEOUT)
        self.sock = sock
        self.buffer = FrameBuffer()
        self.dead = False
        self.inflight = 0          # unacked batch/flush credits in use
        self.last_recv = time.monotonic()
        self.ping_token: int | None = None
        self.ping_sent_at: float | None = None
        self._next_token = 0

    def send(self, message: tuple, metrics=None) -> None:
        """Frame and send one message; marks the connection dead (and
        raises :class:`_ConnectionLost`) on any socket failure —
        including a stalled ``sendall``, which with the credit bound in
        place means the worker stopped reading."""
        data = pack_message(message, encode_request)
        try:
            self.sock.sendall(data)
        except OSError as error:
            self.dead = True
            raise _ConnectionLost(str(error)) from None
        if metrics is not None:
            metrics.remote_bytes_sent += len(data)

    def receive(self, metrics=None) -> list[tuple]:
        """Decode every message currently readable (non-blocking).
        Socket errors, EOF, and corrupt frames mark the connection
        dead; the partial tail of a torn session dies with it."""
        messages: list[tuple] = []
        while not self.dead:
            try:
                readable, _, _ = select.select([self.sock], [], [], 0)
            except (OSError, ValueError):
                self.dead = True
                break
            if not readable:
                break
            try:
                data = self.sock.recv(_RECV_BYTES)
            except OSError:
                self.dead = True
                break
            if not data:
                self.dead = True
                break
            self.last_recv = time.monotonic()
            if metrics is not None:
                metrics.remote_bytes_received += len(data)
            try:
                payloads = self.buffer.feed(data)
            except WireCorrupt:
                self.dead = True
                break
            messages.extend(unpack_payload(payload, decode_response)
                            for payload in payloads)
        return messages

    def next_ping_token(self) -> int:
        self._next_token += 1
        return self._next_token

    def close(self) -> None:
        self.dead = True
        with contextlib.suppress(OSError):
            self.sock.close()


def _worker_command(host: str, port: int) -> list[str]:
    return [sys.executable, "-m", "repro", "worker",
            "--host", host, "--port", str(port)]


def _spawn_env() -> dict[str, str]:
    # The spawned daemon must import repro whether or not the parent
    # was launched with PYTHONPATH set: prepend this tree's src root.
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing \
        else src_root + os.pathsep + existing
    return env


class RemoteBackend(_BoundedChannelBackend):
    """The shard backend over TCP worker endpoints.

    Everything above the socket is inherited from
    :class:`_BoundedChannelBackend` — journal, incarnations, restart,
    breaker ladder and duplicate suppression; only the channel differs.
    The bounded queue becomes a per-connection credit count, worker
    death becomes a dead connection, and restart becomes
    reconnect-plus-spec-handshake (spawning a fresh ``repro worker``
    subprocess first when the endpoint is a local one we supervise).
    """

    _always_journal = True
    #: Chaos scoping: remote workers are processes (``worker.crash``
    #: must exit, not raise).
    _transport = "process"

    heartbeat_interval = _HEARTBEAT_INTERVAL
    connect_budget = _CONNECT_BUDGET

    def __init__(self, shards, spec, metrics, queue_capacity,
                 response_timeout, workers=()):
        super().__init__(shards, spec, metrics, queue_capacity,
                         response_timeout)
        if len(workers) != shards:
            raise SaseError(
                f"the remote backend needs exactly one worker "
                f"endpoint per shard ({shards} shard(s), "
                f"{len(workers)} endpoint(s))")
        self._endpoints = [parse_endpoint(text) for text in workers]

    # -- transport hooks --------------------------------------------------

    def _start_transport(self):
        self._connections = [None] * self.shards
        self._processes = [None] * self.shards
        self._owned = [False] * self.shards
        self._connected_once = [False] * self.shards
        self._backlog: list[tuple] = []

    def _spawn(self, shard):
        """(Re)establish the shard's session: connect — spawning a
        local daemon if the endpoint is ours to supervise — then
        send the spec handshake for a fresh worker core."""
        conn = self._try_connect(shard)
        shard_metrics = self.metrics.shard(shard)
        if conn is None:
            self._connections[shard] = None
            if self.supervisor is None:
                host, port = self._endpoints[shard]
                raise SaseError(
                    f"shard {shard}: remote worker {host}:{port} "
                    f"is unreachable")
            return  # supervised: the breaker ladder decides
        if self._connected_once[shard]:
            shard_metrics.remote_reconnects += 1
        self._connected_once[shard] = True
        self._connections[shard] = conn
        with contextlib.suppress(_ConnectionLost):
            # A handshake that dies on the wire is a dead
            # connection; the alive()/on_dead ladder picks it up.
            conn.send(("spec", shard, self.spec,
                       self._incarnations[shard]), shard_metrics)

    def _try_connect(self, shard):
        host, port = self._endpoints[shard]
        local = _is_local(host)
        deadline = time.monotonic() + min(self.response_timeout,
                                          self.connect_budget)
        while True:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=_CONNECT_TIMEOUT)
                return RemoteConnection(sock)
            except OSError:
                pass  # transient: nothing listening (yet)
            if local and not self._process_alive(shard):
                self._spawn_local_worker(shard)
            if time.monotonic() > deadline:
                return None
            time.sleep(_CONNECT_TICK)

    def _spawn_local_worker(self, shard):
        host, port = self._endpoints[shard]
        self._reap_process(shard)
        self._processes[shard] = subprocess.Popen(
            _worker_command(host, port), env=_spawn_env(),
            stdout=subprocess.DEVNULL)
        self._owned[shard] = True

    def _process_alive(self, shard):
        process = self._processes[shard]
        return process is not None and process.poll() is None

    def _reap_process(self, shard):
        process = self._processes[shard]
        self._processes[shard] = None
        if process is None:
            return
        with contextlib.suppress(Exception):
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=1.0)

    def _alive(self, shard):
        conn = self._connections[shard]
        return conn is not None and not conn.dead

    def _terminate(self, shard):
        conn = self._connections[shard]
        self._connections[shard] = None
        if conn is not None:
            conn.close()
        if self._owned[shard]:
            # Owned daemons restart as fresh processes, exactly
            # like the process backend's workers; external daemons
            # are never ours to kill — they re-accept.
            self._reap_process(shard)

    # -- channel ----------------------------------------------------------

    def _channel_put(self, shard, message, timeout):
        conn = self._connections[shard]
        if conn is None or conn.dead:
            # Routed into the blocking loop, whose alive() check
            # converts this into the crash/restart path.
            raise queue_module.Full
        if message[0] in ("batch", "flush") \
                and conn.inflight >= self.queue_capacity:
            self._await_credit(conn, shard, timeout)
        try:
            conn.send(message, self.metrics.shard(shard))
        except _ConnectionLost:
            raise queue_module.Full from None
        if message[0] in ("batch", "flush"):
            conn.inflight += 1
            self.metrics.shard(shard).remote_inflight = \
                conn.inflight

    def _await_credit(self, conn, shard, timeout):
        """Block (up to *timeout*) until a credit frees.  Credits
        free only when responses are read, so this loop drains into
        the backlog — the next poll() returns anything it caught."""
        self._drain_into_backlog()
        if conn.inflight < self.queue_capacity:
            return
        if timeout is None:
            raise queue_module.Full
        deadline = time.monotonic() + timeout
        while conn.inflight >= self.queue_capacity:
            if conn.dead or time.monotonic() > deadline:
                raise queue_module.Full
            with contextlib.suppress(OSError, ValueError):
                select.select([conn.sock], [], [], _CREDIT_TICK)
            self._drain_into_backlog()

    def _receive_all(self):
        """Read every connection; handle pongs and credits at the
        protocol layer, return the raw request responses."""
        raw = []
        for shard in range(self.shards):
            conn = self._connections[shard]
            if conn is None or shard in self._lost:
                continue
            for message in conn.receive(self.metrics.shard(shard)):
                opcode = message[0]
                if opcode == "pong":
                    self._note_pong(shard, conn, message)
                    continue
                if opcode in ("batch", "flush", "error") \
                        and conn.inflight > 0:
                    conn.inflight -= 1
                    self.metrics.shard(shard).remote_inflight = \
                        conn.inflight
                raw.append(message)
        return raw

    def _drain_into_backlog(self):
        self._backlog.extend(self._receive_all())

    def _drain_responses(self):
        self._heartbeat_tick()
        raw = self._backlog + self._receive_all()
        self._backlog = []
        responses = []
        for index, message in enumerate(raw):
            try:
                accepted = self._accept(message)
            except SaseError:
                # Keep the rest for the next poll (the ring backend
                # requeues on its channel for the same reason).
                self._backlog = raw[index + 1:] + self._backlog
                raise
            if accepted is not None:
                responses.append(accepted)
        return responses

    # -- heartbeats -------------------------------------------------------

    def _heartbeat_timeout(self):
        if self.supervisor is not None:
            return self.supervisor.hang_timeout
        return min(self.response_timeout, _HEARTBEAT_TIMEOUT)

    def _heartbeat_tick(self):
        if self._stopping:
            return
        now = time.monotonic()
        for shard in range(self.shards):
            conn = self._connections[shard]
            if conn is None or conn.dead or shard in self._lost:
                continue
            if conn.ping_sent_at is not None:
                if now - conn.ping_sent_at > \
                        self._heartbeat_timeout():
                    # TCP is up but the worker stopped answering:
                    # a hang, fed to the breaker ladder as one.
                    self._fail_worker(shard, "hang")
                continue
            if now - conn.last_recv < self.heartbeat_interval:
                continue
            conn.ping_token = conn.next_ping_token()
            conn.ping_sent_at = now
            with contextlib.suppress(_ConnectionLost):
                conn.send(("ping", conn.ping_token),
                          self.metrics.shard(shard))

    def _note_pong(self, shard, conn, message):
        if message[2] != conn.ping_token \
                or conn.ping_sent_at is None:
            return  # stale pong from before a failover
        shard_metrics = self.metrics.shard(shard)
        shard_metrics.remote_heartbeats += 1
        shard_metrics.observe_rtt(
            time.monotonic() - conn.ping_sent_at)
        conn.ping_sent_at = None
        conn.ping_token = None

    # -- wait loop --------------------------------------------------------

    def _idle_wait(self, waiter):
        self._heartbeat_tick()
        socks = [conn.sock
                 for shard, conn in enumerate(self._connections)
                 if conn is not None and not conn.dead
                 and shard not in self._lost]
        if not socks:
            waiter.wait()
            return
        self.park_waits += 1
        with contextlib.suppress(OSError, ValueError):
            select.select(socks, [], [], _WAIT_PARK_MAX)

    # -- lifecycle --------------------------------------------------------

    def _shutdown_transport(self):
        for shard in range(self.shards):
            conn = self._connections[shard]
            self._connections[shard] = None
            if conn is not None:
                conn.close()
        deadline = time.monotonic() + _STOP_JOIN_TIMEOUT
        for shard in range(self.shards):
            process = self._processes[shard]
            if process is None or not self._owned[shard]:
                continue
            with contextlib.suppress(Exception):
                process.wait(timeout=max(
                    0.05, deadline - time.monotonic()))
        for shard in range(self.shards):
            if self._owned[shard]:
                self._reap_process(shard)

    def worker_pids(self):
        return {shard: process.pid
                for shard, process in enumerate(self._processes)
                if process is not None and process.poll() is None}
