"""Shard workers: the per-shard execution core shared by every backend.

A :class:`ShardWorkerCore` hosts one plain (unsharded)
:class:`~repro.system.processor.ComplexEventProcessor` per query group
resident on its shard and processes routed batches.  Each produced
composite event is *tagged* with the coordinates the deterministic merger
needs:

``(seq, rank, kind, end, idx)``
    *seq* is the router's global arrival number of the entry that produced
    the result, *rank* the producing query's registration rank, *kind*
    distinguishes watermark-released trailing-negation matches (0, which a
    single-process run emits before the scan results of the same event)
    from scan results (1), *end* is the match's detection stream-time and
    *idx* the within-(seq, query, kind) production ordinal.

The same core runs inline (tests, deterministic debugging), on a thread,
or inside a worker process (``process_worker_main``); only the transport
differs.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass

from repro.core.plan import PlanConfig
from repro.events.model import SchemaRegistry
from repro.obs.trace import DataflowTracer
from repro.resilience.chaos import ChaosConfig, FaultInjector
from repro.sharding.analyzer import GroupSpec
from repro.system.processor import ComplexEventProcessor

# Batch entry opcodes (kept as plain tuples: they cross process pipes).
EVENT_ENTRY = "e"        # ("e", seq, event, (group_id, ...))
WATERMARK_ENTRY = "w"    # ("w", seq, timestamp, (group_id, ...))

RELEASED = 0
SCANNED = 1

# Per-batch cap on shipped latency samples per query; keeps batch
# responses bounded even for huge batches.
_MAX_SAMPLES_PER_BATCH = 256


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its processors (picklable so
    process workers can be spawned or restarted after a crash)."""

    registry: SchemaRegistry
    engine_config: PlanConfig | None
    groups: tuple  # GroupSpec, ...
    use_dispatch_index: bool = True
    # Snapshot of the coordinator's tracing state at router start: when
    # set, workers record spans under the coordinator-assigned trace id
    # (the entry's seq) and ship them back with each batch response.
    trace: bool = False
    # Chaos spec + seed (resilience layer); workers arm only the
    # ``worker.*`` sites.  None keeps the hot path injection-free.
    chaos: str | None = None
    chaos_seed: int = 0


class ShardWorkerCore:
    """One shard's execution state."""

    def __init__(self, shard_id: int, spec: WorkerSpec):
        self.shard_id = shard_id
        self._processors: dict[int, ComplexEventProcessor] = {}
        self._rank_of: dict[str, int] = {}
        self._metrics_baseline: dict[str, tuple[int, int, float]] = {}
        self._sinks: dict[str, list] = {}
        # One shipping tracer shared by every group processor on this
        # shard: spans accumulate in its outbox and leave with the next
        # batch response.
        self._tracer = DataflowTracer(ship=True) if spec.trace else None
        for group in spec.groups:
            if group.kind == "broadcast" and group.home_shard != shard_id:
                continue
            processor = ComplexEventProcessor(
                spec.registry, config=spec.engine_config,
                use_dispatch_index=spec.use_dispatch_index)
            if self._tracer is not None:
                processor.attach_tracer(self._tracer)
            for rank, name, text, plan_config in group.queries:
                registered = processor.register(name, text,
                                                config=plan_config)
                self._rank_of[name] = rank
                sink: list = []
                self._sinks[name] = sink
                processor.metrics.query(name).sample_sink = sink
                del registered
            self._processors[group.group_id] = processor

    @property
    def hosted_groups(self) -> list[int]:
        return sorted(self._processors)

    def process_batch(self, entries: list) -> tuple[list, list, list]:
        """Run one routed batch; returns (tagged results, metrics delta,
        shipped trace spans)."""
        tracer = self._tracer
        if tracer is None:
            # Untraced shards take the batched scan path: consecutive
            # event entries bound for the same groups fuse into one
            # feed_batch call per group processor.
            return self._process_batch_batched(entries), \
                self._metrics_delta(), []
        tagged: list = []
        for entry in entries:
            opcode = entry[0]
            counters: dict[tuple[int, int], int] = {}
            if tracer is not None:
                # The router's seq IS the coordinator's trace id: both
                # count feeds from zero, so pinning seq lands worker
                # spans in the right trace.
                tracer.pin(entry[1])
            if opcode == EVENT_ENTRY:
                _, seq, event, group_ids = entry
                for group_id in group_ids:
                    produced = self._processors[group_id].feed(event)
                    self._tag(tagged, produced, seq, event.timestamp,
                              counters)
            elif opcode == WATERMARK_ENTRY:
                _, seq, timestamp, group_ids = entry
                for group_id in group_ids:
                    produced = self._processors[group_id] \
                        .advance_time(timestamp)
                    for name, result in produced:
                        rank = self._rank_of[name]
                        idx = counters.get((rank, RELEASED), 0)
                        counters[(rank, RELEASED)] = idx + 1
                        tagged.append((seq, rank, RELEASED, result.end,
                                       idx, result))
        if tracer is not None:
            tracer.unpin()
            return tagged, self._metrics_delta(), tracer.drain_shipment()
        return tagged, self._metrics_delta(), []

    def _process_batch_batched(self, entries: list) -> list:
        """The fused batch path: runs of consecutive event entries with
        identical group routing feed each group processor once, so the
        per-event dispatch/metrics overhead amortizes across the run.
        Tag coordinates (seq, rank, kind, idx) are computed per event
        exactly as the per-entry loop computes them."""
        tagged: list = []
        index = 0
        total = len(entries)
        while index < total:
            entry = entries[index]
            if entry[0] != EVENT_ENTRY:
                _, seq, timestamp, group_ids = entry
                counters: dict[tuple[int, int], int] = {}
                for group_id in group_ids:
                    produced = self._processors[group_id] \
                        .advance_time(timestamp)
                    for name, result in produced:
                        rank = self._rank_of[name]
                        idx = counters.get((rank, RELEASED), 0)
                        counters[(rank, RELEASED)] = idx + 1
                        tagged.append((seq, rank, RELEASED, result.end,
                                       idx, result))
                index += 1
                continue
            group_ids = entry[3]
            stop = index + 1
            while stop < total and entries[stop][0] == EVENT_ENTRY \
                    and entries[stop][3] == group_ids:
                stop += 1
            run = entries[index:stop]
            events = [item[2] for item in run]
            run_counters: list[dict[tuple[int, int], int]] = \
                [{} for _ in run]
            for group_id in group_ids:
                grouped = self._processors[group_id] \
                    .feed_batch_grouped(events)
                for slot, produced in enumerate(grouped):
                    if produced:
                        self._tag(tagged, produced, run[slot][1],
                                  events[slot].timestamp,
                                  run_counters[slot])
            index = stop
        return tagged

    def _tag(self, tagged: list, produced: list, seq: int,
             event_time: float, counters: dict) -> None:
        for name, result in produced:
            rank = self._rank_of[name]
            # A match ending before the fed event's timestamp is a
            # trailing-negation match the watermark released; the
            # single-process runtime emits those first.
            kind = SCANNED if result.end >= event_time else RELEASED
            idx = counters.get((rank, kind), 0)
            counters[(rank, kind)] = idx + 1
            tagged.append((seq, rank, kind, result.end, idx, result))

    def flush(self) -> tuple[list, list, list]:
        """End of stream: flush every resident group.

        Flush results are tagged ``(rank, end, idx)`` — the coordinator
        interleaves them into the global flush order.
        """
        tagged: list = []
        counters: dict[int, int] = {}
        for group_id in self.hosted_groups:
            for name, result in self._processors[group_id].flush():
                rank = self._rank_of[name]
                idx = counters.get(rank, 0)
                counters[rank] = idx + 1
                tagged.append((rank, result.end, idx, result))
        if self._tracer is not None:
            return tagged, self._metrics_delta(), \
                self._tracer.drain_shipment()
        return tagged, self._metrics_delta(), []

    def _metrics_delta(self) -> list:
        """Per-query counter deltas since the previous call, with the raw
        latency samples observed in between (capped per batch)."""
        delta: list = []
        for processor in self._processors.values():
            for name, metrics in processor.metrics.queries.items():
                base = self._metrics_baseline.get(name, (0, 0, 0.0))
                d_events = metrics.events_in - base[0]
                d_results = metrics.results_out - base[1]
                d_busy = metrics.busy_seconds - base[2]
                sink = self._sinks[name]
                if d_events or d_results or sink:
                    samples = sink[:_MAX_SAMPLES_PER_BATCH]
                    del sink[:]
                    delta.append((name, d_events, d_results, d_busy,
                                  metrics.last_result_at, samples))
                    self._metrics_baseline[name] = (
                        metrics.events_in, metrics.results_out,
                        metrics.busy_seconds)
        return delta


class _ChaosExit(BaseException):
    """Injected worker crash on a thread transport.

    Derives from ``BaseException`` so the worker loop's ``except
    Exception`` error reporting cannot catch it — a chaos crash must
    look exactly like a silent death, not a reported error."""


def _build_injector(shard_id: int, spec: WorkerSpec,
                    incarnation: int) -> FaultInjector | None:
    if not spec.chaos:
        return None
    config = ChaosConfig.parse(spec.chaos, spec.chaos_seed)
    if not config.armed("worker."):
        return None
    return FaultInjector(config, scope=f"worker-{shard_id}",
                         incarnation=incarnation)


def _inject_worker_fault(injector: FaultInjector, transport: str) -> None:
    """One injection opportunity per batch, before it is processed —
    a crash therefore loses the in-flight batch, which is exactly what
    the journal replay must recover."""
    if injector.trip("worker.crash"):
        if transport == "process":
            os._exit(23)  # no cleanup, like a SIGKILL
        raise _ChaosExit
    if injector.trip("worker.hang"):
        while True:  # pragma: no cover - the wedged loop itself
            time.sleep(3600.0)
    if injector.trip("worker.slow"):
        time.sleep(injector.param("worker.slow", 0.02))


def process_worker_main(shard_id: int, spec: WorkerSpec,
                        in_queue, out_queue, transport: str = "process",
                        incarnation: int = 0, rings=None) -> None:
    """Entry point of a process- or thread-backend worker.

    Messages in: ``("batch", batch_id, entries)``, ``("flush", flush_id)``
    and ``("stop",)``.  Responses out: ``("batch", shard, batch_id,
    tagged, delta, spans)``, ``("flush", shard, flush_id, tagged, delta,
    spans)`` or ``("error", shard, context, traceback)`` where *context*
    names the request that failed (``("batch", id)`` / ``("flush", id)``,
    None outside one) so the coordinator can retire its bookkeeping
    before reporting.  Any exception is reported rather than silently
    dying so the coordinator can fail loudly instead of losing events.

    ``incarnation`` counts restarts of this shard; the fault injector
    uses it to disarm one-shot (``@nth``) faults after a restart so the
    journal replay converges instead of re-tripping the same fault.
    ``rings`` is a :class:`~repro.sharding.transport.ChannelHandles`:
    when given, messages travel over its shared-memory ring pair and the
    queues serve only as the fallback lane for payloads the ring codec
    cannot carry.
    """
    channel = None
    if rings is not None:
        channel = rings.connect(in_queue, out_queue)
        get, put = channel.get, channel.put
    else:
        get, put = in_queue.get, out_queue.put
    context = None
    try:
        core = ShardWorkerCore(shard_id, spec)
        injector = _build_injector(shard_id, spec, incarnation)
        while True:
            message = get()
            opcode = message[0]
            context = None
            if opcode == "batch":
                _, batch_id, entries = message
                context = ("batch", batch_id)
                if injector is not None:
                    _inject_worker_fault(injector, transport)
                tagged, delta, spans = core.process_batch(entries)
                put(("batch", shard_id, batch_id, tagged, delta, spans))
            elif opcode == "flush":
                _, flush_id = message
                context = ("flush", flush_id)
                tagged, delta, spans = core.flush()
                put(("flush", shard_id, flush_id, tagged, delta, spans))
            elif opcode == "stop":
                break
    except (KeyboardInterrupt, EOFError):  # pragma: no cover
        return
    except _ChaosExit:
        return
    except Exception:  # pragma: no cover - exercised via fault tests
        put(("error", shard_id, context, traceback.format_exc()))
    finally:
        if channel is not None:
            channel.close()
