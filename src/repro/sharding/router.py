"""The shard router: partition-aware fan-out with deterministic merge.

The router sits between :meth:`ComplexEventProcessor.feed` and the shard
workers.  Per fed event it

1. assigns a global arrival number (*seq*),
2. routes the event per query group — keyed groups receive it on
   ``stable_hash(partition key) % shards`` (with negation *fanout* types
   broadcast to every shard and watermark ticks to shards that did not
   get the event, so trailing-negation timeouts fire at the same stream
   time everywhere), broadcast groups on their home shard — batching
   entries per shard and shipping a batch when it reaches
   ``batch_size``,
3. runs *local* queries (system functions, INTO/FROM composition)
   synchronously in the coordinator, and
4. emits completed results strictly in seq order, merging worker and
   local results into the exact sequence the single-process runtime
   would have produced: per seq, queries in registration order, each
   query's watermark-released matches (ordered by detection time, shard,
   production index) before its scan matches, local cascade results
   last.

Backpressure propagates naturally: a full shard queue blocks the submit
path, which blocks ``feed``.  Nothing is dropped and nothing is
reordered.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import SaseError
from repro.obs.trace import TICK_CONTEXT
from repro.resilience.supervisor import ShardSupervisor
from repro.sharding.analyzer import ShardPlan, build_shard_plan, \
    stable_hash
from repro.sharding.backends import make_backend
from repro.sharding.worker import EVENT_ENTRY, RELEASED, WATERMARK_ENTRY, \
    WorkerSpec
from repro.events.event import CompositeEvent, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sharding.config import ShardingConfig
    from repro.system.processor import ComplexEventProcessor


class _SeqState:
    """Everything known about one fed event's results so far."""

    __slots__ = ("stream", "pending", "worker", "local")

    def __init__(self, stream: str):
        self.stream = stream
        self.pending: set[tuple[int, int]] = set()   # (shard, batch id)
        self.worker: list = []   # (rank, kind, end, shard, idx, result)
        self.local: list = []    # (name, result) in production order


class ShardRouter:
    """Routes one processor's cleaned stream across worker shards."""

    def __init__(self, processor: "ComplexEventProcessor",
                 config: "ShardingConfig"):
        self._processor = processor
        self.config = config
        queries = processor.queries()
        self.plan: ShardPlan = build_shard_plan(
            queries, config.shards, processor.DEFAULT_STREAM)
        self._default_stream = processor.DEFAULT_STREAM
        self._rank_by_name = {registered.name: rank
                              for rank, registered in enumerate(queries)}
        self._name_by_rank = {rank: registered.name
                              for rank, registered in enumerate(queries)}
        self._stream_by_name = {registered.name: registered.input_stream
                                for registered in queries}
        self._local_names = self.plan.local_names
        self._metrics = processor.metrics

        # Resilience wiring (all default off: resilience is None).
        resilience = processor.resilience
        self._supervisor: ShardSupervisor | None = None
        self._shed = None
        self._shed_rng: random.Random | None = None
        self._degraded = False
        self.events_lost = 0
        chaos_spec, chaos_seed = None, 0
        if resilience is not None:
            chaos_spec = resilience.chaos
            chaos_seed = resilience.chaos_seed
            policy = resilience.shedding_policy()
            if policy.active:
                self._shed = policy
                self._shed_rng = random.Random(chaos_seed ^ 0x5EED5)

        if self.plan.groups:
            spec = WorkerSpec(registry=processor.registry,
                              engine_config=processor.engine_config,
                              groups=tuple(self.plan.groups),
                              use_dispatch_index=
                              processor.use_dispatch_index,
                              trace=processor.tracer is not None,
                              chaos=chaos_spec, chaos_seed=chaos_seed)
            if (resilience is not None and resilience.supervise
                    and config.backend != "inline"):
                self._supervisor = ShardSupervisor.from_config(
                    resilience, config.shards,
                    on_event=self._on_supervisor_event)
            self._backend = make_backend(
                config.backend, config.shards, spec, self._metrics,
                config.queue_capacity, config.response_timeout,
                supervisor=self._supervisor,
                on_shard_lost=self._on_shard_lost,
                transport=config.transport,
                ring_bytes=config.ring_bytes,
                workers=config.workers,
                secret=config.secret)
        else:
            # Every query is local; no workers to start.
            self._backend = None
        if self._shed is not None and (self._backend is None
                                       or self._backend.synchronous):
            # Shedding needs an asynchronous backend to have a queue to
            # protect; inline execution never falls behind.
            self._shed = None

        self._next_seq = 0
        self._next_emit = 0
        self._seq_states: dict[int, _SeqState] = {}
        self._batch_counter = 0
        # Per shard: (batch id, entries) of the batch being filled.
        self._open_batches: list[tuple[int, list] | None] = \
            [None] * config.shards
        self._batch_seqs: dict[tuple[int, int], set[int]] = {}
        self._flush_worker: list = []   # (rank, end, shard, idx, result)
        self._flushed = False

    # -- feeding --------------------------------------------------------------

    def feed(self, event: Event, stream: str) \
            -> list[tuple[str, CompositeEvent]]:
        if self._flushed:
            raise SaseError("sharded stream already flushed")
        seq = self._next_seq
        self._next_seq += 1
        state = _SeqState(stream)
        self._seq_states[seq] = state
        if self._backend is not None and stream == self._default_stream:
            self._route(seq, event)
        if self._local_names:
            state.local = self._processor._run_queries(
                event, stream, only=self._local_names)
        if self._backend is not None:
            self._handle(self._backend.poll())
        return self._emit_ready()

    def feed_batch(self, events: list[Event], stream: str) \
            -> list[tuple[str, CompositeEvent]]:
        """Route a batch of events, then poll and emit once.

        Per-event routing (seq assignment, partition hashing, batch
        sealing, local queries) is identical to N :meth:`feed` calls —
        router batching and caller batching compose instead of
        double-buffering — but the backend poll and the ordered emission
        run once per batch instead of once per event, shrinking the
        coordinator's per-event framing cost.
        """
        if self._flushed:
            raise SaseError("sharded stream already flushed")
        route = self._backend is not None and stream == self._default_stream
        local_names = self._local_names
        run_local = self._processor._run_queries
        for event in events:
            seq = self._next_seq
            self._next_seq += 1
            state = _SeqState(stream)
            self._seq_states[seq] = state
            if route:
                self._route(seq, event)
            if local_names:
                state.local = run_local(event, stream, only=local_names)
        if self._backend is not None:
            self._handle(self._backend.poll())
        return self._emit_ready()

    def _route(self, seq: int, event: Event) -> None:
        shards = self.config.shards
        event_groups: list[list[int]] = [[] for _ in range(shards)]
        tick_groups: list[list[int]] = [[] for _ in range(shards)]
        for group in self.plan.groups:
            if group.kind == "broadcast":
                event_groups[group.home_shard].append(group.group_id)
                continue
            attr = group.keyed.get(event.type)
            if attr is not None:
                target = stable_hash(
                    event.attributes.get(attr)) % shards
                event_groups[target].append(group.group_id)
                targets = {target}
            elif event.type in group.fanout_types:
                for shard in range(shards):
                    event_groups[shard].append(group.group_id)
                targets = set(range(shards))
            else:
                targets = set()
            if group.needs_watermark:
                # Shards that did not see the event still need its
                # timestamp so pending trailing-negation matches release
                # at the same stream time as a single-process run.
                for shard in range(shards):
                    if shard not in targets:
                        tick_groups[shard].append(group.group_id)
        supervised = self._supervisor is not None
        for shard in range(shards):
            if supervised and (event_groups[shard] or tick_groups[shard]) \
                    and not self._backend.shard_available(shard):
                # Degraded mode: the shard is gone (breaker open).  Its
                # events are lost — explicitly counted, and every result
                # emitted from here on carries ``complete=False``.
                if event_groups[shard]:
                    self.events_lost += 1
                    self._metrics.shard(shard).events_lost += 1
                continue
            if event_groups[shard]:
                self._admit_event(shard, seq, event,
                                  tuple(event_groups[shard]))
            if tick_groups[shard]:
                self._append_entry(shard, seq, (
                    WATERMARK_ENTRY, seq, event.timestamp,
                    tuple(tick_groups[shard])))
                self._metrics.shard(shard).watermarks_sent += 1
            open_batch = self._open_batches[shard]
            if open_batch is not None and \
                    len(open_batch[1]) >= self.config.batch_size:
                self._seal(shard)

    def _admit_event(self, shard: int, seq: int, event: Event,
                     group_ids: tuple) -> None:
        policy = self._shed
        if policy is not None and self._backend.overloaded(shard):
            admit = (policy.kind == "sample"
                     and self._shed_rng.random() < policy.probability)
            if not admit and policy.kind == "drop-oldest" \
                    and self._convert_oldest(shard):
                admit = True  # made room by shedding the oldest unsent
            if not admit:
                self._shed_event(shard, seq, event.timestamp, group_ids)
                return
        self._append_entry(shard, seq, (
            EVENT_ENTRY, seq, event, group_ids))
        self._metrics.shard(shard).events_routed += 1

    def _shed_event(self, shard: int, seq: int, timestamp: float,
                    group_ids: tuple) -> None:
        """Shed one event *watermark-safely*: its timestamp still
        reaches the shard (as a watermark entry, coalesced into the open
        batch's trailing watermark when possible) so window expiry and
        trailing-negation release stay as prompt as with the event."""
        self._metrics.shard(shard).events_shed += 1
        self._record_span("shed", {"shard": shard,
                                   "policy": self._shed.kind,
                                   "ts": timestamp})
        open_batch = self._open_batches[shard]
        if open_batch is not None and open_batch[1]:
            last = open_batch[1][-1]
            if last[0] == WATERMARK_ENTRY and last[3] == group_ids:
                open_batch[1][-1] = (WATERMARK_ENTRY, last[1], timestamp,
                                     group_ids)
                batch_id = open_batch[0]
                self._batch_seqs[(shard, batch_id)].add(seq)
                self._seq_states[seq].pending.add((shard, batch_id))
                return
        self._append_entry(shard, seq, (
            WATERMARK_ENTRY, seq, timestamp, group_ids))
        self._metrics.shard(shard).watermarks_sent += 1

    def _convert_oldest(self, shard: int) -> bool:
        """drop-oldest: turn the oldest still-unsent event entry of the
        shard's open batch into a watermark.  Already-submitted batches
        are committed, so there may be nothing left to shed."""
        open_batch = self._open_batches[shard]
        if open_batch is None:
            return False
        for index, entry in enumerate(open_batch[1]):
            if entry[0] == EVENT_ENTRY:
                _, old_seq, old_event, old_groups = entry
                open_batch[1][index] = (
                    WATERMARK_ENTRY, old_seq, old_event.timestamp,
                    old_groups)
                shard_metrics = self._metrics.shard(shard)
                shard_metrics.events_shed += 1
                shard_metrics.events_routed -= 1
                self._record_span("shed", {
                    "shard": shard, "policy": "drop-oldest",
                    "ts": old_event.timestamp})
                return True
        return False

    def _append_entry(self, shard: int, seq: int, entry: tuple) -> None:
        open_batch = self._open_batches[shard]
        if open_batch is None:
            self._batch_counter += 1
            open_batch = (self._batch_counter, [])
            self._open_batches[shard] = open_batch
            self._batch_seqs[(shard, open_batch[0])] = set()
        batch_id, entries = open_batch
        entries.append(entry)
        self._batch_seqs[(shard, batch_id)].add(seq)
        self._seq_states[seq].pending.add((shard, batch_id))

    def _seal(self, shard: int) -> None:
        open_batch = self._open_batches[shard]
        if open_batch is None:
            return
        self._open_batches[shard] = None
        batch_id, entries = open_batch
        self._metrics.shard(shard).batches_sent += 1
        self._backend.submit(shard, batch_id, entries)

    # -- responses and deterministic emission --------------------------------

    def _handle(self, responses: list) -> None:
        tracer = self._processor.tracer
        for response in responses:
            opcode, shard = response[0], response[1]
            tagged, delta = response[3], response[4]
            for name, d_events, d_results, d_busy, last_at, samples \
                    in delta:
                self._metrics.query(name).merge_delta(
                    d_events, d_results, d_busy, last_at, samples)
            if tracer is not None and len(response) > 5 and response[5]:
                tracer.fold(response[5], shard=shard)
            if opcode == "batch":
                batch_id = response[2]
                for seq, rank, kind, end, idx, result in tagged:
                    self._seq_states[seq].worker.append(
                        (rank, kind, end, shard, idx, result))
                for seq in self._batch_seqs.pop((shard, batch_id), ()):
                    self._seq_states[seq].pending.discard(
                        (shard, batch_id))
            else:
                for rank, end, idx, result in tagged:
                    self._flush_worker.append(
                        (rank, end, shard, idx, result))

    def _emit_ready(self) -> list[tuple[str, CompositeEvent]]:
        emitted: list[tuple[str, CompositeEvent]] = []
        while self._next_emit < self._next_seq:
            state = self._seq_states.get(self._next_emit)
            if state is None or state.pending:
                break
            emitted.extend(self._assemble(self._next_emit))
            self._next_emit += 1
        return emitted

    def _assemble(self, seq: int) -> list[tuple[str, CompositeEvent]]:
        """Reproduce the single-process result order for one seq."""
        state = self._seq_states.pop(seq)
        if self._backend is None or state.stream != self._default_stream:
            # Purely local execution already ran in exact classic order.
            return self._flag_degraded(state.local)
        by_rank: dict[int, tuple[list, list]] = {}
        for rank, kind, end, shard, idx, result in state.worker:
            chunks = by_rank.setdefault(rank, ([], []))
            chunks[0 if kind == RELEASED else 1].append(
                (end, shard, idx, result))
        depth0: dict[int, list] = {}
        cascade: list = []
        for name, result in state.local:
            # No query publishes INTO the default stream here (that
            # forces everything local), so a default-stream reader's
            # results are depth-0 and the rest are cascade tail.
            if self._stream_by_name[name] == self._default_stream:
                depth0.setdefault(self._rank_by_name[name], []) \
                    .append((name, result))
            else:
                cascade.append((name, result))
        out: list[tuple[str, CompositeEvent]] = []
        for rank in range(len(self._name_by_rank)):
            chunks = by_rank.get(rank)
            if chunks is not None:
                name = self._name_by_rank[rank]
                for chunk in chunks:
                    chunk.sort(key=lambda item: (item[0], item[1],
                                                 item[2]))
                    out.extend((name, item[3]) for item in chunk)
            out.extend(depth0.get(rank, ()))
        out.extend(cascade)
        return self._flag_degraded(out)

    def _flag_degraded(self, results: list) -> list:
        if self._degraded:
            # Explicit staleness: with a shard abandoned, surviving
            # shards keep answering but matches may be missing partners.
            for _, result in results:
                result.complete = False
        return results

    # -- resilience hooks -----------------------------------------------------

    def _record_span(self, op: str, detail: dict) -> None:
        tracer = self._processor.tracer
        if tracer is not None:
            tracer.record(op, detail=detail, trace_id=TICK_CONTEXT)

    def _on_supervisor_event(self, kind: str, shard: int,
                             detail: dict) -> None:
        self._record_span(kind, {"shard": shard, **detail})
        if kind == "breaker" and detail.get("to") == "open":
            self._metrics.shard(shard).breaker_opens += 1
            self._degraded = True

    def _on_shard_lost(self, shard: int, lost_events: int) -> None:
        """Backend callback: a shard was abandoned.  Clear its pending
        bookkeeping so seq emission and barriers cannot wait forever on
        responses that will never come."""
        self._degraded = True
        open_batch = self._open_batches[shard]
        if open_batch is not None:
            lost_events += sum(1 for entry in open_batch[1]
                               if entry[0] == EVENT_ENTRY)
            self._open_batches[shard] = None
        for key in [key for key in self._batch_seqs if key[0] == shard]:
            for seq in self._batch_seqs.pop(key):
                state = self._seq_states.get(seq)
                if state is not None:
                    state.pending.discard(key)
        self.events_lost += lost_events
        self._metrics.shard(shard).events_lost += lost_events

    def drain(self) -> list[tuple[str, CompositeEvent]]:
        """Barrier: seal every open batch and wait out all outstanding
        responses, emitting the now-complete seqs in order.  Used as a
        checkpoint fence — afterwards every match for every routed event
        has been emitted, on any backend.  The stream stays open."""
        if self._flushed:
            return []
        if self._backend is not None:
            for shard in range(self.config.shards):
                self._seal(shard)
            while self._backend.outstanding():
                self._handle(self._backend.wait())
        return self._emit_ready()

    # -- end of stream --------------------------------------------------------

    def flush(self) -> list[tuple[str, CompositeEvent]]:
        """Drain every shard, emit the remaining seqs in order, then
        interleave the flush phase exactly as a single-process flush
        would (producers before their INTO consumers, cascade results
        glued behind the flush result that triggered them)."""
        if self._flushed:
            return []
        self._flushed = True
        emitted: list[tuple[str, CompositeEvent]] = []
        if self._backend is not None:
            for shard in range(self.config.shards):
                self._seal(shard)
            self._backend.send_flush(1)
            while self._backend.outstanding():
                self._handle(self._backend.wait())
        emitted.extend(self._emit_ready())
        if self._seq_states:  # pragma: no cover - internal invariant
            raise SaseError(
                f"{len(self._seq_states)} event(s) never completed "
                f"across the shards")

        local_flush = self._processor._flush_queries(
            only=self._local_names) if self._local_names else []
        flush_rank = self._processor.flush_ranks()
        worker_groups: dict[int, list] = {}
        for rank, end, shard, idx, result in self._flush_worker:
            name = self._name_by_rank[rank]
            worker_groups.setdefault(flush_rank[name], []).append(
                (end, shard, idx, name, result))
        local_groups: dict[int, list] = {}
        for name, result, trigger_rank in local_flush:
            local_groups.setdefault(trigger_rank, []).append(
                (name, result))
        for rank in sorted(set(worker_groups) | set(local_groups)):
            group = worker_groups.get(rank, [])
            group.sort(key=lambda item: (item[0], item[1], item[2]))
            emitted.extend((item[3], item[4]) for item in group)
            emitted.extend(local_groups.get(rank, ()))
        if self._backend is not None:
            self._backend.stop()
        return self._flag_degraded(emitted)

    def close(self) -> None:
        """Stop the backend *without* the flush protocol: a bounded
        shutdown that succeeds even when a worker is wedged.  In-flight
        results are discarded; the router cannot be fed afterwards."""
        if self._backend is not None and not self._flushed:
            self._flushed = True
            self._backend.stop()

    # -- introspection --------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._degraded

    def supervisor_states(self) -> dict[int, str]:
        """Breaker state per shard (empty when unsupervised)."""
        return (self._supervisor.states()
                if self._supervisor is not None else {})

    def worker_pids(self) -> dict[int, int]:
        """Worker process ids (process backend only; empty otherwise)."""
        return self._backend.worker_pids() if self._backend else {}
