"""Configuration for the sharded parallel runtime."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SaseError
from repro.sharding.transport import DEFAULT_RING_BYTES, MIN_RING_BYTES, \
    TRANSPORTS

BACKENDS = ("inline", "thread", "process", "remote")


@dataclass(frozen=True)
class ShardingConfig:
    """How the cleaned stream is spread across worker shards.

    The default — one inline shard — is exactly the classic synchronous
    runtime: :attr:`active` is False and the processor never builds a
    router.  Raising ``shards`` (or choosing an asynchronous backend)
    turns on partition-aware routing.

    ``batch_size`` bounds how many routed entries accumulate per shard
    before a batch ships; ``queue_capacity`` bounds how many batches a
    shard's input queue holds before the router *blocks* (backpressure —
    a slow shard throttles ingestion instead of buffering unboundedly).
    ``response_timeout`` caps how long the router waits for worker
    progress before declaring the run wedged.

    ``transport`` selects the process backend's IPC path: ``"ring"``
    (default) carries marshal-framed batches over shared-memory ring
    buffers with the multiprocessing queues kept as a fallback lane,
    ``"pipe"`` is the classic pickle-over-queue path.  Ignored by the
    inline and thread backends.  ``ring_bytes`` sizes each per-shard,
    per-direction ring.

    The ``"remote"`` backend sends the same framed batches over TCP to
    worker daemons instead of spawning local processes: ``workers``
    names one ``host:port`` endpoint per shard, and ``queue_capacity``
    becomes the per-connection credit bound (in-flight unacked
    batches).  ``secret`` is the shared-secret spec (literal /
    ``env:NAME`` / ``file:PATH``) keying the remote tier's mutual
    HMAC handshake — required by (and only meaningful for) the remote
    backend.  It is stored unresolved and excluded from ``repr`` so a
    literal secret never leaks into logs or manifests.
    """

    shards: int = 1
    backend: str = "inline"
    batch_size: int = 64
    queue_capacity: int = 8
    response_timeout: float = 60.0
    transport: str = "ring"
    ring_bytes: int = DEFAULT_RING_BYTES
    workers: tuple[str, ...] = ()
    secret: str | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise SaseError("sharding needs at least one shard")
        if self.backend not in BACKENDS:
            raise SaseError(
                f"unknown shard backend {self.backend!r}; "
                f"choose one of {', '.join(BACKENDS)}")
        if self.batch_size < 1:
            raise SaseError("batch_size must be at least 1")
        if self.queue_capacity < 1:
            raise SaseError("queue_capacity must be at least 1")
        if self.response_timeout <= 0:
            raise SaseError("response_timeout must be positive")
        if self.transport not in TRANSPORTS:
            raise SaseError(
                f"unknown shard transport {self.transport!r}; "
                f"choose one of {', '.join(TRANSPORTS)}")
        if self.ring_bytes < MIN_RING_BYTES:
            raise SaseError(
                f"ring_bytes must be at least {MIN_RING_BYTES}")
        if self.backend == "remote":
            if not self.workers:
                raise SaseError(
                    "the remote backend needs --shard-workers "
                    "(one host:port per shard)")
            if len(self.workers) != self.shards:
                raise SaseError(
                    f"the remote backend needs exactly one worker "
                    f"endpoint per shard ({self.shards} shard(s), "
                    f"{len(self.workers)} endpoint(s))")
            from repro.sharding.remote import parse_endpoint
            for endpoint in self.workers:
                parse_endpoint(endpoint)
            if self.secret is None:
                raise SaseError(
                    "the remote backend needs --shard-secret (the "
                    "workers authenticate every session)")
        elif self.workers:
            raise SaseError(
                "--shard-workers only applies to the remote backend")
        elif self.secret is not None:
            raise SaseError(
                "--shard-secret only applies to the remote backend")

    @property
    def active(self) -> bool:
        """Whether the sharded runtime should be engaged at all."""
        return self.shards > 1 or self.backend != "inline"
