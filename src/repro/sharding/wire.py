"""Shared wire codec for the shard transports (ring and TCP).

Every shard transport carries the same messages in the same format:
one *frame* in the WAL's record format (:func:`repro.persist.records
.frame` — an 8-byte length+CRC32 header, then the payload), whose
payload starts with a one-byte tag selecting the codec:

``TAG_MARSHAL``
    A ``marshal``-encoded message tuple follows inline.  Events and
    composite events are rebuilt through small deterministic encoders;
    ``marshal`` round-trips ints/floats/strings exactly, so merge
    output stays bit-identical across transports.
``TAG_PIPE``
    Ring transport only: the message travels on the fallback
    ``multiprocessing.Queue`` lane and this marker frame keeps the two
    lanes totally ordered (and carries the ring's backpressure).
``TAG_PICKLE``
    TCP transport only: a pickled message follows inline.  The socket
    is its own ordered lane, so payloads ``marshal`` cannot express
    (worker specs, exotic attribute values, shipped tracer spans)
    stay in-band instead of needing a side channel.

The ring transport (:mod:`repro.sharding.transport`) frames messages
into shared-memory rings; the remote transport
(:mod:`repro.sharding.remote`) frames the very same bytes onto TCP
sockets.  Both re-export this module's codec, so there is exactly one
encode/decode path to keep deterministic.
"""

from __future__ import annotations

import marshal
import pickle

from repro.events.event import CompositeEvent, Event
from repro.persist.records import HEADER_BYTES, MAX_RECORD_BYTES, \
    frame, iter_frames

__all__ = [
    "HEADER_BYTES", "MAX_RECORD_BYTES", "frame", "iter_frames",
    "TAG_MARSHAL", "TAG_PIPE", "TAG_PICKLE",
    "EVENT_ENTRY", "WATERMARK_ENTRY",
    "Unencodable", "WireCorrupt",
    "encode_request", "decode_request",
    "encode_response", "decode_response",
    "frame_message", "PIPE_MARKER",
    "pack_message", "unpack_payload", "FrameBuffer",
]

# Frame payload tags: first byte of every framed payload.
TAG_MARSHAL = 0x4D   # "M": marshal-encoded message follows inline
TAG_PIPE = 0x50      # "P": the message travels on the fallback queue
TAG_PICKLE = 0x4B    # "K": pickled message follows inline (TCP lane)

# Entry opcodes, mirrored from repro.sharding.worker (which imports
# this module through the transport, so the literals live here to avoid
# a cycle).  They are wire format now: changing either side breaks
# mixed-version transports.
EVENT_ENTRY = "e"
WATERMARK_ENTRY = "w"


class Unencodable(Exception):
    """The value cannot cross the marshal codec; use the fallback lane."""


class WireCorrupt(Exception):
    """A framed stream holds garbage: an unknown payload tag, an
    impossible frame length, or a CRC failure on a complete frame.
    On a stream transport this is connection-fatal (reconnect and
    replay); it never describes a merely *incomplete* tail."""


# -- payload codec ------------------------------------------------------------
#
# Messages are tuples of primitives plus Event/CompositeEvent objects.
# The encoders map those objects onto tagged tuples marshal can carry;
# tags start with "\0" so they cannot collide with user values (every
# user-held tuple/list/dict is itself wrapped in a tag, so decode never
# sees a bare container).

_PRIMITIVES = (int, float, str, bool, bytes, type(None))


def _enc_value(value):
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, Event):
        return ("\0e", value.type, value.timestamp,
                {key: _enc_value(item)
                 for key, item in value.attributes.items()}, value.seq)
    if isinstance(value, CompositeEvent):
        return ("\0c", value.type,
                [(key, _enc_value(item))
                 for key, item in value.attributes.items()],
                [(key, _enc_value(item))
                 for key, item in value.bindings.items()],
                value.start, value.end, value.stream, value.complete)
    if isinstance(value, list):
        return ("\0l", [_enc_value(item) for item in value])
    if isinstance(value, tuple):
        return ("\0t", [_enc_value(item) for item in value])
    if isinstance(value, dict):
        return ("\0d", [(key, _enc_value(item))
                        for key, item in value.items()])
    raise Unencodable(type(value).__name__)


def _dec_value(value):
    if type(value) is not tuple:
        return value
    tag = value[0]
    if tag == "\0e":
        return Event(value[1], value[2],
                     {key: _dec_value(item)
                      for key, item in value[3].items()}, value[4])
    if tag == "\0c":
        composite = CompositeEvent(
            value[1],
            {key: _dec_value(item) for key, item in value[2]},
            {key: _dec_value(item) for key, item in value[3]},
            value[4], value[5], value[6])
        composite.complete = value[7]
        return composite
    if tag == "\0l":
        return [_dec_value(item) for item in value[1]]
    if tag == "\0t":
        return tuple(_dec_value(item) for item in value[1])
    if tag == "\0d":
        return {key: _dec_value(item) for key, item in value[1]}
    return value  # pragma: no cover - marshal never produces bare tuples


def encode_request(message: tuple) -> bytes | None:
    """Coordinator→worker codec; None means "use the fallback lane"."""
    try:
        if message[0] == "batch":
            _, batch_id, entries = message
            encoded = [
                (EVENT_ENTRY, seq,
                 (item.type, item.timestamp, item.attributes, item.seq),
                 gids)
                if kind == EVENT_ENTRY else (kind, seq, item, gids)
                for kind, seq, item, gids in entries]
            return marshal.dumps(("batch", batch_id, encoded))
        return marshal.dumps(message)  # flush / stop / ping
    except (ValueError, TypeError):
        return None


def decode_request(payload: bytes) -> tuple:
    message = marshal.loads(payload)
    if message[0] == "batch":
        _, batch_id, encoded = message
        # Hot path: every routed event crosses here.  Entries are flat
        # 4-tuples (kind, seq, item, group_ids) for both kinds, and the
        # unmarshalled attribute dicts are fresh, so ``Event._restore``
        # may take ownership without the constructor's defensive copy.
        restore = Event._restore
        entries = [
            (EVENT_ENTRY, seq,
             restore(item[0], item[1], item[2], item[3]), gids)
            if kind == EVENT_ENTRY else (kind, seq, item, gids)
            for kind, seq, item, gids in encoded]
        return ("batch", batch_id, entries)
    return message


def encode_response(message: tuple) -> bytes | None:
    """Worker→coordinator codec; None means "use the fallback lane"."""
    try:
        opcode = message[0]
        if opcode == "batch":
            _, shard, batch_id, tagged, delta, spans = message
            encoded = [(seq, rank, kind, end, idx, _enc_value(result))
                       for seq, rank, kind, end, idx, result in tagged]
            return marshal.dumps(("batch", shard, batch_id, encoded,
                                  delta, spans))
        if opcode == "flush":
            _, shard, flush_id, tagged, delta, spans = message
            encoded = [(rank, end, idx, _enc_value(result))
                       for rank, end, idx, result in tagged]
            return marshal.dumps(("flush", shard, flush_id, encoded,
                                  delta, spans))
        return marshal.dumps(message)  # error reports / pong
    except (ValueError, TypeError, Unencodable):
        return None


def decode_response(payload: bytes) -> tuple:
    message = marshal.loads(payload)
    opcode = message[0]
    if opcode == "batch":
        _, shard, batch_id, encoded, delta, spans = message
        tagged = [(seq, rank, kind, end, idx, _dec_value(result))
                  for seq, rank, kind, end, idx, result in encoded]
        return ("batch", shard, batch_id, tagged, delta, spans)
    if opcode == "flush":
        _, shard, flush_id, encoded, delta, spans = message
        tagged = [(rank, end, idx, _dec_value(result))
                  for rank, end, idx, result in encoded]
        return ("flush", shard, flush_id, tagged, delta, spans)
    return message


def frame_message(payload: bytes) -> bytes:
    """One ring frame: a marshal-tagged payload in the record format."""
    return frame(bytes((TAG_MARSHAL,)) + payload)


#: The ring's fallback marker: a tiny frame that says "the next message
#: of this lane travels on the multiprocessing queue".
PIPE_MARKER = frame(bytes((TAG_PIPE,)))


# -- stream (TCP) framing -----------------------------------------------------

def pack_message(message: tuple, encoder) -> bytes:
    """Frame one message for a stream transport: the marshal codec when
    it can express the message, the in-band pickle lane otherwise.  The
    returned bytes are self-describing — :func:`unpack_payload` inverts
    either tag."""
    payload = encoder(message)
    if payload is not None:
        return frame(bytes((TAG_MARSHAL,)) + payload)
    return frame(bytes((TAG_PICKLE,))
                 + pickle.dumps(message, pickle.HIGHEST_PROTOCOL))


def unpack_payload(payload: bytes, decoder) -> tuple:
    """Decode one frame payload produced by :func:`pack_message`."""
    tag = payload[0] if payload else -1
    if tag == TAG_MARSHAL:
        return decoder(payload[1:])
    if tag == TAG_PICKLE:
        return pickle.loads(payload[1:])
    raise WireCorrupt(f"unknown frame tag {tag:#x}")


class FrameBuffer:
    """Incremental frame parser for stream transports.

    A TCP read may end anywhere — mid-header, mid-payload — so unlike
    :func:`iter_frames` over a ring snapshot, an unparsable *tail* here
    is the normal case (more bytes are coming), while a complete frame
    that fails its CRC or claims an impossible length is genuine
    corruption and raises :class:`WireCorrupt`.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data = bytearray()

    def pending(self) -> int:
        return len(self._data)

    def feed(self, data: bytes) -> list[bytes]:
        """Append *data*; return the payloads of every frame that is now
        complete (in order).  Raises :class:`WireCorrupt` on a corrupt
        complete frame."""
        self._data += data
        payloads: list[bytes] = []
        consumed = 0
        view = self._data
        total = len(view)
        while consumed + HEADER_BYTES <= total:
            header = bytes(view[consumed:consumed + HEADER_BYTES])
            length = int.from_bytes(header[:4], "little")
            if length > MAX_RECORD_BYTES:
                raise WireCorrupt(
                    f"frame claims {length} bytes "
                    f"(cap {MAX_RECORD_BYTES})")
            end = consumed + HEADER_BYTES + length
            if end > total:
                break  # incomplete: wait for more bytes
            framed = bytes(view[consumed:end])
            decoded = list(iter_frames(framed))
            if not decoded:
                raise WireCorrupt(
                    f"CRC mismatch on a {length}-byte frame")
            payloads.append(decoded[0][1])
            consumed = end
        if consumed:
            del self._data[:consumed]
        return payloads
