"""Shared wire codec for the shard transports (ring and TCP).

Every shard transport carries the same messages in the same format:
one *frame* in the WAL's record format (:func:`repro.persist.records
.frame` — an 8-byte length+CRC32 header, then the payload), whose
payload starts with a one-byte tag selecting the codec:

``TAG_MARSHAL``
    A ``marshal``-encoded message tuple follows inline.  Events and
    composite events are rebuilt through small deterministic encoders;
    ``marshal`` round-trips ints/floats/strings exactly, so merge
    output stays bit-identical across transports.
``TAG_PIPE``
    Ring transport only: the message travels on the fallback
    ``multiprocessing.Queue`` lane and this marker frame keeps the two
    lanes totally ordered (and carries the ring's backpressure).
``TAG_SPEC``
    TCP transport only, coordinator→worker only, and only *after* the
    authenticated handshake: the ``("spec", ...)`` message that rebuilds
    a worker core.  A :class:`WorkerSpec` cannot cross ``marshal``, so
    this one message is pickled — but decoded through a **restricted
    unpickler** whose class allowlist is exactly the spec's closed
    object graph.  No other frame on the wire may carry a pickle, so no
    peer can make either side deserialize arbitrary code (the old
    general-purpose ``TAG_PICKLE`` lane is retired).

The ring transport (:mod:`repro.sharding.transport`) frames messages
into shared-memory rings; the remote transport
(:mod:`repro.sharding.remote`) frames the very same bytes onto TCP
sockets.  Both re-export this module's codec, so there is exactly one
encode/decode path to keep deterministic.

The authentication primitives for the TCP handshake
(:data:`PROTOCOL_VERSION`, :func:`auth_proof`) also live here: they are
wire format, shared verbatim by coordinator and worker daemon.
"""

from __future__ import annotations

import hashlib
import hmac
import io
import marshal
import pickle

from repro.events.event import CompositeEvent, Event
from repro.persist.records import HEADER_BYTES, MAX_RECORD_BYTES, \
    frame, iter_frames

__all__ = [
    "HEADER_BYTES", "MAX_RECORD_BYTES", "frame", "iter_frames",
    "TAG_MARSHAL", "TAG_PIPE", "TAG_SPEC",
    "EVENT_ENTRY", "WATERMARK_ENTRY",
    "PROTOCOL_VERSION", "auth_proof",
    "Unencodable", "WireCorrupt",
    "encode_request", "decode_request",
    "encode_response", "decode_response",
    "frame_message", "PIPE_MARKER",
    "pack_message", "pack_spec", "unpack_payload", "FrameBuffer",
]

# Frame payload tags: first byte of every framed payload.
TAG_MARSHAL = 0x4D   # "M": marshal-encoded message follows inline
TAG_PIPE = 0x50      # "P": the message travels on the fallback queue
TAG_SPEC = 0x53      # "S": restricted-pickle WorkerSpec handshake (TCP)

# Entry opcodes, mirrored from repro.sharding.worker (which imports
# this module through the transport, so the literals live here to avoid
# a cycle).  They are wire format now: changing either side breaks
# mixed-version transports.
EVENT_ENTRY = "e"
WATERMARK_ENTRY = "w"

#: Version of the TCP shard protocol, negotiated in the handshake
#: before anything else crosses the wire.  Bump on any incompatible
#: change to the framing, the message set, or the handshake itself.
#: Version 2 = authenticated handshake + restricted spec lane (the
#: unauthenticated pickle-lane protocol was version 1).
PROTOCOL_VERSION = 2


def auth_proof(secret: bytes, role: bytes, nonce_a: bytes,
               nonce_b: bytes) -> bytes:
    """The HMAC-SHA256 challenge–response proof for one handshake side.

    ``role`` (``b"coordinator"`` / ``b"worker"``) is mixed in so one
    side's proof can never be replayed as the other's; both nonces bind
    the proof to this session.  The secret itself never crosses the
    wire.
    """
    message = b"|".join((b"sase-shard-v%d" % PROTOCOL_VERSION, role,
                         nonce_a, nonce_b))
    return hmac.new(secret, message, hashlib.sha256).digest()


class Unencodable(Exception):
    """The value cannot cross the marshal codec; use the fallback lane
    (ring transport) or fail the send (TCP, where the pickle lane is
    retired and nothing inexpressible may cross)."""


class WireCorrupt(Exception):
    """A framed stream holds garbage: an unknown payload tag, an
    impossible frame length, a CRC failure on a complete frame, or a
    spec frame referencing a class outside the allowlist.  On a stream
    transport this is connection-fatal (reconnect and replay); it never
    describes a merely *incomplete* tail."""


# -- payload codec ------------------------------------------------------------
#
# Messages are tuples of primitives plus Event/CompositeEvent objects.
# The encoders map those objects onto tagged tuples marshal can carry;
# tags start with "\0" so they cannot collide with user values (every
# user-held tuple/list/dict is itself wrapped in a tag, so decode never
# sees a bare container).

_PRIMITIVES = (int, float, str, bool, bytes, type(None))


def _enc_value(value):
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, Event):
        return ("\0e", value.type, value.timestamp,
                {key: _enc_value(item)
                 for key, item in value.attributes.items()}, value.seq)
    if isinstance(value, CompositeEvent):
        return ("\0c", value.type,
                [(key, _enc_value(item))
                 for key, item in value.attributes.items()],
                [(key, _enc_value(item))
                 for key, item in value.bindings.items()],
                value.start, value.end, value.stream, value.complete)
    if isinstance(value, list):
        return ("\0l", [_enc_value(item) for item in value])
    if isinstance(value, tuple):
        return ("\0t", [_enc_value(item) for item in value])
    if isinstance(value, dict):
        return ("\0d", [(key, _enc_value(item))
                        for key, item in value.items()])
    raise Unencodable(type(value).__name__)


def _dec_value(value):
    if type(value) is not tuple:
        return value
    tag = value[0]
    if tag == "\0e":
        return Event(value[1], value[2],
                     {key: _dec_value(item)
                      for key, item in value[3].items()}, value[4])
    if tag == "\0c":
        composite = CompositeEvent(
            value[1],
            {key: _dec_value(item) for key, item in value[2]},
            {key: _dec_value(item) for key, item in value[3]},
            value[4], value[5], value[6])
        composite.complete = value[7]
        return composite
    if tag == "\0l":
        return [_dec_value(item) for item in value[1]]
    if tag == "\0t":
        return tuple(_dec_value(item) for item in value[1])
    if tag == "\0d":
        return {key: _dec_value(item) for key, item in value[1]}
    return value  # pragma: no cover - marshal never produces bare tuples


def encode_request(message: tuple) -> bytes | None:
    """Coordinator→worker codec; None means "use the fallback lane"."""
    try:
        if message[0] == "batch":
            _, batch_id, entries = message
            encoded = [
                (EVENT_ENTRY, seq,
                 (item.type, item.timestamp, item.attributes, item.seq),
                 gids)
                if kind == EVENT_ENTRY else (kind, seq, item, gids)
                for kind, seq, item, gids in entries]
            return marshal.dumps(("batch", batch_id, encoded))
        return marshal.dumps(message)  # flush / stop / ping / handshake
    except (ValueError, TypeError):
        return None


def decode_request(payload: bytes) -> tuple:
    message = marshal.loads(payload)
    if message[0] == "batch":
        _, batch_id, encoded = message
        # Hot path: every routed event crosses here.  Entries are flat
        # 4-tuples (kind, seq, item, group_ids) for both kinds, and the
        # unmarshalled attribute dicts are fresh, so ``Event._restore``
        # may take ownership without the constructor's defensive copy.
        restore = Event._restore
        entries = [
            (EVENT_ENTRY, seq,
             restore(item[0], item[1], item[2], item[3]), gids)
            if kind == EVENT_ENTRY else (kind, seq, item, gids)
            for kind, seq, item, gids in encoded]
        return ("batch", batch_id, entries)
    return message


def encode_response(message: tuple) -> bytes | None:
    """Worker→coordinator codec; None means "use the fallback lane"."""
    try:
        opcode = message[0]
        if opcode == "batch":
            _, shard, batch_id, tagged, delta, spans = message
            encoded = [(seq, rank, kind, end, idx, _enc_value(result))
                       for seq, rank, kind, end, idx, result in tagged]
            return marshal.dumps(("batch", shard, batch_id, encoded,
                                  delta, spans))
        if opcode == "flush":
            _, shard, flush_id, tagged, delta, spans = message
            encoded = [(rank, end, idx, _enc_value(result))
                       for rank, end, idx, result in tagged]
            return marshal.dumps(("flush", shard, flush_id, encoded,
                                  delta, spans))
        return marshal.dumps(message)  # errors / pong / handshake
    except (ValueError, TypeError, Unencodable):
        return None


def decode_response(payload: bytes) -> tuple:
    message = marshal.loads(payload)
    opcode = message[0]
    if opcode == "batch":
        _, shard, batch_id, encoded, delta, spans = message
        tagged = [(seq, rank, kind, end, idx, _dec_value(result))
                  for seq, rank, kind, end, idx, result in encoded]
        return ("batch", shard, batch_id, tagged, delta, spans)
    if opcode == "flush":
        _, shard, flush_id, encoded, delta, spans = message
        tagged = [(rank, end, idx, _dec_value(result))
                  for rank, end, idx, result in encoded]
        return ("flush", shard, flush_id, tagged, delta, spans)
    return message


def frame_message(payload: bytes) -> bytes:
    """One ring frame: a marshal-tagged payload in the record format."""
    return frame(bytes((TAG_MARSHAL,)) + payload)


#: The ring's fallback marker: a tiny frame that says "the next message
#: of this lane travels on the multiprocessing queue".
PIPE_MARKER = frame(bytes((TAG_PIPE,)))


# -- restricted spec lane -----------------------------------------------------
#
# A WorkerSpec's object graph is closed: these classes and nothing
# else.  The unpickler below refuses any other global, so a spec frame
# can rebuild a worker core but can never execute attacker-chosen
# callables the way a general pickle.loads could.

_SPEC_ALLOWED: dict[str, frozenset[str]] = {
    "repro.core.plan": frozenset({"KleeneMode", "PlanConfig"}),
    "repro.events.model": frozenset({
        "AttributeSpec", "AttributeType", "EventSchema",
        "SchemaRegistry"}),
    "repro.sharding.analyzer": frozenset({"GroupSpec"}),
    "repro.sharding.worker": frozenset({"WorkerSpec"}),
}


class _SpecUnpickler(pickle.Unpickler):
    """Allowlist-only unpickler for the ``TAG_SPEC`` handshake frame."""

    def find_class(self, module, name):
        if name in _SPEC_ALLOWED.get(module, ()):
            return super().find_class(module, name)
        raise WireCorrupt(
            f"spec frame references {module}.{name}, which is outside "
            f"the worker-spec allowlist")


def pack_spec(message: tuple) -> bytes:
    """Frame the ``("spec", shard, spec, incarnation)`` handshake
    message.  The only pickle producer left on the TCP wire; its
    consumer is the restricted decoder in :func:`unpack_payload`."""
    return frame(bytes((TAG_SPEC,))
                 + pickle.dumps(message, pickle.HIGHEST_PROTOCOL))


def _load_spec(data: bytes) -> tuple:
    try:
        return _SpecUnpickler(io.BytesIO(data)).load()
    except WireCorrupt:
        raise
    except Exception as error:
        raise WireCorrupt(f"undecodable spec frame: {error}") from None


# -- stream (TCP) framing -----------------------------------------------------

def pack_message(message: tuple, encoder) -> bytes:
    """Frame one message for a stream transport.  Only the marshal
    codec may carry it: the in-band pickle lane is retired, so a
    message the codec cannot express raises :class:`Unencodable`
    instead of silently widening the attack surface (worker specs use
    :func:`pack_spec`, the one audited exception)."""
    payload = encoder(message)
    if payload is None:
        raise Unencodable(
            f"message {message[0]!r} cannot cross the TCP shard wire: "
            f"the marshal codec cannot express it and the pickle lane "
            f"is retired")
    return frame(bytes((TAG_MARSHAL,)) + payload)


def unpack_payload(payload: bytes, decoder,
                   allow_spec: bool = False) -> tuple:
    """Decode one frame payload produced by :func:`pack_message` or
    :func:`pack_spec`.  ``allow_spec`` is True only on the worker
    daemon's authenticated request lane; everywhere else a spec frame
    is treated as corruption, so responses can never smuggle one."""
    tag = payload[0] if payload else -1
    if tag == TAG_MARSHAL:
        return decoder(payload[1:])
    if tag == TAG_SPEC:
        if not allow_spec:
            raise WireCorrupt("spec frame on a lane that must not "
                              "carry one")
        return _load_spec(payload[1:])
    raise WireCorrupt(f"unknown frame tag {tag:#x}")


class FrameBuffer:
    """Incremental frame parser for stream transports.

    A TCP read may end anywhere — mid-header, mid-payload — so unlike
    :func:`iter_frames` over a ring snapshot, an unparsable *tail* here
    is the normal case (more bytes are coming), while a complete frame
    that fails its CRC or claims an impossible length is genuine
    corruption and raises :class:`WireCorrupt`.

    ``max_frame`` caps the length any header may claim *before* payload
    bytes are buffered, so a corrupted or hostile length prefix can
    never trigger a multi-GB allocation; together with the post-parse
    pending-bytes guard it bounds the memory one peer can pin to one
    frame.  The handshake phase of the TCP transports runs with a tiny
    cap (handshake messages are a few hundred bytes) and raises it only
    after the peer has authenticated.
    """

    __slots__ = ("_data", "max_frame")

    def __init__(self, max_frame: int = MAX_RECORD_BYTES) -> None:
        self._data = bytearray()
        self.max_frame = max_frame

    def pending(self) -> int:
        return len(self._data)

    def feed(self, data: bytes) -> list[bytes]:
        """Append *data*; return the payloads of every frame that is now
        complete (in order).  Raises :class:`WireCorrupt` on a corrupt
        complete frame."""
        self._data += data
        payloads: list[bytes] = []
        consumed = 0
        view = self._data
        total = len(view)
        while consumed + HEADER_BYTES <= total:
            header = bytes(view[consumed:consumed + HEADER_BYTES])
            length = int.from_bytes(header[:4], "little")
            if length > self.max_frame or length > MAX_RECORD_BYTES:
                raise WireCorrupt(
                    f"frame claims {length} bytes "
                    f"(cap {min(self.max_frame, MAX_RECORD_BYTES)})")
            end = consumed + HEADER_BYTES + length
            if end > total:
                break  # incomplete: wait for more bytes
            framed = bytes(view[consumed:end])
            decoded = list(iter_frames(framed))
            if not decoded:
                raise WireCorrupt(
                    f"CRC mismatch on a {length}-byte frame")
            payloads.append(decoded[0][1])
            consumed = end
        if consumed:
            del self._data[:consumed]
        # In-flight guard: with the length check above, the unconsumed
        # tail is always smaller than one max frame plus a header; if it
        # is not, the peer is streaming bytes no parse will ever absorb.
        if len(view) - consumed > self.max_frame + HEADER_BYTES:
            raise WireCorrupt(
                f"{len(view) - consumed} unparsed bytes pending "
                f"(cap {self.max_frame + HEADER_BYTES})")
        return payloads
