"""Sharded parallel runtime: partition-aware routing across workers.

See :mod:`repro.sharding.analyzer` for how queries are classified,
:mod:`repro.sharding.router` for routing/batching/merging, and
:mod:`repro.sharding.backends` for the inline/thread/process executors.
"""

from repro.sharding.analyzer import GroupSpec, QueryShardInfo, ShardPlan, \
    build_shard_plan, classify_query, stable_hash
from repro.sharding.config import BACKENDS, ShardingConfig
from repro.sharding.router import ShardRouter
from repro.sharding.transport import TRANSPORTS

__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "GroupSpec",
    "QueryShardInfo",
    "ShardPlan",
    "ShardRouter",
    "ShardingConfig",
    "build_shard_plan",
    "classify_query",
    "stable_hash",
]
